//! The task dependency graph and task lifecycle tracking.

use crate::error::DagError;
use crate::ids::{TaskId, VersionedData};
use crate::spec::TaskSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Lifecycle state of a task in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Waiting for one or more predecessors to complete.
    Pending,
    /// All predecessors completed; eligible for scheduling.
    Ready,
    /// Dispatched to a resource and executing.
    Running,
    /// Finished successfully.
    Completed,
    /// Execution failed (e.g. its host node died); may be re-queued.
    Failed,
}

impl TaskState {
    /// Returns `true` if the task has reached a terminal success state.
    pub fn is_completed(self) -> bool {
        matches!(self, TaskState::Completed)
    }
}

/// One task in the graph: its spec, dependency wiring and state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskNode {
    id: TaskId,
    spec: TaskSpec,
    state: TaskState,
    preds: Vec<TaskId>,
    succs: Vec<TaskId>,
    unfinished_preds: usize,
    /// Producers of streams this task consumes. Unlike `preds`, these
    /// edges release at the producer's *first element* (or completion,
    /// whichever comes first), not at completion.
    stream_preds: Vec<TaskId>,
    /// Consumers of streams this task produces.
    stream_succs: Vec<TaskId>,
    /// Stream predecessors that have not yet released.
    unreleased_streams: usize,
    /// Whether this task has released its stream consumers (set at its
    /// first element sent on any of its output streams, or at
    /// completion). Per task, not per stream: one release frees every
    /// stream successor.
    released: bool,
    consumed: Vec<VersionedData>,
    produced: Vec<VersionedData>,
}

impl TaskNode {
    /// The task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The task's spec (name, parameter accesses).
    pub fn spec(&self) -> &TaskSpec {
        &self.spec
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Direct predecessors (tasks this one depends on).
    pub fn predecessors(&self) -> &[TaskId] {
        &self.preds
    }

    /// Direct successors (tasks depending on this one).
    pub fn successors(&self) -> &[TaskId] {
        &self.succs
    }

    /// Versioned data this task reads.
    pub fn consumed(&self) -> &[VersionedData] {
        &self.consumed
    }

    /// Versioned data this task produces.
    pub fn produced(&self) -> &[VersionedData] {
        &self.produced
    }

    /// Number of predecessors not yet completed.
    pub fn unfinished_predecessors(&self) -> usize {
        self.unfinished_preds
    }

    /// Producers of streams this task consumes (first-element edges).
    pub fn stream_predecessors(&self) -> &[TaskId] {
        &self.stream_preds
    }

    /// Consumers of streams this task produces.
    pub fn stream_successors(&self) -> &[TaskId] {
        &self.stream_succs
    }

    /// Number of stream predecessors that have not released yet.
    pub fn unreleased_streams(&self) -> usize {
        self.unreleased_streams
    }

    /// Whether this task has released its stream consumers.
    pub fn stream_released(&self) -> bool {
        self.released
    }
}

/// A task dependency graph with ready-set maintenance.
///
/// The graph is append-only with respect to structure (tasks and edges
/// are added by the access processor) while task *states* evolve as a
/// runtime executes them. Completing a task releases its successors;
/// the newly-ready successors are returned so schedulers can react
/// incrementally without rescanning the graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    nodes: Vec<TaskNode>,
    ready: BTreeSet<TaskId>,
    completed_count: usize,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id the next added task will receive.
    pub(crate) fn next_task_id(&self) -> TaskId {
        TaskId(self.nodes.len() as u64)
    }

    /// Adds a task with the given dependency wiring. Called by the
    /// access processor, which guarantees `preds` and `stream_preds`
    /// are deduped, sorted and refer to earlier tasks (so the graph is
    /// acyclic by construction).
    pub(crate) fn add_task(
        &mut self,
        spec: TaskSpec,
        preds: Vec<TaskId>,
        stream_preds: Vec<TaskId>,
        consumed: Vec<VersionedData>,
        produced: Vec<VersionedData>,
    ) -> TaskId {
        let id = self.next_task_id();
        let unfinished = preds
            .iter()
            .filter(|p| !self.nodes[p.index()].state.is_completed())
            .count();
        // A producer that has already released (first element sent) or
        // completed does not gate a late-submitted consumer.
        let unreleased = stream_preds
            .iter()
            .filter(|p| {
                let n = &self.nodes[p.index()];
                !n.released && !n.state.is_completed()
            })
            .count();
        for p in &preds {
            self.nodes[p.index()].succs.push(id);
        }
        for p in &stream_preds {
            self.nodes[p.index()].stream_succs.push(id);
        }
        let state = if unfinished == 0 && unreleased == 0 {
            self.ready.insert(id);
            TaskState::Ready
        } else {
            TaskState::Pending
        };
        self.nodes.push(TaskNode {
            id,
            spec,
            state,
            preds,
            succs: Vec::new(),
            unfinished_preds: unfinished,
            stream_preds,
            stream_succs: Vec::new(),
            unreleased_streams: unreleased,
            released: false,
            consumed,
            produced,
        });
        id
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of completed tasks.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// Returns `true` once every task has completed.
    pub fn all_completed(&self) -> bool {
        self.completed_count == self.nodes.len()
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.preds.len()).sum()
    }

    /// Total number of stream (first-element) edges.
    pub fn stream_edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.stream_preds.len()).sum()
    }

    /// Looks up a task node.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownTask`] for ids not in the graph.
    pub fn node(&self, id: TaskId) -> Result<&TaskNode, DagError> {
        self.nodes.get(id.index()).ok_or(DagError::UnknownTask(id))
    }

    /// Iterates over all task nodes in submission order.
    pub fn nodes(&self) -> impl Iterator<Item = &TaskNode> {
        self.nodes.iter()
    }

    /// Direct predecessors of a task. Panics on unknown ids are avoided
    /// by returning an empty slice.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        self.nodes.get(id.index()).map_or(&[], |n| &n.preds)
    }

    /// Direct successors of a task.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        self.nodes.get(id.index()).map_or(&[], |n| &n.succs)
    }

    /// The current set of ready (dependency-free, unscheduled) tasks.
    pub fn ready_tasks(&self) -> &BTreeSet<TaskId> {
        &self.ready
    }

    /// Removes and returns an arbitrary (lowest-id) ready task.
    pub fn pop_ready(&mut self) -> Option<TaskId> {
        let id = *self.ready.iter().next()?;
        self.ready.remove(&id);
        id.into()
    }

    /// Marks a ready task as running.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// currently `Ready`, and [`DagError::UnknownTask`] for unknown ids.
    pub fn mark_running(&mut self, id: TaskId) -> Result<(), DagError> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        if node.state != TaskState::Ready {
            return Err(DagError::InvalidTransition {
                task: id,
                detail: format!("mark_running from {:?}", node.state),
            });
        }
        node.state = TaskState::Running;
        self.ready.remove(&id);
        Ok(())
    }

    /// Idempotent form of [`TaskGraph::mark_running`]: promotes a
    /// `Ready` task to `Running` and leaves an already-`Running` task
    /// untouched. Poll-based executors use this because a task that
    /// parked and was re-polled (possibly on a different worker)
    /// transitions to `Running` only on its *first* dispatch, while the
    /// failure path may fire on any later poll.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// `Ready` or `Running`, and [`DagError::UnknownTask`] for unknown
    /// ids.
    pub fn ensure_running(&mut self, id: TaskId) -> Result<(), DagError> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        match node.state {
            TaskState::Running => Ok(()),
            TaskState::Ready => {
                node.state = TaskState::Running;
                self.ready.remove(&id);
                Ok(())
            }
            other => Err(DagError::InvalidTransition {
                task: id,
                detail: format!("ensure_running from {other:?}"),
            }),
        }
    }

    /// Marks a running task as completed and releases its successors.
    /// Returns the successors that became ready.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// `Running` (or `Ready`, which is accepted so single-threaded
    /// drivers may skip the explicit running transition).
    pub fn complete(&mut self, id: TaskId) -> Result<Vec<TaskId>, DagError> {
        let mut newly_ready = Vec::new();
        self.complete_into(id, &mut newly_ready)?;
        Ok(newly_ready)
    }

    /// Allocation-free variant of [`TaskGraph::complete`]: newly-ready
    /// successors are appended to the caller-provided buffer instead of
    /// a fresh `Vec`, and the successor list is walked in place rather
    /// than cloned. Hot executors call this with a pooled buffer so a
    /// steady-state completion performs no heap allocation beyond
    /// ready-set maintenance.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TaskGraph::complete`].
    pub fn complete_into(
        &mut self,
        id: TaskId,
        newly_ready: &mut Vec<TaskId>,
    ) -> Result<(), DagError> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        match node.state {
            TaskState::Running => {}
            TaskState::Ready => {
                self.ready.remove(&id);
            }
            other => {
                return Err(DagError::InvalidTransition {
                    task: id,
                    detail: format!("complete from {other:?}"),
                });
            }
        }
        self.nodes[id.index()].state = TaskState::Completed;
        self.completed_count += 1;
        // Index-walk the successor list so releasing edges re-borrows
        // per iteration instead of cloning the list.
        for k in 0..self.nodes[id.index()].succs.len() {
            let s = self.nodes[id.index()].succs[k];
            let sn = &mut self.nodes[s.index()];
            sn.unfinished_preds -= 1;
            if sn.unfinished_preds == 0
                && sn.unreleased_streams == 0
                && sn.state == TaskState::Pending
            {
                sn.state = TaskState::Ready;
                self.ready.insert(s);
                newly_ready.push(s);
            }
        }
        // Completion is also a release: a producer that never sent an
        // element (empty stream) must still free its consumers.
        if !self.nodes[id.index()].released {
            self.release_walk(id, newly_ready);
        }
        Ok(())
    }

    /// Marks `id` as having released its stream consumers — called by
    /// engines at the producer's first element — and promotes any
    /// consumer that was waiting only on this release. Idempotent:
    /// releasing twice (or after completion) is a no-op. Newly-ready
    /// consumers are appended to `newly_ready`.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownTask`] for ids not in the graph.
    pub fn stream_release_into(
        &mut self,
        id: TaskId,
        newly_ready: &mut Vec<TaskId>,
    ) -> Result<(), DagError> {
        if id.index() >= self.nodes.len() {
            return Err(DagError::UnknownTask(id));
        }
        if !self.nodes[id.index()].released {
            self.release_walk(id, newly_ready);
        }
        Ok(())
    }

    /// Allocating convenience form of [`TaskGraph::stream_release_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TaskGraph::stream_release_into`].
    pub fn stream_release(&mut self, id: TaskId) -> Result<Vec<TaskId>, DagError> {
        let mut newly_ready = Vec::new();
        self.stream_release_into(id, &mut newly_ready)?;
        Ok(newly_ready)
    }

    /// Sets the released flag and walks the stream successors. Caller
    /// checks the flag first.
    fn release_walk(&mut self, id: TaskId, newly_ready: &mut Vec<TaskId>) {
        self.nodes[id.index()].released = true;
        for k in 0..self.nodes[id.index()].stream_succs.len() {
            let s = self.nodes[id.index()].stream_succs[k];
            let sn = &mut self.nodes[s.index()];
            sn.unreleased_streams -= 1;
            if sn.unfinished_preds == 0
                && sn.unreleased_streams == 0
                && sn.state == TaskState::Pending
            {
                sn.state = TaskState::Ready;
                self.ready.insert(s);
                newly_ready.push(s);
            }
        }
    }

    /// Marks a running task as failed (e.g. its node died).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// `Running`.
    pub fn mark_failed(&mut self, id: TaskId) -> Result<(), DagError> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        if node.state != TaskState::Running {
            return Err(DagError::InvalidTransition {
                task: id,
                detail: format!("mark_failed from {:?}", node.state),
            });
        }
        node.state = TaskState::Failed;
        Ok(())
    }

    /// Re-queues a failed task as ready (used by recovery after a node
    /// failure once its inputs are available again).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// `Failed`.
    pub fn requeue_failed(&mut self, id: TaskId) -> Result<(), DagError> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        if node.state != TaskState::Failed {
            return Err(DagError::InvalidTransition {
                task: id,
                detail: format!("requeue_failed from {:?}", node.state),
            });
        }
        node.state = TaskState::Ready;
        self.ready.insert(id);
        Ok(())
    }

    /// Frees the heap payload of a finished task — its spec (name,
    /// parameter accesses), dependency lists and data-access lists —
    /// leaving a tombstone whose id and state stay valid so task ids
    /// never shift. Lazily-materialized runs call this once a task
    /// *and every value it produced* have been retired: nothing will
    /// traverse the payload again, and dropping it bounds resident
    /// memory by the live frontier instead of the whole campaign.
    ///
    /// Completion is the *caller's* claim: engines that track run
    /// state outside the graph (see [`GraphRun`]) leave node states
    /// frozen at submission values, so no graph-level state check is
    /// possible here. Retiring a task that will be traversed again is
    /// a logic error.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownTask`] for unknown ids.
    pub fn retire_payload(&mut self, id: TaskId) -> Result<(), DagError> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        node.spec = TaskSpec::new(String::new());
        node.preds = Vec::new();
        node.succs = Vec::new();
        node.stream_preds = Vec::new();
        node.stream_succs = Vec::new();
        node.consumed = Vec::new();
        node.produced = Vec::new();
        Ok(())
    }

    /// Topological order of all tasks (submission order is already
    /// topological because edges only point forward, but this validates
    /// the invariant and is used by static schedulers).
    pub fn topological_order(&self) -> Vec<TaskId> {
        // Kahn's algorithm over the full graph — completion and stream
        // edges alike — independent of states.
        let mut indeg: Vec<usize> = self
            .nodes
            .iter()
            .map(|n| n.preds.len() + n.stream_preds.len())
            .collect();
        let mut queue: Vec<TaskId> = self
            .nodes
            .iter()
            .filter(|n| n.preds.is_empty() && n.stream_preds.is_empty())
            .map(|n| n.id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = queue.pop() {
            order.push(id);
            let n = &self.nodes[id.index()];
            for &s in n.succs.iter().chain(n.stream_succs.iter()) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "graph must be acyclic");
        order
    }
}

/// Mutable execution state over a borrowed, structurally-immutable
/// [`TaskGraph`].
///
/// Cloning a whole `TaskGraph` to run it copies every spec string and
/// dependency list — several heap allocations per task that the run
/// never mutates. `GraphRun` snapshots only the evolving part (task
/// states, unfinished-predecessor counts, the ready set) so an engine
/// can execute the same graph repeatedly against a shared immutable
/// structure. State transitions mirror [`TaskGraph`]'s exactly,
/// including the error conditions.
#[derive(Debug, Clone)]
pub struct GraphRun {
    states: Vec<TaskState>,
    unfinished: Vec<usize>,
    stream_unreleased: Vec<usize>,
    released: Vec<bool>,
    ready: BTreeSet<TaskId>,
    completed_count: usize,
}

impl GraphRun {
    /// Snapshots the current lifecycle state of `graph`.
    pub fn new(graph: &TaskGraph) -> Self {
        GraphRun {
            states: graph.nodes.iter().map(|n| n.state).collect(),
            unfinished: graph.nodes.iter().map(|n| n.unfinished_preds).collect(),
            stream_unreleased: graph.nodes.iter().map(|n| n.unreleased_streams).collect(),
            released: graph.nodes.iter().map(|n| n.released).collect(),
            ready: graph.ready.clone(),
            completed_count: graph.completed_count,
        }
    }

    /// Current lifecycle state of a task, or `None` for unknown ids.
    pub fn state(&self, id: TaskId) -> Option<TaskState> {
        self.states.get(id.index()).copied()
    }

    /// Number of tasks this run tracks (the graph length at creation
    /// or the last [`GraphRun::grow`]).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the run tracks no tasks.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Extends the run to cover tasks appended to `graph` since this
    /// run was created or last grown (lazy materialization). Returns
    /// how many tasks were added.
    ///
    /// Readiness of new tasks is computed from the **run's** states —
    /// not the graph's, which stay frozen while an engine executes
    /// through a `GraphRun` — so a consumer materialized after its
    /// producer completed in this run starts `Ready`. Dependency edges
    /// only point backward, and the new nodes are scanned in id order,
    /// so every predecessor's run state exists by the time it is read.
    pub fn grow(&mut self, graph: &TaskGraph) -> usize {
        let old = self.states.len();
        for node in &graph.nodes[old..] {
            let unfinished = node
                .preds
                .iter()
                .filter(|p| !self.states[p.index()].is_completed())
                .count();
            let unreleased = node
                .stream_preds
                .iter()
                .filter(|p| !self.released[p.index()] && !self.states[p.index()].is_completed())
                .count();
            let state = if unfinished == 0 && unreleased == 0 {
                self.ready.insert(node.id);
                TaskState::Ready
            } else {
                TaskState::Pending
            };
            self.states.push(state);
            self.unfinished.push(unfinished);
            self.stream_unreleased.push(unreleased);
            self.released.push(false);
        }
        self.states.len() - old
    }

    /// Tasks whose dependencies are satisfied, in ascending id order.
    pub fn ready_tasks(&self) -> &BTreeSet<TaskId> {
        &self.ready
    }

    /// Number of completed tasks.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// Returns `true` once every task has completed.
    pub fn all_completed(&self) -> bool {
        self.completed_count == self.states.len()
    }

    /// Marks a ready task as running (see [`TaskGraph::mark_running`]).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// currently `Ready`, and [`DagError::UnknownTask`] for unknown ids.
    pub fn mark_running(&mut self, id: TaskId) -> Result<(), DagError> {
        let state = self
            .states
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        if *state != TaskState::Ready {
            return Err(DagError::InvalidTransition {
                task: id,
                detail: format!("mark_running from {state:?}"),
            });
        }
        *state = TaskState::Running;
        self.ready.remove(&id);
        Ok(())
    }

    /// Marks a running task as completed and releases its successors
    /// (read from `graph`, which must be the graph this run was built
    /// from). Returns how many successors became ready — unlike
    /// [`TaskGraph::complete`] no list is built, keeping completions
    /// allocation-free apart from ready-set maintenance.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// `Running` (or `Ready`, accepted so single-threaded drivers may
    /// skip the explicit running transition).
    pub fn complete(&mut self, graph: &TaskGraph, id: TaskId) -> Result<usize, DagError> {
        let state = self
            .states
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        match *state {
            TaskState::Running => {}
            TaskState::Ready => {
                self.ready.remove(&id);
            }
            other => {
                return Err(DagError::InvalidTransition {
                    task: id,
                    detail: format!("complete from {other:?}"),
                });
            }
        }
        *state = TaskState::Completed;
        self.completed_count += 1;
        let mut newly_ready = 0;
        for &s in &graph.nodes[id.index()].succs {
            self.unfinished[s.index()] -= 1;
            if self.unfinished[s.index()] == 0
                && self.stream_unreleased[s.index()] == 0
                && self.states[s.index()] == TaskState::Pending
            {
                self.states[s.index()] = TaskState::Ready;
                self.ready.insert(s);
                newly_ready += 1;
            }
        }
        // Completion releases any consumers still gated on this
        // producer's first element (see `TaskGraph::complete_into`).
        if !self.released[id.index()] {
            newly_ready += self.release_walk(graph, id);
        }
        Ok(newly_ready)
    }

    /// Marks `id` as having released its stream consumers and promotes
    /// consumers waiting only on this release; returns how many became
    /// ready. Idempotent, mirroring [`TaskGraph::stream_release_into`].
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownTask`] for ids not in the run.
    pub fn stream_release(&mut self, graph: &TaskGraph, id: TaskId) -> Result<usize, DagError> {
        if id.index() >= self.states.len() {
            return Err(DagError::UnknownTask(id));
        }
        if self.released[id.index()] {
            return Ok(0);
        }
        Ok(self.release_walk(graph, id))
    }

    /// Whether `id` has released its stream consumers in this run.
    pub fn stream_released(&self, id: TaskId) -> bool {
        self.released.get(id.index()).copied().unwrap_or(false)
    }

    fn release_walk(&mut self, graph: &TaskGraph, id: TaskId) -> usize {
        self.released[id.index()] = true;
        let mut newly_ready = 0;
        for &s in &graph.nodes[id.index()].stream_succs {
            self.stream_unreleased[s.index()] -= 1;
            if self.unfinished[s.index()] == 0
                && self.stream_unreleased[s.index()] == 0
                && self.states[s.index()] == TaskState::Pending
            {
                self.states[s.index()] = TaskState::Ready;
                self.ready.insert(s);
                newly_ready += 1;
            }
        }
        newly_ready
    }

    /// Marks a running task as failed (see [`TaskGraph::mark_failed`]).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// `Running`.
    pub fn mark_failed(&mut self, id: TaskId) -> Result<(), DagError> {
        let state = self
            .states
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        if *state != TaskState::Running {
            return Err(DagError::InvalidTransition {
                task: id,
                detail: format!("mark_failed from {state:?}"),
            });
        }
        *state = TaskState::Failed;
        Ok(())
    }

    /// Re-queues a failed task as ready (see
    /// [`TaskGraph::requeue_failed`]).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::InvalidTransition`] unless the task is
    /// `Failed`.
    pub fn requeue_failed(&mut self, id: TaskId) -> Result<(), DagError> {
        let state = self
            .states
            .get_mut(id.index())
            .ok_or(DagError::UnknownTask(id))?;
        if *state != TaskState::Failed {
            return Err(DagError::InvalidTransition {
                task: id,
                detail: format!("requeue_failed from {state:?}"),
            });
        }
        *state = TaskState::Ready;
        self.ready.insert(id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessProcessor;
    use crate::spec::TaskSpec;

    /// Builds the diamond: a -> {b, c} -> d.
    fn diamond() -> (AccessProcessor, [TaskId; 4]) {
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        let y = ap.new_data("y");
        let z = ap.new_data("z");
        let out = ap.new_data("out");
        let a = ap.register(TaskSpec::new("a").output(x)).unwrap();
        let b = ap.register(TaskSpec::new("b").input(x).output(y)).unwrap();
        let c = ap.register(TaskSpec::new("c").input(x).output(z)).unwrap();
        let d = ap
            .register(TaskSpec::new("d").input(y).input(z).output(out))
            .unwrap();
        (ap, [a, b, c, d])
    }

    #[test]
    fn ready_set_evolves_with_completions() {
        let (mut ap, [a, b, c, d]) = diamond();
        let g = ap.graph_mut();
        assert_eq!(g.ready_tasks().iter().copied().collect::<Vec<_>>(), vec![a]);
        g.mark_running(a).unwrap();
        let newly = g.complete(a).unwrap();
        assert_eq!(newly, vec![b, c]);
        g.mark_running(b).unwrap();
        g.mark_running(c).unwrap();
        assert!(g.complete(b).unwrap().is_empty());
        assert_eq!(g.complete(c).unwrap(), vec![d]);
        g.mark_running(d).unwrap();
        g.complete(d).unwrap();
        assert!(g.all_completed());
        assert_eq!(g.completed_count(), 4);
    }

    #[test]
    fn complete_from_ready_is_accepted() {
        let (mut ap, [a, ..]) = diamond();
        let g = ap.graph_mut();
        assert!(g.complete(a).is_ok());
    }

    #[test]
    fn invalid_transitions_rejected() {
        let (mut ap, [a, b, ..]) = diamond();
        let g = ap.graph_mut();
        assert!(g.mark_running(b).is_err(), "b is pending, not ready");
        g.mark_running(a).unwrap();
        assert!(g.mark_running(a).is_err(), "already running");
        g.complete(a).unwrap();
        assert!(g.complete(a).is_err(), "already completed");
        assert!(g.mark_failed(a).is_err(), "completed tasks cannot fail");
    }

    #[test]
    fn failure_and_requeue() {
        let (mut ap, [a, ..]) = diamond();
        let g = ap.graph_mut();
        g.mark_running(a).unwrap();
        g.mark_failed(a).unwrap();
        assert!(!g.ready_tasks().contains(&a));
        g.requeue_failed(a).unwrap();
        assert!(g.ready_tasks().contains(&a));
        assert!(g.requeue_failed(a).is_err(), "no longer failed");
    }

    #[test]
    fn graph_run_mirrors_task_graph_lifecycle() {
        let (ap, [a, b, c, d]) = diamond();
        let graph = ap.graph();
        let mut run = GraphRun::new(graph);
        // Mirror `ready_set_evolves_with_completions` without cloning
        // or mutating the structure.
        assert_eq!(
            run.ready_tasks().iter().copied().collect::<Vec<_>>(),
            vec![a]
        );
        run.mark_running(a).unwrap();
        assert_eq!(run.complete(graph, a).unwrap(), 2, "b and c released");
        assert_eq!(run.state(a), Some(TaskState::Completed));
        run.mark_running(b).unwrap();
        run.mark_running(c).unwrap();
        assert_eq!(run.complete(graph, b).unwrap(), 0);
        assert_eq!(run.complete(graph, c).unwrap(), 1, "d released");
        // Complete-from-ready shortcut, invalid transitions, failure
        // and requeue all behave as on TaskGraph.
        assert!(run.mark_running(d).is_ok());
        run.mark_failed(d).unwrap();
        assert!(!run.ready_tasks().contains(&d));
        run.requeue_failed(d).unwrap();
        assert!(run.ready_tasks().contains(&d));
        assert!(run.requeue_failed(d).is_err(), "no longer failed");
        assert!(run.complete(graph, d).is_ok(), "complete from ready");
        assert!(run.complete(graph, d).is_err(), "already completed");
        assert!(run.all_completed());
        assert_eq!(run.completed_count(), 4);
        // The underlying graph never changed.
        assert_eq!(graph.completed_count(), 0);
        assert!(graph.ready_tasks().contains(&a));
    }

    #[test]
    fn pop_ready_returns_lowest_id() {
        let mut ap = AccessProcessor::new();
        let d0 = ap.new_data("d0");
        let d1 = ap.new_data("d1");
        let t0 = ap.register(TaskSpec::new("t0").output(d0)).unwrap();
        let t1 = ap.register(TaskSpec::new("t1").output(d1)).unwrap();
        let g = ap.graph_mut();
        assert_eq!(g.pop_ready(), Some(t0));
        assert_eq!(g.pop_ready(), Some(t1));
        assert_eq!(g.pop_ready(), None);
    }

    #[test]
    fn topological_order_respects_edges() {
        let (ap, _) = diamond();
        let order = ap.graph().topological_order();
        assert_eq!(order.len(), 4);
        let pos: Vec<usize> = (0..4)
            .map(|i| {
                order
                    .iter()
                    .position(|t| t.index() == i)
                    .expect("all tasks present")
            })
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn edge_count_matches_structure() {
        let (ap, _) = diamond();
        assert_eq!(ap.graph().edge_count(), 4); // a->b, a->c, b->d, c->d
    }

    #[test]
    fn late_submission_after_completion_is_immediately_ready() {
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        let a = ap.register(TaskSpec::new("a").output(x)).unwrap();
        ap.graph_mut().mark_running(a).unwrap();
        ap.graph_mut().complete(a).unwrap();
        // A reader submitted after the producer finished must be ready.
        let r = ap.register(TaskSpec::new("r").input(x)).unwrap();
        assert!(ap.graph().ready_tasks().contains(&r));
        assert_eq!(ap.graph().node(r).unwrap().unfinished_predecessors(), 0);
    }

    #[test]
    fn unknown_task_errors() {
        let g = TaskGraph::new();
        assert!(g.node(TaskId::from_raw(0)).is_err());
        assert!(g.predecessors(TaskId::from_raw(5)).is_empty());
        let mut g = TaskGraph::new();
        assert!(g.stream_release(TaskId::from_raw(0)).is_err());
    }

    /// Builds sensor -(stream s)-> feat -(stream f)-> sink.
    fn stream_chain() -> (AccessProcessor, [TaskId; 3]) {
        let mut ap = AccessProcessor::new();
        let s = ap.new_data("s");
        let f = ap.new_data("f");
        let sensor = ap.register(TaskSpec::new("sensor").stream_out(s)).unwrap();
        let feat = ap
            .register(TaskSpec::new("feat").stream_in(s).stream_out(f))
            .unwrap();
        let sink = ap.register(TaskSpec::new("sink").stream_in(f)).unwrap();
        (ap, [sensor, feat, sink])
    }

    #[test]
    fn graph_run_mirrors_stream_release() {
        let (ap, [sensor, feat, sink]) = stream_chain();
        let graph = ap.graph();
        let mut run = GraphRun::new(graph);
        assert_eq!(
            run.ready_tasks().iter().copied().collect::<Vec<_>>(),
            vec![sensor]
        );
        run.mark_running(sensor).unwrap();
        // First element propagates readiness down the chain as each
        // stage sends, all three stages concurrently running.
        assert_eq!(run.stream_release(graph, sensor).unwrap(), 1);
        assert!(!run.stream_released(feat));
        run.mark_running(feat).unwrap();
        assert_eq!(run.stream_release(graph, feat).unwrap(), 1);
        assert!(run.stream_released(feat));
        run.mark_running(sink).unwrap();
        // Idempotent.
        assert_eq!(run.stream_release(graph, sensor).unwrap(), 0);
        // Completions in pipeline order; no further releases pending.
        assert_eq!(run.complete(graph, sensor).unwrap(), 0);
        assert_eq!(run.complete(graph, feat).unwrap(), 0);
        assert_eq!(run.complete(graph, sink).unwrap(), 0);
        assert!(run.all_completed());
        assert!(run.stream_release(graph, TaskId::from_raw(9)).is_err());
        // The borrowed graph never changed.
        assert!(!graph.node(sensor).unwrap().stream_released());
    }

    #[test]
    fn graph_run_completion_releases_unstarted_streams() {
        let (ap, [sensor, feat, sink]) = stream_chain();
        let graph = ap.graph();
        let mut run = GraphRun::new(graph);
        // Sensor completes without sending: feat becomes ready; feat
        // completes without sending: sink becomes ready.
        assert_eq!(run.complete(graph, sensor).unwrap(), 1);
        assert_eq!(run.complete(graph, feat).unwrap(), 1);
        assert_eq!(run.complete(graph, sink).unwrap(), 0);
        assert!(run.all_completed());
    }

    #[test]
    fn topological_order_includes_stream_edges() {
        let (ap, [sensor, feat, sink]) = stream_chain();
        let order = ap.graph().topological_order();
        let pos = |t: TaskId| order.iter().position(|x| *x == t).unwrap();
        assert!(pos(sensor) < pos(feat) && pos(feat) < pos(sink));
        assert_eq!(ap.graph().edge_count(), 0);
        assert_eq!(ap.graph().stream_edge_count(), 2);
    }

    #[test]
    fn mixed_completion_and_stream_gating() {
        // A consumer with both a versioned input and a stream input
        // needs the input produced *and* the stream released.
        let mut ap = AccessProcessor::new();
        let model = ap.new_data("model");
        let s = ap.new_data("s");
        let train = ap.register(TaskSpec::new("train").output(model)).unwrap();
        let sensor = ap.register(TaskSpec::new("sensor").stream_out(s)).unwrap();
        let infer = ap
            .register(TaskSpec::new("infer").input(model).stream_in(s))
            .unwrap();
        let g = ap.graph_mut();
        assert!(!g.ready_tasks().contains(&infer));
        g.stream_release(sensor).unwrap();
        assert!(!g.ready_tasks().contains(&infer), "model still missing");
        assert_eq!(g.complete(train).unwrap(), vec![infer]);
        let n = g.node(infer).unwrap();
        assert_eq!(n.predecessors(), &[train]);
        assert_eq!(n.stream_predecessors(), &[sensor]);
        assert_eq!(n.unreleased_streams(), 0);
    }
}
