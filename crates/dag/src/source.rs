//! Lazy graph materialization: sources that expand a workflow on
//! demand instead of registering every task up front.
//!
//! The paper's flagship campaigns (GUIDANCE-scale GWAS) reach 10⁵–10⁶
//! tasks. Building that graph eagerly costs gigabytes of specs and
//! dependency lists before the first task runs. A [`GraphSource`] keeps
//! the *generator* — not the graph — in memory: the engine calls
//! [`GraphSource::prime`] once to materialize the initial frontier, and
//! [`GraphSource::on_task_complete`] after every completion so the
//! source can append the next subgraphs through an [`ExpandSink`]. The
//! access processor and the scheduler only ever see the materialized
//! frontier.
//!
//! Retirement is the other half of the protocol: when a source has
//! emitted every consumer a datum will ever have, it declares this with
//! [`ExpandSink::close_data`]. An engine combines that closure with its
//! value liveness (producer completed, all materialized readers
//! completed) to retire the datum's versions — and, once every value a
//! task produced is retired, the task's own payload
//! ([`crate::TaskGraph::retire_payload`]).

use crate::error::DagError;
use crate::ids::{DataId, TaskId};
use crate::spec::TaskSpec;

/// The surface a [`GraphSource`] expands into: data registration and
/// task submission, plus the retirement-side `close_data` declaration.
///
/// `P` is the per-task payload the embedding runtime needs alongside
/// the [`TaskSpec`] — e.g. a cost profile in the simulated engine. The
/// dag layer is agnostic to it.
pub trait ExpandSink<P> {
    /// Registers a logical datum produced by tasks.
    fn data(&mut self, name: &str) -> DataId;

    /// Registers an initial (externally provided) datum of `bytes`
    /// size, staged everywhere.
    fn initial_data(&mut self, name: &str, bytes: u64) -> DataId;

    /// Submits a task with its payload; dependencies are derived from
    /// the access declarations as usual.
    ///
    /// # Errors
    ///
    /// Propagates access-processor validation errors.
    fn submit(&mut self, spec: TaskSpec, payload: P) -> Result<TaskId, DagError>;

    /// Declares that every consumer of `data` has been materialized:
    /// no task submitted in the future will read it. Together with
    /// completion of the producer and of all materialized readers this
    /// lets the engine retire the datum's versions.
    fn close_data(&mut self, data: DataId);
}

/// A workflow generator that materializes its task graph incrementally.
///
/// Implementations must be deterministic: expansion may depend only on
/// construction parameters and the sequence of completions observed,
/// never on wall-clock time or unseeded randomness, so that two runs of
/// the same source produce identical graphs (the property the
/// calendar-vs-heap `--check` equivalence relies on).
pub trait GraphSource<P> {
    /// Materializes the initial frontier (tasks with no predecessors,
    /// or a bounded window of them). Called exactly once, before the
    /// first scheduling round.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    fn prime(&mut self, sink: &mut dyn ExpandSink<P>) -> Result<(), DagError>;

    /// Notifies the source that `task` completed, giving it the chance
    /// to materialize successors. Called once per completion, in
    /// completion order.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    fn on_task_complete(
        &mut self,
        task: TaskId,
        sink: &mut dyn ExpandSink<P>,
    ) -> Result<(), DagError>;

    /// Total number of tasks this source will ever emit, if known
    /// up front (used for progress reporting only).
    fn total_tasks(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessProcessor;
    use crate::graph::GraphRun;

    /// Test sink over a bare access processor (unit payloads).
    #[derive(Default)]
    struct ApSink {
        ap: AccessProcessor,
        closed: Vec<DataId>,
    }

    impl ExpandSink<()> for ApSink {
        fn data(&mut self, name: &str) -> DataId {
            self.ap.new_data(name)
        }
        fn initial_data(&mut self, name: &str, _bytes: u64) -> DataId {
            self.ap.new_data(name)
        }
        fn submit(&mut self, spec: TaskSpec, _payload: ()) -> Result<TaskId, DagError> {
            self.ap.register(spec)
        }
        fn close_data(&mut self, data: DataId) {
            self.closed.push(data);
        }
    }

    /// A chain a→b→c materialized one link per completion.
    struct Chain {
        emitted: usize,
        len: usize,
        last_out: Option<DataId>,
    }

    impl Chain {
        fn emit(&mut self, sink: &mut dyn ExpandSink<()>) -> Result<(), DagError> {
            let out = sink.data(&format!("d{}", self.emitted));
            let mut spec = TaskSpec::new(format!("t{}", self.emitted)).output(out);
            if let Some(prev) = self.last_out {
                spec = spec.input(prev);
                sink.close_data(prev);
            }
            sink.submit(spec, ())?;
            self.last_out = Some(out);
            self.emitted += 1;
            Ok(())
        }
    }

    impl GraphSource<()> for Chain {
        fn prime(&mut self, sink: &mut dyn ExpandSink<()>) -> Result<(), DagError> {
            self.emit(sink)
        }
        fn on_task_complete(
            &mut self,
            _task: TaskId,
            sink: &mut dyn ExpandSink<()>,
        ) -> Result<(), DagError> {
            if self.emitted < self.len {
                self.emit(sink)?;
            }
            Ok(())
        }
        fn total_tasks(&self) -> Option<u64> {
            Some(self.len as u64)
        }
    }

    #[test]
    fn incremental_expansion_executes_to_completion() {
        let mut src = Chain {
            emitted: 0,
            len: 5,
            last_out: None,
        };
        let mut sink = ApSink::default();
        src.prime(&mut sink).unwrap();
        let mut run = GraphRun::new(sink.ap.graph());
        let mut done = 0;
        while !run.all_completed() {
            let id = *run.ready_tasks().iter().next().expect("progress");
            run.complete(sink.ap.graph(), id).unwrap();
            done += 1;
            src.on_task_complete(id, &mut sink).unwrap();
            run.grow(sink.ap.graph());
        }
        assert_eq!(done, 5);
        assert_eq!(src.total_tasks(), Some(5));
        // Every intermediate datum was closed; the final one stays open.
        assert_eq!(sink.closed.len(), 4);
    }

    #[test]
    fn grow_sees_completed_predecessors_from_run_state() {
        // Build a producer, complete it through the run (the graph's
        // own node state stays Ready), then append a consumer: grow()
        // must mark the consumer ready because the RUN completed the
        // producer.
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        let a = ap.register(TaskSpec::new("a").output(x)).unwrap();
        let mut run = GraphRun::new(ap.graph());
        run.complete(ap.graph(), a).unwrap();
        let y = ap.new_data("y");
        let b = ap.register(TaskSpec::new("b").input(x).output(y)).unwrap();
        assert_eq!(run.state(b), None, "not yet grown");
        let grown = run.grow(ap.graph());
        assert_eq!(grown, 1);
        assert!(run.ready_tasks().contains(&b));
        // Idempotent when nothing new was appended.
        assert_eq!(run.grow(ap.graph()), 0);
    }
}
