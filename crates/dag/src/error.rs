//! Error type for graph construction and queries.

use crate::ids::{DataId, TaskId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A task referenced a datum that was never registered with the
    /// access processor.
    UnknownData(DataId),
    /// A task id was not present in the graph.
    UnknownTask(TaskId),
    /// A task declared no parameters; it would be disconnected from the
    /// dataflow and is almost always a programming error.
    EmptyTask(String),
    /// A task declared the same datum twice with conflicting directions.
    ConflictingAccess {
        /// The task-type name of the offending spec.
        task: String,
        /// The datum declared more than once.
        data: DataId,
    },
    /// A datum was accessed both as a stream and as a versioned value.
    /// A datum is either a renamed whole-value or a channel of
    /// elements; the two dependency disciplines cannot be mixed.
    MixedAccess {
        /// The task-type name of the spec that introduced the mix.
        task: String,
        /// The datum with both kinds of access.
        data: DataId,
    },
    /// A lifecycle transition was invalid (e.g. completing a task that
    /// was never marked running).
    InvalidTransition {
        /// The task whose state transition was rejected.
        task: TaskId,
        /// Human-readable description of the rejected transition.
        detail: String,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownData(d) => write!(f, "unknown data id {d}"),
            DagError::UnknownTask(t) => write!(f, "unknown task id {t}"),
            DagError::EmptyTask(name) => {
                write!(f, "task `{name}` declares no parameter accesses")
            }
            DagError::ConflictingAccess { task, data } => {
                write!(f, "task `{task}` declares conflicting accesses to {data}")
            }
            DagError::MixedAccess { task, data } => {
                write!(
                    f,
                    "task `{task}` mixes stream and versioned access to {data}"
                )
            }
            DagError::InvalidTransition { task, detail } => {
                write!(f, "invalid state transition for {task}: {detail}")
            }
        }
    }
}

impl Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = DagError::UnknownData(DataId::from_raw(4));
        assert_eq!(e.to_string(), "unknown data id d4");
        let e = DagError::EmptyTask("foo".into());
        assert!(e.to_string().contains("`foo`"));
        let e = DagError::ConflictingAccess {
            task: "t".into(),
            data: DataId::from_raw(1),
        };
        assert!(e.to_string().contains("conflicting"));
        let e = DagError::MixedAccess {
            task: "t".into(),
            data: DataId::from_raw(1),
        };
        assert!(e.to_string().contains("mixes stream and versioned"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DagError>();
    }
}
