//! Task graphs, data versioning and the access processor for the
//! `continuum` workflow environment.
//!
//! This crate implements the dependency-detection core of a task-based
//! workflow runtime in the style of COMPSs/PyCOMPSs (Badia et al.,
//! *Workflow Environments for Advanced Cyberinfrastructure Platforms*,
//! ICDCS 2019): applications submit *tasks* that declare how they access
//! their parameters ([`Direction::In`], [`Direction::Out`],
//! [`Direction::InOut`]) and the [`AccessProcessor`] derives the task
//! dependency graph on the fly using data versioning, exactly like the
//! *AP* component of the COMPSs runtime.
//!
//! The produced [`TaskGraph`] supports ready-set maintenance for dynamic
//! scheduling, as well as the static analyses (levels, critical path,
//! bottom levels) needed by baseline schedulers such as HEFT.
//!
//! # Example
//!
//! ```
//! use continuum_dag::{AccessProcessor, TaskSpec, Direction};
//!
//! let mut ap = AccessProcessor::new();
//! let matrix = ap.new_data("matrix");
//! let stats = ap.new_data("stats");
//!
//! // Producer writes `matrix`, consumer reads it and writes `stats`.
//! let gen = ap.register(TaskSpec::new("generate").output(matrix))?;
//! let red = ap.register(
//!     TaskSpec::new("reduce").input(matrix).output(stats),
//! )?;
//!
//! let graph = ap.graph();
//! assert!(graph.predecessors(red).contains(&gen));
//! assert!(graph.ready_tasks().contains(&gen));
//! # Ok::<(), continuum_dag::DagError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod analysis;
mod dot;
mod error;
mod graph;
mod ids;
mod param;
mod source;
mod spec;

pub use access::{AccessProcessor, DataCatalog, StreamEndpoints, VersionInfo};
pub use analysis::{CriticalPath, GraphAnalysis, LevelStats};
pub use dot::DotOptions;
pub use error::DagError;
pub use graph::{GraphRun, TaskGraph, TaskNode, TaskState};
pub use ids::{DataId, DataVersion, TaskId, VersionedData};
pub use param::{Direction, Param, StreamRole};
pub use source::{ExpandSink, GraphSource};
pub use spec::TaskSpec;
