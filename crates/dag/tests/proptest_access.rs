//! Property-based tests for the access processor and task graph.
//!
//! These check the structural invariants that every downstream component
//! (schedulers, engines, recovery) relies on: acyclicity, correct
//! happens-before between writers and readers, and exactly-once
//! completion under any completion order.

use continuum_dag::{AccessProcessor, DagError, Direction, TaskId, TaskSpec};
use proptest::prelude::*;

/// A random program trace: each task accesses a few data with random
/// directions.
#[derive(Debug, Clone)]
struct TraceOp {
    accesses: Vec<(usize, Direction)>,
}

fn direction_strategy() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::In),
        Just(Direction::Out),
        Just(Direction::InOut),
    ]
}

fn trace_strategy(num_data: usize, max_tasks: usize) -> impl Strategy<Value = Vec<TraceOp>> {
    let op = proptest::collection::vec((0..num_data, direction_strategy()), 1..4).prop_map(
        |mut accesses| {
            // Deduplicate data ids so specs are always valid.
            accesses.sort_by_key(|(d, _)| *d);
            accesses.dedup_by_key(|(d, _)| *d);
            TraceOp { accesses }
        },
    );
    proptest::collection::vec(op, 1..max_tasks)
}

fn build(trace: &[TraceOp]) -> Result<(AccessProcessor, Vec<TaskId>), DagError> {
    let mut ap = AccessProcessor::new();
    let data = ap.new_data_batch("d", 16);
    let mut ids = Vec::new();
    for (i, op) in trace.iter().enumerate() {
        let mut spec = TaskSpec::new(format!("t{i}"));
        for (d, dir) in &op.accesses {
            spec = spec.param(data[*d], *dir);
        }
        ids.push(ap.register(spec)?);
    }
    Ok((ap, ids))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every dependency edge points from an earlier submission to a
    /// later one, so the graph is acyclic by construction.
    #[test]
    fn edges_point_forward(trace in trace_strategy(16, 40)) {
        let (ap, ids) = build(&trace).expect("valid traces");
        let g = ap.graph();
        for id in &ids {
            for p in g.predecessors(*id) {
                prop_assert!(p < id, "edge must point forward: {p} -> {id}");
            }
        }
        // Topological order covers all tasks (acyclicity check).
        prop_assert_eq!(g.topological_order().len(), ids.len());
    }

    /// A reader always depends (directly) on the most recent previous
    /// writer of each datum it reads.
    #[test]
    fn reader_depends_on_last_writer(trace in trace_strategy(8, 40)) {
        let (ap, ids) = build(&trace).expect("valid traces");
        let g = ap.graph();
        // Recompute last-writer chains independently from the trace.
        let mut last_writer: Vec<Option<TaskId>> = vec![None; 8];
        for (i, op) in trace.iter().enumerate() {
            let id = ids[i];
            for (d, dir) in &op.accesses {
                if dir.reads() {
                    if let Some(w) = last_writer[*d] {
                        prop_assert!(
                            g.predecessors(id).contains(&w),
                            "{id} reads d{d} written by {w}"
                        );
                    }
                }
            }
            for (d, dir) in &op.accesses {
                if dir.writes() {
                    last_writer[*d] = Some(id);
                }
            }
        }
    }

    /// Driving the graph to completion in lowest-id-first ready order
    /// completes every task exactly once and never deadlocks.
    #[test]
    fn ready_driven_execution_terminates(trace in trace_strategy(12, 60)) {
        let (mut ap, ids) = build(&trace).expect("valid traces");
        let g = ap.graph_mut();
        let mut completed = 0usize;
        while let Some(t) = g.pop_ready() {
            g.mark_running(t).expect("ready task can run");
            g.complete(t).expect("running task can complete");
            completed += 1;
        }
        prop_assert_eq!(completed, ids.len());
        prop_assert!(g.all_completed());
    }

    /// Completing tasks in *reverse* ready order (highest id first)
    /// also terminates: the ready set is order-insensitive.
    #[test]
    fn reverse_order_execution_terminates(trace in trace_strategy(12, 60)) {
        let (mut ap, ids) = build(&trace).expect("valid traces");
        let g = ap.graph_mut();
        let mut completed = 0usize;
        while let Some(t) = g.ready_tasks().iter().next_back().copied() {
            g.mark_running(t).expect("ready task can run");
            g.complete(t).expect("running task can complete");
            completed += 1;
        }
        prop_assert_eq!(completed, ids.len());
    }

    /// Versions produced for a datum are strictly increasing with
    /// submission order of its writers.
    #[test]
    fn versions_strictly_increase(trace in trace_strategy(6, 50)) {
        let (ap, ids) = build(&trace).expect("valid traces");
        let g = ap.graph();
        for d in 0..6u64 {
            let mut last = 0u32;
            for id in &ids {
                for vd in g.node(*id).expect("known").produced() {
                    if vd.data.as_u64() == d {
                        prop_assert!(vd.version.as_u32() > last);
                        last = vd.version.as_u32();
                    }
                }
            }
        }
    }

    /// Bottom levels upper-bound each successor's bottom level plus the
    /// task's own weight (definition check under random weights).
    #[test]
    fn bottom_levels_are_consistent(
        trace in trace_strategy(10, 40),
        seed in 0u64..1000,
    ) {
        let (ap, ids) = build(&trace).expect("valid traces");
        let g = ap.graph();
        let weight = |t: TaskId| ((t.as_u64().wrapping_mul(seed + 1)) % 7 + 1) as f64;
        let analysis = continuum_dag::GraphAnalysis::new(g);
        let bl = analysis.bottom_levels(weight);
        for id in &ids {
            let succ_max = g
                .successors(*id)
                .iter()
                .map(|s| bl[s.index()])
                .fold(0f64, f64::max);
            prop_assert!((bl[id.index()] - (weight(*id) + succ_max)).abs() < 1e-9);
        }
        // Critical path length equals the max bottom level of sources.
        let cp = analysis.critical_path(weight);
        if !ids.is_empty() {
            let max_source_bl = g
                .nodes()
                .filter(|n| n.predecessors().is_empty())
                .map(|n| bl[n.id().index()])
                .fold(0f64, f64::max);
            prop_assert!((cp.length - max_source_bl).abs() < 1e-9);
        }
    }
}
