//! Load-driven elasticity policies for cloud pools and SLURM-managed
//! clusters (the paper's "runtime supports elasticity" feature).

use serde::{Deserialize, Serialize};

/// Decision produced by an [`ElasticityPolicy`] evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElasticAction {
    /// Provision `n` additional nodes.
    Grow(usize),
    /// Release `n` idle nodes.
    Shrink(usize),
    /// Keep the current allocation.
    Hold,
}

/// Threshold-based elasticity with hysteresis and a cooldown.
///
/// The policy grows when the backlog of ready tasks per node exceeds
/// `grow_threshold` and shrinks when it drops below `shrink_threshold`
/// *and* idle nodes exist. A cooldown prevents oscillation.
///
/// # Example
///
/// ```
/// use continuum_platform::{ElasticityPolicy, ElasticAction};
///
/// let mut policy = ElasticityPolicy::new(1, 10).grow_threshold(4.0);
/// // 2 nodes, 40 ready tasks => heavily backlogged: grow.
/// assert!(matches!(policy.evaluate(0.0, 2, 40, 0), ElasticAction::Grow(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticityPolicy {
    min_nodes: usize,
    max_nodes: usize,
    grow_threshold: f64,
    shrink_threshold: f64,
    cooldown_s: f64,
    max_step: usize,
    last_action_at: Option<f64>,
}

impl ElasticityPolicy {
    /// Creates a policy bounded to `[min_nodes, max_nodes]` with
    /// defaults: grow when >2 ready tasks/node, shrink when <0.25,
    /// 30 s cooldown, at most 4 nodes per step.
    pub fn new(min_nodes: usize, max_nodes: usize) -> Self {
        assert!(min_nodes <= max_nodes, "min must not exceed max");
        ElasticityPolicy {
            min_nodes,
            max_nodes,
            grow_threshold: 2.0,
            shrink_threshold: 0.25,
            cooldown_s: 30.0,
            max_step: 4,
            last_action_at: None,
        }
    }

    /// Sets the ready-tasks-per-node level that triggers growth.
    pub fn grow_threshold(mut self, t: f64) -> Self {
        self.grow_threshold = t;
        self
    }

    /// Sets the ready-tasks-per-node level that triggers shrinking.
    pub fn shrink_threshold(mut self, t: f64) -> Self {
        self.shrink_threshold = t;
        self
    }

    /// Sets the cooldown between actions, in seconds.
    pub fn cooldown_s(mut self, s: f64) -> Self {
        self.cooldown_s = s;
        self
    }

    /// Sets the maximum nodes added/removed per action.
    pub fn max_step(mut self, n: usize) -> Self {
        self.max_step = n.max(1);
        self
    }

    /// Minimum allocation.
    pub fn min_nodes(&self) -> usize {
        self.min_nodes
    }

    /// Maximum allocation.
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// Evaluates the policy.
    ///
    /// * `now` — current time in seconds (monotonic);
    /// * `current_nodes` — nodes currently allocated;
    /// * `ready_tasks` — backlog of ready-but-unscheduled tasks;
    /// * `idle_nodes` — allocated nodes with nothing running.
    pub fn evaluate(
        &mut self,
        now: f64,
        current_nodes: usize,
        ready_tasks: usize,
        idle_nodes: usize,
    ) -> ElasticAction {
        if let Some(last) = self.last_action_at {
            if now - last < self.cooldown_s {
                return ElasticAction::Hold;
            }
        }
        if current_nodes == 0 {
            if ready_tasks > 0 && self.max_nodes > 0 {
                self.last_action_at = Some(now);
                return ElasticAction::Grow(self.max_step.min(self.max_nodes));
            }
            return ElasticAction::Hold;
        }
        let backlog = ready_tasks as f64 / current_nodes as f64;
        if backlog > self.grow_threshold && current_nodes < self.max_nodes {
            let want = ((backlog / self.grow_threshold).ceil() as usize).saturating_sub(1);
            let step = want
                .clamp(1, self.max_step)
                .min(self.max_nodes - current_nodes);
            self.last_action_at = Some(now);
            ElasticAction::Grow(step)
        } else if backlog < self.shrink_threshold
            && idle_nodes > 0
            && current_nodes > self.min_nodes
        {
            let step = idle_nodes
                .min(self.max_step)
                .min(current_nodes - self.min_nodes);
            if step == 0 {
                return ElasticAction::Hold;
            }
            self.last_action_at = Some(now);
            ElasticAction::Shrink(step)
        } else {
            ElasticAction::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_under_backlog() {
        let mut p = ElasticityPolicy::new(1, 10);
        match p.evaluate(0.0, 2, 20, 0) {
            ElasticAction::Grow(n) => assert!((1..=4).contains(&n)),
            other => panic!("expected grow, got {other:?}"),
        }
    }

    #[test]
    fn shrinks_when_idle() {
        let mut p = ElasticityPolicy::new(1, 10);
        match p.evaluate(0.0, 8, 0, 5) {
            ElasticAction::Shrink(n) => assert!((1..=4).contains(&n)),
            other => panic!("expected shrink, got {other:?}"),
        }
    }

    #[test]
    fn holds_in_comfort_zone() {
        let mut p = ElasticityPolicy::new(1, 10);
        assert_eq!(p.evaluate(0.0, 4, 4, 0), ElasticAction::Hold);
    }

    #[test]
    fn cooldown_blocks_consecutive_actions() {
        let mut p = ElasticityPolicy::new(1, 10).cooldown_s(30.0);
        assert!(matches!(p.evaluate(0.0, 2, 40, 0), ElasticAction::Grow(_)));
        assert_eq!(p.evaluate(10.0, 4, 40, 0), ElasticAction::Hold);
        assert!(matches!(p.evaluate(31.0, 4, 40, 0), ElasticAction::Grow(_)));
    }

    #[test]
    fn respects_max_nodes() {
        let mut p = ElasticityPolicy::new(1, 3).cooldown_s(0.0);
        match p.evaluate(0.0, 2, 100, 0) {
            ElasticAction::Grow(n) => assert_eq!(n, 1, "only 1 below max"),
            other => panic!("expected grow, got {other:?}"),
        }
        assert_eq!(p.evaluate(1.0, 3, 100, 0), ElasticAction::Hold);
    }

    #[test]
    fn respects_min_nodes() {
        let mut p = ElasticityPolicy::new(2, 10).cooldown_s(0.0);
        assert_eq!(p.evaluate(0.0, 2, 0, 2), ElasticAction::Hold);
        match p.evaluate(1.0, 4, 0, 4) {
            ElasticAction::Shrink(n) => assert!(n <= 2, "cannot go below min"),
            other => panic!("expected shrink, got {other:?}"),
        }
    }

    #[test]
    fn cold_start_from_zero_nodes() {
        let mut p = ElasticityPolicy::new(0, 8);
        assert!(matches!(p.evaluate(0.0, 0, 5, 0), ElasticAction::Grow(_)));
        let mut q = ElasticityPolicy::new(0, 8);
        assert_eq!(q.evaluate(0.0, 0, 0, 0), ElasticAction::Hold);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn invalid_bounds_rejected() {
        let _ = ElasticityPolicy::new(5, 2);
    }

    #[test]
    fn grow_step_scales_with_backlog() {
        let mut small = ElasticityPolicy::new(1, 100).cooldown_s(0.0);
        let mut big = ElasticityPolicy::new(1, 100).cooldown_s(0.0);
        let s = match small.evaluate(0.0, 4, 10, 0) {
            ElasticAction::Grow(n) => n,
            _ => 0,
        };
        let b = match big.evaluate(0.0, 4, 200, 0) {
            ElasticAction::Grow(n) => n,
            _ => 0,
        };
        assert!(b >= s, "heavier backlog grows at least as much");
    }
}
