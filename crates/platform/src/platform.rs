//! Platform assembly: zones of nodes plus the network between them.

use crate::network::{LinkSpec, NetworkModel};
use crate::node::{DeviceClass, Node, NodeId, NodeSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a zone (cluster, cloud region, fog area).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ZoneId(pub(crate) u16);

impl ZoneId {
    /// A zone id from its raw index (inverse of [`ZoneId::index`]).
    pub fn from_index(index: usize) -> Self {
        ZoneId(index as u16)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

/// What kind of resource pool a zone is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZoneKind {
    /// Fixed-size HPC cluster (possibly SLURM-elastic).
    Cluster,
    /// Elastic cloud pool: nodes can be provisioned up to a maximum.
    Cloud,
    /// Fog area: volatile consumer devices.
    FogArea,
    /// Edge/sensor field.
    EdgeField,
}

/// A zone: a named group of homogeneous nodes with a kind and, for
/// elastic pools, a provisioning limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    id: ZoneId,
    name: String,
    kind: ZoneKind,
    /// Node template used when the pool grows elastically.
    template: NodeSpec,
    /// Maximum node count (== initial count for non-elastic zones).
    max_nodes: usize,
    /// Ids of the nodes currently in this zone.
    nodes: Vec<NodeId>,
}

impl Zone {
    /// The zone's id.
    pub fn id(&self) -> ZoneId {
        self.id
    }

    /// The zone's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The zone's kind.
    pub fn kind(&self) -> ZoneKind {
        self.kind
    }

    /// Node template for elastic growth.
    pub fn template(&self) -> &NodeSpec {
        &self.template
    }

    /// Maximum number of nodes this zone may hold.
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// Current node ids.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Returns `true` if the zone can still grow.
    pub fn can_grow(&self) -> bool {
        matches!(self.kind, ZoneKind::Cloud | ZoneKind::Cluster)
            && self.nodes.len() < self.max_nodes
    }
}

/// A complete platform description: nodes, zones and the network.
///
/// Use [`PlatformBuilder`] to construct one; see the crate-level example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    nodes: Vec<Node>,
    zones: Vec<Zone>,
    network: NetworkModel,
}

impl Platform {
    /// Number of nodes currently in the platform.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by dense index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn node_by_index(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// A node by id, if present.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// All zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// A zone by id.
    ///
    /// # Panics
    ///
    /// Panics if the zone id is unknown.
    pub fn zone(&self, id: ZoneId) -> &Zone {
        &self.zones[id.index()]
    }

    /// The network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Seconds to move `bytes` between two nodes (free on the same
    /// node).
    pub fn transfer_seconds(&self, bytes: u64, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            return 0.0;
        }
        let fz = self.nodes[from.index()].zone();
        let tz = self.nodes[to.index()].zone();
        self.network.transfer_seconds(bytes, fz, tz)
    }

    /// Total core count across all nodes.
    pub fn total_cores(&self) -> u64 {
        self.nodes.iter().map(|n| n.capacity().cores() as u64).sum()
    }

    /// Nodes of a given device class.
    pub fn nodes_of_class(&self, class: DeviceClass) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(move |n| n.spec().device_class() == class)
    }

    /// Grows an elastic zone by one node from its template. Returns the
    /// new node's id, or `None` if the zone is at its maximum.
    pub fn grow_zone(&mut self, zone: ZoneId) -> Option<NodeId> {
        let z = &mut self.zones[zone.index()];
        if z.nodes.len() >= z.max_nodes {
            return None;
        }
        let id = NodeId(self.nodes.len() as u32);
        let name = format!("{}-{}", z.name, z.nodes.len());
        self.nodes
            .push(Node::new(id, name, z.template.clone(), zone));
        z.nodes.push(id);
        Some(id)
    }
}

/// Builder for [`Platform`].
#[derive(Debug)]
pub struct PlatformBuilder {
    nodes: Vec<Node>,
    zones: Vec<Zone>,
    network: NetworkModel,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlatformBuilder {
    /// Creates a builder with a WAN default between zones.
    pub fn new() -> Self {
        PlatformBuilder {
            nodes: Vec::new(),
            zones: Vec::new(),
            network: NetworkModel::new(LinkSpec::wan()),
        }
    }

    /// Sets the default inter-zone link.
    pub fn default_inter_zone(mut self, link: LinkSpec) -> Self {
        let mut net = NetworkModel::new(link);
        // Re-register existing zones to preserve their intra links.
        for z in &self.zones {
            let intra = self.network.link(z.id, z.id);
            net.add_zone(intra);
        }
        // Note: overrides set before this call are discarded; callers
        // should set the default first. Builder order documented.
        self.network = net;
        self
    }

    fn add_zone(
        &mut self,
        name: &str,
        kind: ZoneKind,
        initial: usize,
        max_nodes: usize,
        template: NodeSpec,
        intra: LinkSpec,
    ) -> ZoneId {
        let zone_id = self.network.add_zone(intra);
        debug_assert_eq!(zone_id.index(), self.zones.len());
        let mut node_ids = Vec::with_capacity(initial);
        for i in 0..initial {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node::new(
                id,
                format!("{name}-{i}"),
                template.clone(),
                zone_id,
            ));
            node_ids.push(id);
        }
        self.zones.push(Zone {
            id: zone_id,
            name: name.to_string(),
            kind,
            template,
            max_nodes: max_nodes.max(initial),
            nodes: node_ids,
        });
        zone_id
    }

    /// Adds a fixed-size cluster with an InfiniBand-class fabric.
    pub fn cluster(mut self, name: &str, nodes: usize, spec: NodeSpec) -> Self {
        self.add_zone(
            name,
            ZoneKind::Cluster,
            nodes,
            nodes,
            spec,
            LinkSpec::infiniband(),
        );
        self
    }

    /// Adds an elastic SLURM-like cluster that can grow to `max_nodes`.
    pub fn elastic_cluster(
        mut self,
        name: &str,
        initial: usize,
        max_nodes: usize,
        spec: NodeSpec,
    ) -> Self {
        self.add_zone(
            name,
            ZoneKind::Cluster,
            initial,
            max_nodes,
            spec,
            LinkSpec::infiniband(),
        );
        self
    }

    /// Adds a cloud pool with `initial` VMs (datacenter fabric inside).
    pub fn cloud(mut self, name: &str, initial: usize, spec: NodeSpec) -> Self {
        self.add_zone(
            name,
            ZoneKind::Cloud,
            initial,
            initial.max(64),
            spec,
            LinkSpec::datacenter(),
        );
        self
    }

    /// Adds a cloud pool with an explicit elastic maximum.
    pub fn elastic_cloud(
        mut self,
        name: &str,
        initial: usize,
        max_nodes: usize,
        spec: NodeSpec,
    ) -> Self {
        self.add_zone(
            name,
            ZoneKind::Cloud,
            initial,
            max_nodes,
            spec,
            LinkSpec::datacenter(),
        );
        self
    }

    /// Adds a fog area (wireless fabric inside).
    pub fn fog_area(mut self, name: &str, nodes: usize, spec: NodeSpec) -> Self {
        self.add_zone(
            name,
            ZoneKind::FogArea,
            nodes,
            nodes,
            spec,
            LinkSpec::wireless(),
        );
        self
    }

    /// Adds an edge/sensor field (mobile uplinks inside).
    pub fn edge_field(mut self, name: &str, nodes: usize, spec: NodeSpec) -> Self {
        self.add_zone(
            name,
            ZoneKind::EdgeField,
            nodes,
            nodes,
            spec,
            LinkSpec::mobile(),
        );
        self
    }

    /// Sets an explicit link between two zones (by insertion order
    /// index).
    ///
    /// # Panics
    ///
    /// Panics if either zone index is out of range.
    pub fn link_zones(mut self, a: usize, b: usize, link: LinkSpec) -> Self {
        assert!(a < self.zones.len() && b < self.zones.len(), "unknown zone");
        self.network
            .set_inter_zone(self.zones[a].id, self.zones[b].id, link);
        self
    }

    /// Finalises the platform.
    pub fn build(self) -> Platform {
        Platform {
            nodes: self.nodes,
            zones: self.zones,
            network: self.network,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Platform {
        PlatformBuilder::new()
            .cluster("mn", 3, NodeSpec::hpc(48, 96_000))
            .cloud("aws", 2, NodeSpec::cloud_vm(8, 16_000))
            .fog_area("campus", 4, NodeSpec::fog(4, 4_000))
            .build()
    }

    #[test]
    fn builder_creates_nodes_and_zones() {
        let p = sample();
        assert_eq!(p.num_nodes(), 9);
        assert_eq!(p.zones().len(), 3);
        assert_eq!(p.total_cores(), 3 * 48 + 2 * 8 + 4 * 4);
        assert_eq!(p.zone(ZoneId(0)).name(), "mn");
        assert_eq!(p.node_by_index(0).name(), "mn-0");
        assert_eq!(p.node_by_index(3).name(), "aws-0");
    }

    #[test]
    fn node_zone_assignment() {
        let p = sample();
        assert_eq!(p.node_by_index(0).zone(), ZoneId(0));
        assert_eq!(p.node_by_index(4).zone(), ZoneId(1));
        assert_eq!(p.node_by_index(8).zone(), ZoneId(2));
    }

    #[test]
    fn transfer_free_on_same_node() {
        let p = sample();
        let n0 = p.node_by_index(0).id();
        assert_eq!(p.transfer_seconds(1_000_000, n0, n0), 0.0);
    }

    #[test]
    fn transfer_cost_grows_across_zones() {
        let p = sample();
        let bytes = 100_000_000;
        let intra = p.transfer_seconds(bytes, NodeId(0), NodeId(1));
        let wan = p.transfer_seconds(bytes, NodeId(0), NodeId(3));
        assert!(intra < wan);
    }

    #[test]
    fn grow_zone_respects_maximum() {
        let mut p = PlatformBuilder::new()
            .elastic_cloud("ec2", 1, 3, NodeSpec::cloud_vm(8, 16_000))
            .build();
        assert_eq!(p.num_nodes(), 1);
        let z = p.zones()[0].id();
        assert!(p.grow_zone(z).is_some());
        assert!(p.grow_zone(z).is_some());
        assert!(p.grow_zone(z).is_none(), "at max");
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.zone(z).node_ids().len(), 3);
        assert_eq!(p.node_by_index(2).name(), "ec2-2");
    }

    #[test]
    fn fixed_cluster_cannot_grow() {
        let mut p = PlatformBuilder::new()
            .cluster("mn", 2, NodeSpec::hpc(48, 96_000))
            .build();
        let z = p.zones()[0].id();
        assert!(!p.zone(z).can_grow());
        assert!(p.grow_zone(z).is_none());
    }

    #[test]
    fn nodes_of_class_filter() {
        let p = sample();
        assert_eq!(p.nodes_of_class(DeviceClass::Hpc).count(), 3);
        assert_eq!(p.nodes_of_class(DeviceClass::Fog).count(), 4);
        assert_eq!(p.nodes_of_class(DeviceClass::Sensor).count(), 0);
    }

    #[test]
    fn explicit_zone_links() {
        let p = PlatformBuilder::new()
            .cluster("a", 1, NodeSpec::hpc(4, 1000))
            .cluster("b", 1, NodeSpec::hpc(4, 1000))
            .link_zones(0, 1, LinkSpec::new(5000.0, 1e-5))
            .build();
        let t = p.transfer_seconds(1_000_000_000, NodeId(0), NodeId(1));
        assert!(t < 1.0, "custom fast link should beat WAN default, got {t}");
    }

    #[test]
    fn elastic_cluster_grows() {
        let mut p = PlatformBuilder::new()
            .elastic_cluster("slurm", 2, 4, NodeSpec::hpc(48, 96_000))
            .build();
        let z = p.zones()[0].id();
        assert!(p.zone(z).can_grow());
        p.grow_zone(z).unwrap();
        p.grow_zone(z).unwrap();
        assert!(p.grow_zone(z).is_none());
    }
}
