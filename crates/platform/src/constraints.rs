//! Task resource constraints and node capacities.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Resource requirements a task imposes on the node that hosts it.
///
/// This mirrors the COMPSs `@constraint` annotation from the paper:
/// compute units, memory, disk, GPUs, required software packages and a
/// processor architecture. An empty `Constraints` (the default) is
/// satisfied by any node with at least one free core.
///
/// # Example
///
/// ```
/// use continuum_platform::{Constraints, NodeCapacity};
///
/// let req = Constraints::new()
///     .compute_units(4)
///     .memory_mb(8_192)
///     .software("blast");
/// let node = NodeCapacity::new(48, 96_000).with_software(["blast"]);
/// assert!(node.satisfies(&req));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Constraints {
    compute_units: u32,
    memory_mb: u64,
    disk_mb: u64,
    gpus: u32,
    software: BTreeSet<String>,
    arch: Option<String>,
    /// Number of whole nodes required (for rigid MPI tasks). 1 for
    /// ordinary tasks; >1 means the task simultaneously occupies
    /// `nodes` full nodes.
    nodes: u32,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            compute_units: 1,
            memory_mb: 0,
            disk_mb: 0,
            gpus: 0,
            software: BTreeSet::new(),
            arch: None,
            nodes: 1,
        }
    }
}

impl Constraints {
    /// Creates the default constraints: one compute unit, no further
    /// requirements.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires `n` compute units (cores) on the host node.
    pub fn compute_units(mut self, n: u32) -> Self {
        self.compute_units = n.max(1);
        self
    }

    /// Requires `mb` megabytes of memory.
    pub fn memory_mb(mut self, mb: u64) -> Self {
        self.memory_mb = mb;
        self
    }

    /// Requires `mb` megabytes of scratch disk.
    pub fn disk_mb(mut self, mb: u64) -> Self {
        self.disk_mb = mb;
        self
    }

    /// Requires `n` GPUs.
    pub fn gpus(mut self, n: u32) -> Self {
        self.gpus = n;
        self
    }

    /// Requires a software package to be present on the node.
    pub fn software(mut self, pkg: impl Into<String>) -> Self {
        self.software.insert(pkg.into());
        self
    }

    /// Requires a processor architecture (e.g. `"x86_64"`).
    pub fn arch(mut self, arch: impl Into<String>) -> Self {
        self.arch = Some(arch.into());
        self
    }

    /// Declares a rigid multi-node (MPI) task spanning `n` full nodes.
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n.max(1);
        self
    }

    /// Required compute units.
    pub fn required_compute_units(&self) -> u32 {
        self.compute_units
    }

    /// Required memory in MB.
    pub fn required_memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// Required disk in MB.
    pub fn required_disk_mb(&self) -> u64 {
        self.disk_mb
    }

    /// Required GPU count.
    pub fn required_gpus(&self) -> u32 {
        self.gpus
    }

    /// Required software packages.
    pub fn required_software(&self) -> &BTreeSet<String> {
        &self.software
    }

    /// Required architecture, if constrained.
    pub fn required_arch(&self) -> Option<&str> {
        self.arch.as_deref()
    }

    /// Number of whole nodes required (1 = ordinary task).
    pub fn required_nodes(&self) -> u32 {
        self.nodes
    }

    /// Returns `true` if this is a rigid multi-node task.
    pub fn is_multi_node(&self) -> bool {
        self.nodes > 1
    }
}

/// The (remaining) capacity of a node, against which task
/// [`Constraints`] are matched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCapacity {
    cores: u32,
    memory_mb: u64,
    disk_mb: u64,
    gpus: u32,
    software: BTreeSet<String>,
    arch: String,
}

impl NodeCapacity {
    /// Creates a capacity with the given cores and memory, ample disk,
    /// no GPUs and `x86_64` architecture.
    pub fn new(cores: u32, memory_mb: u64) -> Self {
        NodeCapacity {
            cores,
            memory_mb,
            disk_mb: u64::MAX / 2,
            gpus: 0,
            software: BTreeSet::new(),
            arch: "x86_64".to_string(),
        }
    }

    /// Sets the available disk.
    pub fn with_disk_mb(mut self, mb: u64) -> Self {
        self.disk_mb = mb;
        self
    }

    /// Sets the GPU count.
    pub fn with_gpus(mut self, n: u32) -> Self {
        self.gpus = n;
        self
    }

    /// Adds installed software packages.
    pub fn with_software<I, S>(mut self, pkgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.software.extend(pkgs.into_iter().map(Into::into));
        self
    }

    /// Sets the architecture string.
    pub fn with_arch(mut self, arch: impl Into<String>) -> Self {
        self.arch = arch.into();
        self
    }

    /// Available cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Available memory in MB.
    pub fn memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// Available disk in MB.
    pub fn disk_mb(&self) -> u64 {
        self.disk_mb
    }

    /// Available GPUs.
    pub fn gpus(&self) -> u32 {
        self.gpus
    }

    /// Installed software.
    pub fn software(&self) -> &BTreeSet<String> {
        &self.software
    }

    /// Architecture string.
    pub fn arch(&self) -> &str {
        &self.arch
    }

    /// Returns `true` if this capacity can host a task with the given
    /// constraints (single-node check: multi-node tasks must be checked
    /// per participating node).
    pub fn satisfies(&self, req: &Constraints) -> bool {
        self.cores >= req.required_compute_units()
            && self.memory_mb >= req.required_memory_mb()
            && self.disk_mb >= req.required_disk_mb()
            && self.gpus >= req.required_gpus()
            && req.required_software().is_subset(&self.software)
            && req.required_arch().is_none_or(|a| a == self.arch)
    }

    /// Subtracts a task's requirements from this capacity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the capacity does not satisfy the
    /// constraints; callers must check [`NodeCapacity::satisfies`]
    /// first.
    pub fn allocate(&mut self, req: &Constraints) {
        debug_assert!(self.satisfies(req), "allocate without satisfies check");
        self.cores -= req.required_compute_units();
        self.memory_mb -= req.required_memory_mb();
        self.disk_mb = self.disk_mb.saturating_sub(req.required_disk_mb());
        self.gpus -= req.required_gpus();
    }

    /// Returns a task's requirements to this capacity.
    pub fn release(&mut self, req: &Constraints) {
        self.cores += req.required_compute_units();
        self.memory_mb += req.required_memory_mb();
        self.disk_mb = self.disk_mb.saturating_add(req.required_disk_mb());
        self.gpus += req.required_gpus();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_constraints_need_one_core() {
        let c = Constraints::new();
        assert_eq!(c.required_compute_units(), 1);
        assert!(!c.is_multi_node());
        let cap = NodeCapacity::new(1, 0);
        assert!(cap.satisfies(&c));
        let empty = NodeCapacity::new(0, 0);
        assert!(!empty.satisfies(&c));
    }

    #[test]
    fn compute_units_clamped_to_one() {
        assert_eq!(
            Constraints::new().compute_units(0).required_compute_units(),
            1
        );
        assert_eq!(Constraints::new().nodes(0).required_nodes(), 1);
    }

    #[test]
    fn memory_and_gpu_matching() {
        let req = Constraints::new().memory_mb(1000).gpus(2);
        let cap = NodeCapacity::new(4, 2000).with_gpus(2);
        assert!(cap.satisfies(&req));
        assert!(!NodeCapacity::new(4, 500).with_gpus(2).satisfies(&req));
        assert!(!NodeCapacity::new(4, 2000).with_gpus(1).satisfies(&req));
    }

    #[test]
    fn software_subset_matching() {
        let req = Constraints::new().software("blast").software("samtools");
        let full = NodeCapacity::new(4, 0).with_software(["blast", "samtools", "bwa"]);
        let partial = NodeCapacity::new(4, 0).with_software(["blast"]);
        assert!(full.satisfies(&req));
        assert!(!partial.satisfies(&req));
    }

    #[test]
    fn arch_matching() {
        let req = Constraints::new().arch("aarch64");
        assert!(!NodeCapacity::new(1, 0).satisfies(&req));
        assert!(NodeCapacity::new(1, 0).with_arch("aarch64").satisfies(&req));
        // Unconstrained arch matches anything.
        assert!(NodeCapacity::new(1, 0)
            .with_arch("riscv")
            .satisfies(&Constraints::new()));
    }

    #[test]
    fn allocate_release_roundtrip() {
        let req = Constraints::new().compute_units(2).memory_mb(100).gpus(1);
        let mut cap = NodeCapacity::new(4, 300).with_gpus(2).with_disk_mb(1000);
        cap.allocate(&req);
        assert_eq!(cap.cores(), 2);
        assert_eq!(cap.memory_mb(), 200);
        assert_eq!(cap.gpus(), 1);
        cap.release(&req);
        assert_eq!(cap.cores(), 4);
        assert_eq!(cap.memory_mb(), 300);
        assert_eq!(cap.gpus(), 2);
    }

    #[test]
    fn capacity_exhaustion_detected() {
        let req = Constraints::new().compute_units(3);
        let mut cap = NodeCapacity::new(4, 0);
        cap.allocate(&req);
        assert!(!cap.satisfies(&req), "only 1 core left");
    }

    #[test]
    fn multi_node_constraint() {
        let c = Constraints::new().nodes(4);
        assert!(c.is_multi_node());
        assert_eq!(c.required_nodes(), 4);
    }

    #[test]
    fn disk_constraint() {
        let req = Constraints::new().disk_mb(500);
        assert!(NodeCapacity::new(1, 0).with_disk_mb(600).satisfies(&req));
        assert!(!NodeCapacity::new(1, 0).with_disk_mb(100).satisfies(&req));
    }
}
