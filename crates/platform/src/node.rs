//! Nodes of the computing continuum: HPC, cloud, fog and edge devices.

use crate::constraints::NodeCapacity;
use crate::energy::PowerModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within a [`crate::Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The layer of the continuum a device belongs to (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Supercomputer/cluster node.
    Hpc,
    /// Cloud virtual machine.
    CloudVm,
    /// Fog device with moderate compute (smartphone, gateway, tablet).
    Fog,
    /// Edge device with minimal compute (embedded board).
    Edge,
    /// Sensor/instrument: produces data, no general compute.
    Sensor,
}

impl DeviceClass {
    /// Default power model for the class (typical idle/active watts).
    pub fn default_power(self) -> PowerModel {
        match self {
            DeviceClass::Hpc => PowerModel::new(150.0, 350.0),
            DeviceClass::CloudVm => PowerModel::new(60.0, 180.0),
            DeviceClass::Fog => PowerModel::new(2.0, 7.0),
            DeviceClass::Edge => PowerModel::new(0.5, 3.0),
            DeviceClass::Sensor => PowerModel::new(0.05, 0.3),
        }
    }

    /// Returns `true` for battery-powered classes subject to churn.
    pub fn is_volatile(self) -> bool {
        matches!(
            self,
            DeviceClass::Fog | DeviceClass::Edge | DeviceClass::Sensor
        )
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Hpc => "hpc",
            DeviceClass::CloudVm => "cloud-vm",
            DeviceClass::Fog => "fog",
            DeviceClass::Edge => "edge",
            DeviceClass::Sensor => "sensor",
        };
        f.write_str(s)
    }
}

/// Static description of a node type: capacity, relative speed, device
/// class and power model.
///
/// # Example
///
/// ```
/// use continuum_platform::{NodeSpec, DeviceClass};
///
/// let spec = NodeSpec::hpc(48, 96_000).with_speed(1.2).with_gpus(2);
/// assert_eq!(spec.device_class(), DeviceClass::Hpc);
/// assert_eq!(spec.capacity().gpus(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    capacity: NodeCapacity,
    /// Relative speed factor: task durations are divided by this.
    speed: f64,
    class: DeviceClass,
    power: PowerModel,
}

impl NodeSpec {
    /// Creates a node spec with explicit class; speed 1.0, class-default
    /// power.
    pub fn new(class: DeviceClass, cores: u32, memory_mb: u64) -> Self {
        NodeSpec {
            capacity: NodeCapacity::new(cores, memory_mb),
            speed: 1.0,
            class,
            power: class.default_power(),
        }
    }

    /// An HPC cluster node (e.g. MareNostrum: 48 cores, 96 GB).
    pub fn hpc(cores: u32, memory_mb: u64) -> Self {
        Self::new(DeviceClass::Hpc, cores, memory_mb)
    }

    /// A cloud VM.
    pub fn cloud_vm(cores: u32, memory_mb: u64) -> Self {
        Self::new(DeviceClass::CloudVm, cores, memory_mb)
    }

    /// A fog device (smartphone/gateway class).
    pub fn fog(cores: u32, memory_mb: u64) -> Self {
        Self::new(DeviceClass::Fog, cores, memory_mb)
    }

    /// An edge device (embedded class).
    pub fn edge(cores: u32, memory_mb: u64) -> Self {
        Self::new(DeviceClass::Edge, cores, memory_mb)
    }

    /// A sensor: one notional core for data-producing stub tasks.
    pub fn sensor() -> Self {
        Self::new(DeviceClass::Sensor, 1, 64)
    }

    /// Sets the relative speed factor (>0).
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "speed factor must be positive");
        self.speed = speed;
        self
    }

    /// Sets the GPU count.
    pub fn with_gpus(mut self, n: u32) -> Self {
        self.capacity = self.capacity.clone().with_gpus(n);
        self
    }

    /// Adds installed software.
    pub fn with_software<I, S>(mut self, pkgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.capacity = self.capacity.clone().with_software(pkgs);
        self
    }

    /// Sets the architecture string.
    pub fn with_arch(mut self, arch: impl Into<String>) -> Self {
        self.capacity = self.capacity.clone().with_arch(arch);
        self
    }

    /// Overrides the power model.
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Sets the disk capacity.
    pub fn with_disk_mb(mut self, mb: u64) -> Self {
        self.capacity = self.capacity.clone().with_disk_mb(mb);
        self
    }

    /// The full (idle) capacity.
    pub fn capacity(&self) -> &NodeCapacity {
        &self.capacity
    }

    /// Relative speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Device class.
    pub fn device_class(&self) -> DeviceClass {
        self.class
    }

    /// Power model.
    pub fn power(&self) -> PowerModel {
        self.power
    }
}

/// A node instance in a platform: a spec bound to an id and a zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    name: String,
    spec: NodeSpec,
    zone: crate::platform::ZoneId,
}

impl Node {
    pub(crate) fn new(
        id: NodeId,
        name: String,
        spec: NodeSpec,
        zone: crate::platform::ZoneId,
    ) -> Self {
        Node {
            id,
            name,
            spec,
            zone,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable name (`cluster-3`, `fog-0`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's static spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// The full (idle) capacity.
    pub fn capacity(&self) -> &NodeCapacity {
        self.spec.capacity()
    }

    /// The zone the node belongs to.
    pub fn zone(&self) -> crate::platform::ZoneId {
        self.zone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraints;

    #[test]
    fn class_constructors() {
        assert_eq!(NodeSpec::hpc(48, 96_000).device_class(), DeviceClass::Hpc);
        assert_eq!(
            NodeSpec::cloud_vm(8, 16_000).device_class(),
            DeviceClass::CloudVm
        );
        assert_eq!(NodeSpec::fog(4, 4_000).device_class(), DeviceClass::Fog);
        assert_eq!(NodeSpec::edge(2, 1_000).device_class(), DeviceClass::Edge);
        assert_eq!(NodeSpec::sensor().device_class(), DeviceClass::Sensor);
    }

    #[test]
    fn volatility_by_class() {
        assert!(!DeviceClass::Hpc.is_volatile());
        assert!(!DeviceClass::CloudVm.is_volatile());
        assert!(DeviceClass::Fog.is_volatile());
        assert!(DeviceClass::Edge.is_volatile());
        assert!(DeviceClass::Sensor.is_volatile());
    }

    #[test]
    fn power_defaults_scale_with_class() {
        let hpc = DeviceClass::Hpc.default_power();
        let edge = DeviceClass::Edge.default_power();
        assert!(hpc.active_watts() > edge.active_watts());
    }

    #[test]
    #[should_panic(expected = "speed factor must be positive")]
    fn zero_speed_rejected() {
        let _ = NodeSpec::hpc(1, 1).with_speed(0.0);
    }

    #[test]
    fn builder_decorations_apply() {
        let spec = NodeSpec::hpc(48, 96_000)
            .with_gpus(4)
            .with_software(["cuda"])
            .with_arch("ppc64le")
            .with_speed(2.0);
        let req = Constraints::new().gpus(1).software("cuda").arch("ppc64le");
        assert!(spec.capacity().satisfies(&req));
        assert_eq!(spec.speed(), 2.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::from_raw(3).to_string(), "n3");
        assert_eq!(DeviceClass::CloudVm.to_string(), "cloud-vm");
    }
}
