//! Ready-made platform presets for the scenarios the paper names:
//! a MareNostrum-class supercomputer, a hybrid HPC+cloud deployment
//! and a smart-city continuum (sensors → fog → cloud).

use crate::network::LinkSpec;
use crate::node::NodeSpec;
use crate::platform::{Platform, PlatformBuilder};

/// A MareNostrum-4-like cluster slice: `nodes` × 48 cores / 96 GB on
/// an InfiniBand fabric (the machine GUIDANCE ran on, §VI-A).
pub fn marenostrum(nodes: usize) -> Platform {
    PlatformBuilder::new()
        .cluster("mn4", nodes, NodeSpec::hpc(48, 96_000))
        .build()
}

/// A hybrid HPC + elastic-cloud deployment: a fixed cluster plus a
/// cloud pool that can grow, joined by a WAN — the "HPC systems will
/// be coupled with public and private Cloud infrastructures" platform
/// of §I/§III.
pub fn hybrid_hpc_cloud(cluster_nodes: usize, cloud_initial: usize, cloud_max: usize) -> Platform {
    PlatformBuilder::new()
        .cluster("hpc", cluster_nodes, NodeSpec::hpc(48, 96_000))
        .elastic_cloud(
            "cloud",
            cloud_initial,
            cloud_max,
            NodeSpec::cloud_vm(8, 32_000),
        )
        .link_zones(0, 1, LinkSpec::wan())
        .build()
}

/// A smart-city continuum (§I: "myriad of distributed sensors from
/// the Smart Cities projects"): a field of sensors behind fog
/// gateways, backed by a cloud, with mobile uplinks from the sensor
/// field and a shared wireless fog↔cloud link.
pub fn smart_city(sensors: usize, fog_devices: usize, cloud_vms: usize) -> Platform {
    PlatformBuilder::new()
        .edge_field(
            "sensors",
            sensors,
            NodeSpec::sensor().with_software(["edge-source"]),
        )
        .fog_area("gateways", fog_devices, NodeSpec::fog(4, 8_000))
        .cloud(
            "dc",
            cloud_vms,
            NodeSpec::cloud_vm(8, 32_000).with_speed(4.0),
        )
        .link_zones(0, 1, LinkSpec::wireless())
        .link_zones(0, 2, LinkSpec::mobile())
        .link_zones(1, 2, LinkSpec::wireless())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DeviceClass;

    #[test]
    fn marenostrum_shape() {
        let p = marenostrum(100);
        assert_eq!(p.num_nodes(), 100);
        assert_eq!(p.total_cores(), 4800);
        assert_eq!(p.nodes_of_class(DeviceClass::Hpc).count(), 100);
        // Intra-cluster fabric is fast: 1 GB in well under a second.
        let t = p.transfer_seconds(
            1_000_000_000,
            p.node_by_index(0).id(),
            p.node_by_index(99).id(),
        );
        assert!(t < 0.2, "{t}");
    }

    #[test]
    fn hybrid_has_elastic_cloud_and_wan() {
        let mut p = hybrid_hpc_cloud(4, 2, 8);
        assert_eq!(p.num_nodes(), 6);
        let cloud = p.zones()[1].id();
        assert!(p.zone(cloud).can_grow());
        assert!(p.grow_zone(cloud).is_some());
        // Cluster→cloud crossing pays WAN cost.
        let wan = p.transfer_seconds(
            120_000_000,
            p.node_by_index(0).id(),
            p.node_by_index(4).id(),
        );
        assert!(wan > 0.5, "{wan}");
    }

    #[test]
    fn smart_city_layers() {
        let p = smart_city(10, 4, 2);
        assert_eq!(p.num_nodes(), 16);
        assert_eq!(p.nodes_of_class(DeviceClass::Sensor).count(), 10);
        assert_eq!(p.nodes_of_class(DeviceClass::Fog).count(), 4);
        assert_eq!(p.nodes_of_class(DeviceClass::CloudVm).count(), 2);
        // Sensor→cloud is slower than fog→cloud (mobile vs wireless).
        let sensor_up =
            p.transfer_seconds(6_000_000, p.node_by_index(0).id(), p.node_by_index(14).id());
        let fog_up = p.transfer_seconds(
            6_000_000,
            p.node_by_index(10).id(),
            p.node_by_index(14).id(),
        );
        assert!(sensor_up > fog_up);
        // Sensors advertise the edge-source tag used by streaming
        // workloads.
        assert!(p
            .node_by_index(0)
            .capacity()
            .software()
            .contains("edge-source"));
    }
}
