//! Zone-based network model for costing data transfers across the
//! continuum (intra-cluster fabric, cluster↔cloud WAN, fog wireless…).

use crate::platform::ZoneId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bandwidth/latency of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    bandwidth_mbps: f64,
    latency_s: f64,
}

impl LinkSpec {
    /// Creates a link with bandwidth in **megabytes per second** and
    /// latency in seconds.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive or latency is negative.
    pub fn new(bandwidth_mbps: f64, latency_s: f64) -> Self {
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        LinkSpec {
            bandwidth_mbps,
            latency_s,
        }
    }

    /// 100 Gbit/s-class HPC interconnect (InfiniBand).
    pub fn infiniband() -> Self {
        LinkSpec::new(12_000.0, 2e-6)
    }

    /// 10 Gbit/s datacenter Ethernet.
    pub fn datacenter() -> Self {
        LinkSpec::new(1_200.0, 1e-4)
    }

    /// Cluster-to-cloud WAN (1 Gbit/s, 20 ms).
    pub fn wan() -> Self {
        LinkSpec::new(120.0, 0.02)
    }

    /// Fog wireless link (50 Mbit/s WiFi-class, 5 ms).
    pub fn wireless() -> Self {
        LinkSpec::new(6.0, 0.005)
    }

    /// Constrained mobile/IoT uplink (5 Mbit/s, 50 ms).
    pub fn mobile() -> Self {
        LinkSpec::new(0.6, 0.05)
    }

    /// Bandwidth in MB/s.
    pub fn bandwidth_mbps(self) -> f64 {
        self.bandwidth_mbps
    }

    /// Latency in seconds.
    pub fn latency_s(self) -> f64 {
        self.latency_s
    }

    /// Time to move `bytes` over this link, latency included.
    pub fn transfer_seconds(self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_mbps * 1e6)
    }
}

/// The cost of one planned transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferCost {
    /// Seconds the transfer occupies the link.
    pub seconds: f64,
    /// Bytes moved.
    pub bytes: u64,
}

/// Zone-based network: each zone has an internal link class; zone pairs
/// use an explicit override or the default inter-zone (WAN) link.
/// Transfers within the same node are free.
///
/// # Example
///
/// ```
/// use continuum_platform::{NetworkModel, LinkSpec};
///
/// let mut net = NetworkModel::new(LinkSpec::wan());
/// let z0 = net.add_zone(LinkSpec::infiniband());
/// let z1 = net.add_zone(LinkSpec::datacenter());
/// // 100 MB across the WAN takes ~0.85 s; inside the cluster ~8 ms.
/// assert!(net.transfer_seconds(100_000_000, z0, z1) > 0.5);
/// assert!(net.transfer_seconds(100_000_000, z0, z0) < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    intra_zone: Vec<LinkSpec>,
    default_inter: LinkSpec,
    overrides: HashMap<(u16, u16), LinkSpec>,
}

impl NetworkModel {
    /// Creates a network with the given default inter-zone link.
    pub fn new(default_inter: LinkSpec) -> Self {
        NetworkModel {
            intra_zone: Vec::new(),
            default_inter,
            overrides: HashMap::new(),
        }
    }

    /// Registers a zone with its internal link class; returns its id.
    pub fn add_zone(&mut self, intra: LinkSpec) -> ZoneId {
        let id = ZoneId(self.intra_zone.len() as u16);
        self.intra_zone.push(intra);
        id
    }

    /// Number of registered zones.
    pub fn num_zones(&self) -> usize {
        self.intra_zone.len()
    }

    /// Sets an explicit link for a zone pair (order-insensitive).
    pub fn set_inter_zone(&mut self, a: ZoneId, b: ZoneId, link: LinkSpec) {
        self.overrides.insert(Self::key(a, b), link);
    }

    fn key(a: ZoneId, b: ZoneId) -> (u16, u16) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// The link used between two zones.
    ///
    /// # Panics
    ///
    /// Panics if either zone is not registered.
    pub fn link(&self, a: ZoneId, b: ZoneId) -> LinkSpec {
        assert!(
            (a.0 as usize) < self.intra_zone.len() && (b.0 as usize) < self.intra_zone.len(),
            "unknown zone"
        );
        if a == b {
            self.intra_zone[a.0 as usize]
        } else {
            *self
                .overrides
                .get(&Self::key(a, b))
                .unwrap_or(&self.default_inter)
        }
    }

    /// Seconds to move `bytes` between nodes in the given zones
    /// (different nodes assumed; same-node transfers are free and
    /// handled by callers).
    pub fn transfer_seconds(&self, bytes: u64, from: ZoneId, to: ZoneId) -> f64 {
        self.link(from, to).transfer_seconds(bytes)
    }

    /// Full transfer cost record.
    pub fn transfer_cost(&self, bytes: u64, from: ZoneId, to: ZoneId) -> TransferCost {
        TransferCost {
            seconds: self.transfer_seconds(bytes, from, to),
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_math() {
        let link = LinkSpec::new(100.0, 0.01); // 100 MB/s, 10 ms
                                               // 200 MB => 2 s + 10 ms.
        assert!((link.transfer_seconds(200_000_000) - 2.01).abs() < 1e-9);
        // Zero bytes still pay latency.
        assert!((link.transfer_seconds(0) - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkSpec::new(0.0, 0.0);
    }

    #[test]
    fn intra_vs_inter_zone() {
        let mut net = NetworkModel::new(LinkSpec::wan());
        let a = net.add_zone(LinkSpec::infiniband());
        let b = net.add_zone(LinkSpec::datacenter());
        let bytes = 1_000_000_000u64; // 1 GB
        let intra = net.transfer_seconds(bytes, a, a);
        let inter = net.transfer_seconds(bytes, a, b);
        assert!(intra < inter, "intra-zone must be faster than WAN");
    }

    #[test]
    fn overrides_take_precedence() {
        let mut net = NetworkModel::new(LinkSpec::wan());
        let a = net.add_zone(LinkSpec::datacenter());
        let b = net.add_zone(LinkSpec::datacenter());
        let fast = LinkSpec::new(10_000.0, 1e-6);
        net.set_inter_zone(a, b, fast);
        assert_eq!(net.link(a, b), fast);
        // Order-insensitive.
        assert_eq!(net.link(b, a), fast);
    }

    #[test]
    fn link_presets_ordering() {
        // Sanity: presets should be ordered by technology generation.
        assert!(LinkSpec::infiniband().bandwidth_mbps() > LinkSpec::datacenter().bandwidth_mbps());
        assert!(LinkSpec::datacenter().bandwidth_mbps() > LinkSpec::wan().bandwidth_mbps());
        assert!(LinkSpec::wan().bandwidth_mbps() > LinkSpec::wireless().bandwidth_mbps());
        assert!(LinkSpec::wireless().bandwidth_mbps() > LinkSpec::mobile().bandwidth_mbps());
    }

    #[test]
    #[should_panic(expected = "unknown zone")]
    fn unknown_zone_panics() {
        let net = NetworkModel::new(LinkSpec::wan());
        let _ = net.link(ZoneId(0), ZoneId(1));
    }

    #[test]
    fn transfer_cost_record() {
        let mut net = NetworkModel::new(LinkSpec::wan());
        let a = net.add_zone(LinkSpec::datacenter());
        let c = net.transfer_cost(1000, a, a);
        assert_eq!(c.bytes, 1000);
        assert!(c.seconds > 0.0);
    }
}
