//! Single-use, waker-aware reply cells: the bridge between the
//! blocking service threads of the stack (storage backends, agent
//! inboxes) and async task bodies polled by an executor.
//!
//! A [`channel`] pair carries exactly one value. The sender side lives
//! on a service thread and [`send`](OneshotSender::send)s the reply
//! when the blocking call finishes; the receiver side is a
//! [`Future`] an async task awaits, parking itself (costing a waker
//! clone, not a thread) until the reply lands. Dropping the sender
//! without sending resolves the receiver to `None`, so a dying service
//! thread can never strand a parked task.
//!
//! The cell is executor-agnostic — it speaks only `std::task::Waker` —
//! which keeps the lower layers of the stack free of any dependency on
//! the runtime crate. The registered waker is always invoked *after*
//! the internal lock is released, so executors whose wakers take their
//! own locks (the runtime's scheduler does) cannot deadlock through a
//! reply.

#![deny(clippy::await_holding_lock)]

use crate::sync::Mutex;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

struct Inner<T> {
    /// The reply, once sent.
    value: Option<T>,
    /// Waker of the awaiting task, registered at the latest poll.
    waker: Option<Waker>,
    /// The sender is gone (dropped or consumed by a send).
    closed: bool,
}

/// Producer half: fulfilled once by the service thread.
pub struct OneshotSender<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

/// Consumer half: a [`Future`] resolving to `Some(reply)`, or `None`
/// if the sender was dropped without replying.
pub struct OneshotReceiver<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

/// Creates a connected reply-cell pair.
pub fn channel<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Arc::new(Mutex::new(Inner {
        value: None,
        waker: None,
        closed: false,
    }));
    (
        OneshotSender {
            inner: Arc::clone(&inner),
        },
        OneshotReceiver { inner },
    )
}

impl<T> OneshotSender<T> {
    /// Delivers the reply and wakes the awaiting task. Returns `false`
    /// if a reply was already delivered (the extra value is dropped) —
    /// `&self` so the cell can sit behind shared reply-routing enums.
    pub fn send(&self, value: T) -> bool {
        let waker = {
            let mut s = self.inner.lock();
            if s.closed {
                return false;
            }
            s.value = Some(value);
            s.closed = true;
            s.waker.take()
        };
        // Outside the lock: the waker may re-enter the executor.
        if let Some(w) = waker {
            w.wake();
        }
        true
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut s = self.inner.lock();
            if s.closed {
                return;
            }
            // No reply will ever come; resolve the receiver to `None`
            // rather than stranding it parked.
            s.closed = true;
            s.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut s = self.inner.lock();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Some(v));
        }
        if s.closed {
            return Poll::Ready(None);
        }
        // Re-register only when the stored waker would not already
        // wake this task.
        match &s.waker {
            Some(w) if w.will_wake(cx.waker()) => {}
            _ => s.waker = Some(cx.waker().clone()),
        }
        Poll::Pending
    }
}

impl<T> std::fmt::Debug for OneshotSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OneshotSender")
    }
}

impl<T> std::fmt::Debug for OneshotReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OneshotReceiver")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Wake;

    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn poll_once<T>(rx: &mut OneshotReceiver<T>, waker: &Waker) -> Poll<Option<T>> {
        Pin::new(rx).poll(&mut Context::from_waker(waker))
    }

    #[test]
    fn send_before_poll_resolves_immediately() {
        let (tx, mut rx) = channel::<u32>();
        assert!(tx.send(7));
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        assert_eq!(poll_once(&mut rx, &waker), Poll::Ready(Some(7)));
        assert_eq!(counter.0.load(Ordering::SeqCst), 0, "no park, no wake");
    }

    #[test]
    fn send_after_poll_wakes_exactly_once() {
        let (tx, mut rx) = channel::<u32>();
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        assert_eq!(poll_once(&mut rx, &waker), Poll::Pending);
        assert_eq!(poll_once(&mut rx, &waker), Poll::Pending, "re-poll is fine");
        assert!(tx.send(9));
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        assert_eq!(poll_once(&mut rx, &waker), Poll::Ready(Some(9)));
        assert!(!tx.send(10), "second send is rejected");
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropped_sender_resolves_to_none() {
        let (tx, mut rx) = channel::<u32>();
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        assert_eq!(poll_once(&mut rx, &waker), Poll::Pending);
        drop(tx);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        assert_eq!(poll_once(&mut rx, &waker), Poll::Ready(None));
    }
}
