//! Resource, constraint, network, energy and elasticity models for the
//! `continuum` workflow environment.
//!
//! This crate describes the *advanced cyberinfrastructure platforms*
//! (ACPs) of the paper: heterogeneous nodes grouped into HPC clusters,
//! cloud pools, fog areas and edge devices, connected by links of very
//! different bandwidth/latency, each with an energy profile, and —
//! for clouds and SLURM-managed clusters — elastic capacity.
//!
//! The key abstractions are:
//!
//! * [`Constraints`] — per-task resource requirements (compute units,
//!   memory, GPUs, software, architecture), matching COMPSs task
//!   constraints;
//! * [`NodeSpec`]/[`Node`] — capacity, relative speed and power model
//!   of one machine, tagged with a [`DeviceClass`] (HPC, cloud VM, fog
//!   device, edge sensor);
//! * [`NetworkModel`] — zone-based bandwidth/latency used to cost data
//!   transfers across the continuum;
//! * [`Platform`] — the full machine: zones of nodes plus the network,
//!   built with [`PlatformBuilder`];
//! * [`ElasticityPolicy`] — load-driven grow/shrink decisions for
//!   elastic pools.
//!
//! # Example
//!
//! ```
//! use continuum_platform::{PlatformBuilder, NodeSpec, Constraints, DeviceClass};
//!
//! let platform = PlatformBuilder::new()
//!     .cluster("mn4", 4, NodeSpec::hpc(48, 96_000))
//!     .cloud("aws", 2, NodeSpec::cloud_vm(8, 16_000))
//!     .build();
//! assert_eq!(platform.num_nodes(), 6);
//!
//! let needs_gpu = Constraints::new().compute_units(4).gpus(1);
//! assert!(!platform.node_by_index(0).capacity().satisfies(&needs_gpu));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraints;
mod elastic;
mod energy;
mod network;
mod node;
pub mod oneshot;
mod platform;
pub mod presets;
pub mod sync;

pub use constraints::{Constraints, NodeCapacity};
pub use elastic::{ElasticAction, ElasticityPolicy};
pub use energy::{EnergyAccount, PowerModel};
pub use network::{LinkSpec, NetworkModel, TransferCost};
pub use node::{DeviceClass, Node, NodeId, NodeSpec};
pub use platform::{Platform, PlatformBuilder, Zone, ZoneId, ZoneKind};
