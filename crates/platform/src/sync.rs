//! The stack's synchronization primitives, routed through one module
//! so a schedule-exploration controller can interpose on every
//! operation.
//!
//! By default (`conc-instrument` feature **off**) this module is a set
//! of plain re-exports — `Mutex`/`Condvar` from `parking_lot`, the
//! `std` atomics, `std::thread` parking — with zero overhead: release
//! builds of the runtime are bit-for-bit unaffected.
//!
//! With `conc-instrument` **on**, each primitive is wrapped so that
//! every lock, unlock, condvar wait/notify, atomic access and
//! park/unpark first reports itself to the controller installed via
//! `crossbeam::hooks::sched` (see `continuum_analyze::conc::sched` for
//! the exploration scheduler that drives it). Threads that are *not*
//! registered with the controller pass straight through to the real
//! primitive, so an instrumented build still behaves normally outside
//! a controlled scenario — `cargo test --features conc-instrument`
//! runs the whole ordinary suite unchanged.
//!
//! Under a controller, exactly one registered thread runs between
//! scheduler decisions, which makes the *real* primitives trivially
//! uncontended: the real mutex acquire after a granted `MutexLock` can
//! never block, because the scheduler only grants the operation when
//! its own ownership model says the mutex is free. The real primitives
//! thus become the executable "body" of the operation while all
//! blocking moves into the controller.

#[cfg(feature = "conc-instrument")]
pub use instrumented::{
    park, park_handle, AtomicBool, AtomicU8, AtomicUsize, Condvar, Mutex, MutexGuard, ParkHandle,
};
#[cfg(not(feature = "conc-instrument"))]
pub use uninstrumented::{
    park, park_handle, AtomicBool, AtomicU8, AtomicUsize, Condvar, Mutex, MutexGuard, ParkHandle,
};

/// A shared `u64` cell whose accesses are deliberately reported to the
/// race detector as **plain** (unsynchronized) reads and writes.
///
/// Physically the cell is an `AtomicU64`, so even a genuinely racy
/// scenario has defined behaviour at the machine level; *logically*
/// the exploration scheduler's vector-clock detector treats `get`/
/// `set` as data accesses and flags any conflicting pair that is not
/// ordered by the happens-before relation built from the instrumented
/// sync operations around it. Instrumented concurrency targets use it
/// as the "payload" whose protection the protocol under test must
/// provide.
#[derive(Debug, Default)]
pub struct RaceCell {
    v: std::sync::atomic::AtomicU64,
}

impl RaceCell {
    /// A cell holding `v`.
    pub const fn new(v: u64) -> Self {
        RaceCell {
            v: std::sync::atomic::AtomicU64::new(v),
        }
    }

    /// Plain read (reported as `RaceRead` under a controller).
    pub fn get(&self) -> u64 {
        #[cfg(feature = "conc-instrument")]
        crossbeam::hooks::sched::sync_op(crossbeam::hooks::sched::OpEvent {
            op: crossbeam::hooks::sched::SyncOp::RaceRead,
            obj: std::ptr::from_ref(self) as usize,
        });
        self.v.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Plain write (reported as `RaceWrite` under a controller).
    pub fn set(&self, v: u64) {
        #[cfg(feature = "conc-instrument")]
        crossbeam::hooks::sched::sync_op(crossbeam::hooks::sched::OpEvent {
            op: crossbeam::hooks::sched::SyncOp::RaceWrite,
            obj: std::ptr::from_ref(self) as usize,
        });
        self.v.store(v, std::sync::atomic::Ordering::SeqCst)
    }
}

#[cfg(not(feature = "conc-instrument"))]
mod uninstrumented {
    //! Plain re-exports: the exact primitives the stack always used.

    pub use parking_lot::{Condvar, Mutex, MutexGuard};
    pub use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize};
    use std::thread;

    /// A handle that can unpark one specific thread (clone of
    /// `std::thread::Thread` with the instrumentable surface).
    #[derive(Clone, Debug)]
    pub struct ParkHandle {
        thread: thread::Thread,
    }

    impl ParkHandle {
        /// Unparks the handle's thread (std token semantics: an
        /// unpark landing before the park is consumed by it).
        pub fn unpark(&self) {
            self.thread.unpark();
        }
    }

    /// A [`ParkHandle`] for the calling thread.
    pub fn park_handle() -> ParkHandle {
        ParkHandle {
            thread: thread::current(),
        }
    }

    /// Parks the calling thread until unparked (std token semantics).
    #[inline]
    pub fn park() {
        thread::park();
    }
}

#[cfg(feature = "conc-instrument")]
mod instrumented {
    //! Controller-aware wrappers. Every operation reports to the
    //! installed `crossbeam::hooks::sched` controller first; threads
    //! not registered with a controller fall through to the real
    //! primitive untouched.

    use crossbeam::hooks::sched::{self, Grant, OpEvent, SyncOp};
    use std::ops::{Deref, DerefMut};
    use std::thread;

    pub use atomics::{AtomicBool, AtomicU8, AtomicUsize};

    /// Instrumented mutual-exclusion lock (parking_lot-style API).
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: parking_lot::Mutex<T>,
    }

    /// Guard for [`Mutex`]; reports the unlock on drop. Holds the real
    /// guard in an `Option` so [`Condvar::wait`] can release and
    /// reacquire it around the controller's blocking window.
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        inner: Option<parking_lot::MutexGuard<'a, T>>,
        controlled: bool,
    }

    impl<T> Mutex<T> {
        /// Creates a mutex.
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: parking_lot::Mutex::new(value),
            }
        }

        fn obj(&self) -> usize {
            std::ptr::from_ref(self) as usize
        }

        /// Acquires the lock. Under a controller the acquisition is a
        /// sched point: the controller blocks the thread until its
        /// ownership model says the mutex is free, at which point the
        /// real acquire cannot contend.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let controlled = sched::sync_op(OpEvent {
                op: SyncOp::MutexLock,
                obj: self.obj(),
            });
            MutexGuard {
                mutex: self,
                inner: Some(self.inner.lock()),
                controlled,
            }
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut()
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // During an unwind (including a controller kill) the run is
            // abandoned: skip the report — a sched point here could
            // panic again and abort the process — and let the real
            // guard release on its own as the fields drop.
            if self.controlled && self.inner.is_some() && !thread::panicking() {
                // Report before the real release: the scheduler marks
                // the mutex free at the grant and will only run the
                // next thread once this one reaches its next sched
                // point — by which time the real guard is long gone.
                sched::sync_op(OpEvent {
                    op: SyncOp::MutexUnlock,
                    obj: self.mutex.obj(),
                });
            }
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard present outside wait")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard present outside wait")
        }
    }

    /// Instrumented condition variable.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: parking_lot::Condvar,
    }

    impl Condvar {
        /// Creates a condition variable.
        pub const fn new() -> Self {
            Condvar {
                inner: parking_lot::Condvar::new(),
            }
        }

        fn obj(&self) -> usize {
            std::ptr::from_ref(self) as usize
        }

        /// Atomically releases the guard's lock and waits to be
        /// notified, reacquiring before returning. Under a controller
        /// this is the split protocol: report the wait (the scheduler
        /// releases the mutex in its model and moves the thread to
        /// the condvar's wait set), drop the real guard, block in the
        /// controller until notified *and* granted the relock, then
        /// take the real (uncontended) lock back.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            if guard.controlled {
                if let Some((ctl, tid)) = sched::controller_for_current() {
                    match ctl.sched_point(
                        tid,
                        OpEvent {
                            op: SyncOp::CondvarWait {
                                mutex: guard.mutex.obj(),
                            },
                            obj: self.obj(),
                        },
                    ) {
                        Grant::Block => {}
                        Grant::Die => sched::killed(),
                        Grant::Proceed => unreachable!("condvar wait always blocks"),
                    }
                    guard.inner = None;
                    ctl.block_point(tid);
                    guard.inner = Some(guard.mutex.inner.lock());
                    return;
                }
            }
            let mut inner = guard.inner.take().expect("guard present before wait");
            self.inner.wait(&mut inner);
            guard.inner = Some(inner);
        }

        /// Wakes one waiting thread (FIFO under a controller, for
        /// deterministic schedules).
        pub fn notify_one(&self) {
            if sched::sync_op(OpEvent {
                op: SyncOp::CondvarNotifyOne,
                obj: self.obj(),
            }) {
                // Controlled waiters block in the controller, not on
                // the real condvar: the model notification is all.
                return;
            }
            self.inner.notify_one();
        }

        /// Wakes all waiting threads.
        pub fn notify_all(&self) {
            if sched::sync_op(OpEvent {
                op: SyncOp::CondvarNotifyAll,
                obj: self.obj(),
            }) {
                return;
            }
            self.inner.notify_all();
        }
    }

    mod atomics {
        use super::{sched, OpEvent, SyncOp};
        use std::sync::atomic::Ordering;

        macro_rules! instrumented_atomic {
            ($(#[$doc:meta])* $name:ident, $inner:ty, $raw:ty) => {
                $(#[$doc])*
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $inner,
                }

                impl $name {
                    /// Creates the atomic with an initial value.
                    pub const fn new(v: $raw) -> Self {
                        $name { inner: <$inner>::new(v) }
                    }

                    fn report(&self, op: SyncOp) {
                        sched::sync_op(OpEvent {
                            op,
                            obj: std::ptr::from_ref(self) as usize,
                        });
                    }

                    /// Instrumented load.
                    pub fn load(&self, order: Ordering) -> $raw {
                        self.report(SyncOp::AtomicLoad);
                        self.inner.load(order)
                    }

                    /// Instrumented store.
                    pub fn store(&self, v: $raw, order: Ordering) {
                        self.report(SyncOp::AtomicStore);
                        self.inner.store(v, order)
                    }

                    /// Instrumented swap.
                    pub fn swap(&self, v: $raw, order: Ordering) -> $raw {
                        self.report(SyncOp::AtomicRmw);
                        self.inner.swap(v, order)
                    }

                    /// Instrumented compare-exchange.
                    ///
                    /// # Errors
                    ///
                    /// The observed value, when it differs from
                    /// `current` (same as std).
                    pub fn compare_exchange(
                        &self,
                        current: $raw,
                        new: $raw,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$raw, $raw> {
                        self.report(SyncOp::AtomicRmw);
                        self.inner.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        instrumented_atomic!(
            /// Instrumented `AtomicU8` (the task-cell state word).
            AtomicU8,
            std::sync::atomic::AtomicU8,
            u8
        );
        instrumented_atomic!(
            /// Instrumented `AtomicUsize` (sleeper mirrors, counters).
            AtomicUsize,
            std::sync::atomic::AtomicUsize,
            usize
        );
        instrumented_atomic!(
            /// Instrumented `AtomicBool` (readiness / shutdown flags).
            AtomicBool,
            std::sync::atomic::AtomicBool,
            bool
        );

        impl AtomicUsize {
            /// Instrumented fetch-add.
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                self.report(SyncOp::AtomicRmw);
                self.inner.fetch_add(v, order)
            }

            /// Instrumented fetch-sub.
            pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
                self.report(SyncOp::AtomicRmw);
                self.inner.fetch_sub(v, order)
            }
        }
    }

    /// A handle that can unpark one specific thread. For a registered
    /// scenario thread the unpark is routed through the controller's
    /// token model; otherwise it is a real `std` unpark.
    #[derive(Clone, Debug)]
    pub struct ParkHandle {
        thread: thread::Thread,
        tid: Option<usize>,
    }

    impl ParkHandle {
        /// Unparks the handle's thread (token semantics both under a
        /// controller and without one).
        pub fn unpark(&self) {
            if let Some(tid) = self.tid {
                if sched::sync_op(OpEvent {
                    op: SyncOp::Unpark { thread: tid },
                    obj: tid,
                }) {
                    return;
                }
            }
            self.thread.unpark();
        }
    }

    /// A [`ParkHandle`] for the calling thread.
    pub fn park_handle() -> ParkHandle {
        ParkHandle {
            thread: thread::current(),
            tid: sched::current_tid(),
        }
    }

    /// Parks the calling thread until unparked. Under a controller
    /// the park consumes a pending token or blocks in the scheduler.
    pub fn park() {
        if let Some(tid) = sched::current_tid() {
            if sched::sync_op(OpEvent {
                op: SyncOp::Park,
                obj: tid,
            }) {
                return;
            }
        }
        thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn mutex_condvar_roundtrip_without_controller() {
        let shared = Arc::new((Mutex::new(0u32), Condvar::new()));
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let (lock, cv) = &*shared;
                *lock.lock() = 7;
                cv.notify_all();
            })
        };
        let (lock, cv) = &*shared;
        let mut guard = lock.lock();
        while *guard != 7 {
            cv.wait(&mut guard);
        }
        drop(guard);
        worker.join().unwrap();
        assert_eq!(*lock.lock(), 7);
    }

    #[test]
    fn park_handle_unparks_across_threads() {
        let (tx, rx) = std::sync::mpsc::channel();
        let t = std::thread::spawn(move || {
            tx.send(park_handle()).unwrap();
            park();
            42u32
        });
        let handle = rx.recv().unwrap();
        handle.unpark();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn race_cell_is_plain_storage_without_controller() {
        let c = RaceCell::new(3);
        assert_eq!(c.get(), 3);
        c.set(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn atomics_behave_like_std() {
        let a = AtomicU8::new(1);
        assert_eq!(a.swap(2, Ordering::SeqCst), 1);
        assert_eq!(
            a.compare_exchange(2, 3, Ordering::SeqCst, Ordering::SeqCst),
            Ok(2)
        );
        a.store(5, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 5);
        let u = AtomicUsize::new(0);
        assert_eq!(u.fetch_add(4, Ordering::SeqCst), 0);
        assert_eq!(u.fetch_sub(1, Ordering::SeqCst), 4);
        assert_eq!(u.load(Ordering::SeqCst), 3);
        let b = AtomicBool::new(false);
        b.store(true, Ordering::SeqCst);
        assert!(b.load(Ordering::SeqCst));
    }
}
