//! Energy models: per-node power profiles and energy accounting.
//!
//! The paper repeatedly calls for runtimes that optimise *energy* as
//! well as performance. We use the standard linear power model: a node
//! draws `idle_watts` when on, plus `(active - idle) * utilisation`
//! when running tasks. The discrete-event simulator integrates this
//! over time; [`EnergyAccount`] accumulates the result.

use serde::{Deserialize, Serialize};

/// Linear power model of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    idle_watts: f64,
    active_watts: f64,
}

impl PowerModel {
    /// Creates a power model.
    ///
    /// # Panics
    ///
    /// Panics if `idle > active` or either is negative.
    pub fn new(idle_watts: f64, active_watts: f64) -> Self {
        assert!(
            idle_watts >= 0.0 && active_watts >= idle_watts,
            "power model requires 0 <= idle <= active"
        );
        PowerModel {
            idle_watts,
            active_watts,
        }
    }

    /// Power draw when idle but powered on (watts).
    pub fn idle_watts(self) -> f64 {
        self.idle_watts
    }

    /// Power draw at full utilisation (watts).
    pub fn active_watts(self) -> f64 {
        self.active_watts
    }

    /// Instantaneous power at a given utilisation in `[0, 1]`.
    pub fn power_at(self, utilisation: f64) -> f64 {
        let u = utilisation.clamp(0.0, 1.0);
        self.idle_watts + (self.active_watts - self.idle_watts) * u
    }

    /// Energy (joules) for a period of `seconds` at a fixed utilisation.
    pub fn energy_joules(self, seconds: f64, utilisation: f64) -> f64 {
        self.power_at(utilisation) * seconds.max(0.0)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::new(100.0, 250.0)
    }
}

/// Accumulated energy usage of a run, split by busy/idle time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyAccount {
    /// Joules consumed while running tasks.
    pub busy_joules: f64,
    /// Joules consumed while powered on but idle.
    pub idle_joules: f64,
    /// Seconds spent busy (core-seconds weighted to node level).
    pub busy_seconds: f64,
    /// Seconds spent idle but powered on.
    pub idle_seconds: f64,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a busy period at the given utilisation under `power`.
    pub fn add_busy(&mut self, power: PowerModel, seconds: f64, utilisation: f64) {
        self.busy_joules += power.energy_joules(seconds, utilisation);
        self.busy_seconds += seconds.max(0.0);
    }

    /// Adds an idle (powered-on) period under `power`.
    pub fn add_idle(&mut self, power: PowerModel, seconds: f64) {
        self.idle_joules += power.energy_joules(seconds, 0.0);
        self.idle_seconds += seconds.max(0.0);
    }

    /// Total joules consumed.
    pub fn total_joules(&self) -> f64 {
        self.busy_joules + self.idle_joules
    }

    /// Total kilowatt-hours consumed.
    pub fn total_kwh(&self) -> f64 {
        self.total_joules() / 3.6e6
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.busy_joules += other.busy_joules;
        self.idle_joules += other.idle_joules;
        self.busy_seconds += other.busy_seconds;
        self.idle_seconds += other.idle_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_interpolates_linearly() {
        let p = PowerModel::new(100.0, 300.0);
        assert_eq!(p.power_at(0.0), 100.0);
        assert_eq!(p.power_at(1.0), 300.0);
        assert_eq!(p.power_at(0.5), 200.0);
    }

    #[test]
    fn utilisation_clamped() {
        let p = PowerModel::new(10.0, 20.0);
        assert_eq!(p.power_at(-1.0), 10.0);
        assert_eq!(p.power_at(2.0), 20.0);
    }

    #[test]
    #[should_panic(expected = "idle <= active")]
    fn invalid_model_rejected() {
        let _ = PowerModel::new(200.0, 100.0);
    }

    #[test]
    fn energy_accumulates() {
        let p = PowerModel::new(100.0, 300.0);
        let mut acc = EnergyAccount::new();
        acc.add_busy(p, 10.0, 1.0); // 3000 J
        acc.add_idle(p, 5.0); // 500 J
        assert!((acc.busy_joules - 3000.0).abs() < 1e-9);
        assert!((acc.idle_joules - 500.0).abs() < 1e-9);
        assert!((acc.total_joules() - 3500.0).abs() < 1e-9);
        assert_eq!(acc.busy_seconds, 10.0);
        assert_eq!(acc.idle_seconds, 5.0);
    }

    #[test]
    fn negative_durations_ignored() {
        let p = PowerModel::default();
        let mut acc = EnergyAccount::new();
        acc.add_busy(p, -4.0, 1.0);
        assert_eq!(acc.total_joules(), 0.0);
        assert_eq!(acc.busy_seconds, 0.0);
    }

    #[test]
    fn merge_combines_accounts() {
        let p = PowerModel::new(0.0, 100.0);
        let mut a = EnergyAccount::new();
        a.add_busy(p, 1.0, 1.0);
        let mut b = EnergyAccount::new();
        b.add_busy(p, 2.0, 1.0);
        a.merge(&b);
        assert!((a.busy_joules - 300.0).abs() < 1e-9);
    }

    #[test]
    fn kwh_conversion() {
        let p = PowerModel::new(0.0, 1000.0);
        let mut acc = EnergyAccount::new();
        acc.add_busy(p, 3600.0, 1.0); // 1 kWh
        assert!((acc.total_kwh() - 1.0).abs() < 1e-9);
    }
}
