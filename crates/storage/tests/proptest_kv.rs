//! Property-based tests of the KV store: replication invariants,
//! availability under failures, and byte accounting.

use continuum_platform::NodeId;
use continuum_storage::{KvConfig, KvStore, ObjectKey, StorageRuntime, StoredValue};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Put {
        key: u8,
        size: u16,
        hint: Option<u8>,
    },
    Delete {
        key: u8,
    },
    Fail {
        node: u8,
    },
    Recover {
        node: u8,
    },
}

fn op_strategy(nodes: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..32, 0u16..2048, proptest::option::of(0..nodes))
            .prop_map(|(key, size, hint)| Op::Put { key, size, hint }),
        1 => (0u8..32).prop_map(|key| Op::Delete { key }),
        1 => (0..nodes).prop_map(|node| Op::Fail { node }),
        1 => (0..nodes).prop_map(|node| Op::Recover { node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replicas are always distinct live-at-write nodes and respect
    /// the replication factor when enough nodes are alive.
    #[test]
    fn replica_sets_are_valid(
        ops in proptest::collection::vec(op_strategy(6), 1..60),
        replication in 1usize..4,
    ) {
        let nodes: Vec<NodeId> = (0..6).map(NodeId::from_raw).collect();
        let store = KvStore::new(nodes.clone(), KvConfig { replication }).unwrap();
        let mut down: HashSet<u8> = HashSet::new();
        for op in ops {
            match op {
                Op::Put { key, size, hint } => {
                    let result = store.put(
                        ObjectKey::new(format!("k{key}")),
                        StoredValue::blob(vec![0u8; size as usize]),
                        hint.map(|h| NodeId::from_raw(h as u32)),
                    );
                    if down.len() == 6 {
                        prop_assert!(result.is_err(), "no live node can accept a put");
                        continue;
                    }
                    let replicas = result.unwrap();
                    let unique: HashSet<_> = replicas.iter().collect();
                    prop_assert_eq!(unique.len(), replicas.len(), "replicas distinct");
                    let live = 6 - down.len();
                    prop_assert_eq!(replicas.len(), replication.min(live));
                    for r in &replicas {
                        prop_assert!(
                            !down.contains(&(r.index() as u8)),
                            "never placed on a down node"
                        );
                    }
                }
                Op::Delete { key } => store.delete(&ObjectKey::new(format!("k{key}"))),
                Op::Fail { node } => {
                    store.fail_node(NodeId::from_raw(node as u32));
                    down.insert(node);
                }
                Op::Recover { node } => {
                    store.recover_node(NodeId::from_raw(node as u32));
                    down.remove(&node);
                }
            }
        }
    }

    /// With replication >= 2, any single node failure leaves every key
    /// readable with its latest value.
    #[test]
    fn single_failure_never_loses_data(
        keys in proptest::collection::vec((0u8..16, 1u16..512), 1..32),
        victim in 0u32..4,
    ) {
        let nodes: Vec<NodeId> = (0..4).map(NodeId::from_raw).collect();
        let store = KvStore::new(nodes, KvConfig { replication: 2 }).unwrap();
        let mut latest = std::collections::HashMap::new();
        for (key, size) in keys {
            store
                .put(
                    ObjectKey::new(format!("k{key}")),
                    StoredValue::blob(vec![key; size as usize]),
                    None,
                )
                .unwrap();
            latest.insert(key, size);
        }
        store.fail_node(NodeId::from_raw(victim));
        for (key, size) in latest {
            let v = store.get(&ObjectKey::new(format!("k{key}"))).unwrap();
            prop_assert_eq!(v.payload.len(), size as usize);
            prop_assert!(v.payload.iter().all(|b| *b == key));
            let locs = store.locations(&ObjectKey::new(format!("k{key}"))).unwrap();
            prop_assert!(!locs.contains(&NodeId::from_raw(victim)));
        }
    }

    /// Byte accounting: the sum over nodes equals stored payloads ×
    /// replication, regardless of overwrite order.
    #[test]
    fn byte_accounting_balances(
        puts in proptest::collection::vec((0u8..8, 0u16..1024), 1..40),
    ) {
        let nodes: Vec<NodeId> = (0..5).map(NodeId::from_raw).collect();
        let store = KvStore::new(nodes.clone(), KvConfig { replication: 2 }).unwrap();
        let mut latest = std::collections::HashMap::new();
        for (key, size) in puts {
            store
                .put(
                    ObjectKey::new(format!("k{key}")),
                    StoredValue::blob(vec![0u8; size as usize]),
                    None,
                )
                .unwrap();
            latest.insert(key, size as u64);
        }
        let expected: u64 = latest.values().map(|s| s * 2).sum();
        let actual: u64 = nodes.iter().map(|n| store.bytes_on(*n)).sum();
        prop_assert_eq!(actual, expected);
    }

    /// Deterministic placement: two stores with the same config place
    /// every key identically (no hidden state).
    #[test]
    fn placement_is_pure(keys in proptest::collection::vec(0u16..512, 1..30)) {
        let mk = || {
            KvStore::new((0..7).map(NodeId::from_raw).collect(), KvConfig { replication: 3 })
                .unwrap()
        };
        let a = mk();
        let b = mk();
        for key in keys {
            let ka = a
                .put(ObjectKey::new(format!("k{key}")), StoredValue::blob(vec![1]), None)
                .unwrap();
            let kb = b
                .put(ObjectKey::new(format!("k{key}")), StoredValue::blob(vec![1]), None)
                .unwrap();
            prop_assert_eq!(ka, kb);
        }
    }
}
