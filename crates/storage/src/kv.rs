//! Hecuba-like partitioned, replicated key-value store.
//!
//! Keys are hash-partitioned over a set of storage nodes (the
//! "token-range" scheme of Cassandra/ScyllaDB that Hecuba maps Python
//! dictionaries onto) with R-way replication on successor nodes. The
//! runtime consumes [`KvStore::locations`] (the SRI `getLocations`) to
//! schedule tasks next to their data.

use crate::error::StorageError;
use crate::interface::{ObjectKey, StorageRuntime, StoredValue};
use continuum_platform::NodeId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Configuration of a [`KvStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvConfig {
    /// Number of replicas per key (including the primary).
    pub replication: usize,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig { replication: 2 }
    }
}

/// Operation counters of a [`KvStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvStats {
    /// Successful `put` operations.
    pub puts: u64,
    /// Successful `get` operations.
    pub gets: u64,
    /// Bytes written (payload × replicas).
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

#[derive(Debug)]
struct Entry {
    value: StoredValue,
    replicas: Vec<NodeId>,
}

#[derive(Debug, Default)]
struct Inner {
    data: HashMap<ObjectKey, Entry>,
    down: HashSet<NodeId>,
    stats: KvStats,
    bytes_per_node: HashMap<NodeId, u64>,
}

/// A partitioned, replicated in-process key-value store deployed over a
/// set of platform nodes.
///
/// # Example
///
/// ```
/// use continuum_storage::{KvStore, KvConfig, ObjectKey, StoredValue, StorageRuntime};
/// use continuum_platform::NodeId;
///
/// let nodes: Vec<NodeId> = (0..4).map(NodeId::from_raw).collect();
/// let store = KvStore::new(nodes, KvConfig { replication: 2 })?;
/// let replicas = store.put("table:row1".into(), StoredValue::blob(vec![7; 64]), None)?;
/// assert_eq!(replicas.len(), 2);
/// assert_eq!(store.locations(&"table:row1".into())?, replicas);
/// # Ok::<(), continuum_storage::StorageError>(())
/// ```
#[derive(Debug)]
pub struct KvStore {
    nodes: Vec<NodeId>,
    config: KvConfig,
    inner: Mutex<Inner>,
}

impl KvStore {
    /// Creates a store over the given storage nodes.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InvalidConfig`] if no nodes are given or
    /// the replication factor is zero or exceeds the node count.
    pub fn new(nodes: Vec<NodeId>, config: KvConfig) -> Result<Self, StorageError> {
        if nodes.is_empty() {
            return Err(StorageError::InvalidConfig(
                "store needs at least one node".into(),
            ));
        }
        if config.replication == 0 || config.replication > nodes.len() {
            return Err(StorageError::InvalidConfig(format!(
                "replication {} not in 1..={}",
                config.replication,
                nodes.len()
            )));
        }
        Ok(KvStore {
            nodes,
            config,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// The storage nodes this store is deployed on.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.config.replication
    }

    /// Marks a storage node as failed: its replicas become unavailable
    /// until [`KvStore::recover_node`] (data is retained, as on disk).
    pub fn fail_node(&self, node: NodeId) {
        self.inner.lock().down.insert(node);
    }

    /// Brings a failed node back; its replicas become readable again.
    pub fn recover_node(&self, node: NodeId) {
        self.inner.lock().down.remove(&node);
    }

    /// Permanently erases a node's replicas (disk loss). Keys whose
    /// replicas all lived there become unreadable.
    pub fn wipe_node(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        inner.bytes_per_node.remove(&node);
        for entry in inner.data.values_mut() {
            entry.replicas.retain(|r| *r != node);
        }
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> KvStats {
        self.inner.lock().stats
    }

    /// Bytes currently attributed to each node.
    pub fn bytes_on(&self, node: NodeId) -> u64 {
        *self.inner.lock().bytes_per_node.get(&node).unwrap_or(&0)
    }

    /// Number of keys stored (including currently unreachable ones).
    pub fn len(&self) -> usize {
        self.inner.lock().data.len()
    }

    /// Returns `true` if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn primary_index(&self, key: &ObjectKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.nodes.len() as u64) as usize
    }

    /// The replica set a key maps to, given current node liveness and a
    /// placement hint. The hint — if it names a live storage node —
    /// becomes the primary, so producers can co-locate outputs.
    fn place(&self, inner: &Inner, key: &ObjectKey, hint: Option<NodeId>) -> Vec<NodeId> {
        let start = match hint {
            Some(h) if self.nodes.contains(&h) && !inner.down.contains(&h) => {
                self.nodes.iter().position(|n| *n == h).expect("contains")
            }
            _ => self.primary_index(key),
        };
        let mut replicas = Vec::with_capacity(self.config.replication);
        let n = self.nodes.len();
        for off in 0..n {
            let candidate = self.nodes[(start + off) % n];
            if !inner.down.contains(&candidate) {
                replicas.push(candidate);
                if replicas.len() == self.config.replication {
                    break;
                }
            }
        }
        // If fewer live nodes than the replication factor, store on
        // whatever is alive (degraded but available), matching the
        // availability-first behaviour of Cassandra with ANY/ONE.
        replicas
    }
}

impl StorageRuntime for KvStore {
    fn put(
        &self,
        key: ObjectKey,
        value: StoredValue,
        hint: Option<NodeId>,
    ) -> Result<Vec<NodeId>, StorageError> {
        let mut inner = self.inner.lock();
        let replicas = self.place(&inner, &key, hint);
        if replicas.is_empty() {
            return Err(StorageError::InvalidConfig("no live storage nodes".into()));
        }
        let size = value.size() as u64;
        inner.stats.puts += 1;
        inner.stats.bytes_written += size * replicas.len() as u64;
        for r in &replicas {
            *inner.bytes_per_node.entry(*r).or_insert(0) += size;
        }
        if let Some(old) = inner.data.insert(
            key,
            Entry {
                value,
                replicas: replicas.clone(),
            },
        ) {
            let old_size = old.value.size() as u64;
            for r in &old.replicas {
                if let Some(b) = inner.bytes_per_node.get_mut(r) {
                    *b = b.saturating_sub(old_size);
                }
            }
        }
        Ok(replicas)
    }

    fn get(&self, key: &ObjectKey) -> Result<StoredValue, StorageError> {
        let mut inner = self.inner.lock();
        let entry = inner
            .data
            .get(key)
            .ok_or_else(|| StorageError::NotFound(key.clone()))?;
        let live = entry.replicas.iter().any(|r| !inner.down.contains(r));
        if !live {
            return Err(StorageError::AllReplicasDown(key.clone()));
        }
        let value = entry.value.clone();
        inner.stats.gets += 1;
        inner.stats.bytes_read += value.size() as u64;
        Ok(value)
    }

    fn locations(&self, key: &ObjectKey) -> Result<Vec<NodeId>, StorageError> {
        let inner = self.inner.lock();
        let entry = inner
            .data
            .get(key)
            .ok_or_else(|| StorageError::NotFound(key.clone()))?;
        Ok(entry
            .replicas
            .iter()
            .filter(|r| !inner.down.contains(r))
            .copied()
            .collect())
    }

    fn delete(&self, key: &ObjectKey) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.data.remove(key) {
            let size = entry.value.size() as u64;
            for r in &entry.replicas {
                if let Some(b) = inner.bytes_per_node.get_mut(r) {
                    *b = b.saturating_sub(size);
                }
            }
        }
    }

    fn contains(&self, key: &ObjectKey) -> bool {
        let inner = self.inner.lock();
        inner
            .data
            .get(key)
            .is_some_and(|e| e.replicas.iter().any(|r| !inner.down.contains(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize, r: usize) -> KvStore {
        KvStore::new(
            (0..n as u32).map(NodeId::from_raw).collect(),
            KvConfig { replication: r },
        )
        .unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store(4, 2);
        s.put("a".into(), StoredValue::blob(vec![1, 2, 3]), None)
            .unwrap();
        let v = s.get(&"a".into()).unwrap();
        assert_eq!(&v.payload[..], &[1, 2, 3]);
        assert!(s.contains(&"a".into()));
        assert!(!s.contains(&"b".into()));
    }

    #[test]
    fn replication_factor_respected() {
        let s = store(5, 3);
        let reps = s
            .put("k".into(), StoredValue::blob(vec![0; 8]), None)
            .unwrap();
        assert_eq!(reps.len(), 3);
        let unique: HashSet<_> = reps.iter().collect();
        assert_eq!(unique.len(), 3, "replicas are distinct nodes");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(KvStore::new(vec![], KvConfig { replication: 1 }).is_err());
        assert!(store_result(2, 0).is_err());
        assert!(store_result(2, 3).is_err());
    }

    fn store_result(n: usize, r: usize) -> Result<KvStore, StorageError> {
        KvStore::new(
            (0..n as u32).map(NodeId::from_raw).collect(),
            KvConfig { replication: r },
        )
    }

    #[test]
    fn hint_places_primary_locally() {
        let s = store(4, 2);
        let hint = NodeId::from_raw(2);
        let reps = s
            .put("k".into(), StoredValue::blob(vec![0; 4]), Some(hint))
            .unwrap();
        assert_eq!(reps[0], hint, "hinted node becomes the primary");
    }

    #[test]
    fn down_hint_ignored() {
        let s = store(4, 1);
        let hint = NodeId::from_raw(2);
        s.fail_node(hint);
        let reps = s
            .put("k".into(), StoredValue::blob(vec![0; 4]), Some(hint))
            .unwrap();
        assert_ne!(reps[0], hint);
    }

    #[test]
    fn survives_single_node_failure_with_r2() {
        let s = store(4, 2);
        let reps = s
            .put("k".into(), StoredValue::blob(vec![9; 16]), None)
            .unwrap();
        s.fail_node(reps[0]);
        assert!(s.contains(&"k".into()));
        assert_eq!(s.get(&"k".into()).unwrap().payload.len(), 16);
        let locs = s.locations(&"k".into()).unwrap();
        assert_eq!(locs, vec![reps[1]]);
    }

    #[test]
    fn unavailable_when_all_replicas_down() {
        let s = store(3, 2);
        let reps = s.put("k".into(), StoredValue::blob(vec![1]), None).unwrap();
        for r in &reps {
            s.fail_node(*r);
        }
        assert_eq!(
            s.get(&"k".into()).unwrap_err(),
            StorageError::AllReplicasDown("k".into())
        );
        assert!(!s.contains(&"k".into()));
        // Recovery restores availability.
        s.recover_node(reps[0]);
        assert!(s.get(&"k".into()).is_ok());
    }

    #[test]
    fn wipe_node_loses_solo_replicas() {
        let s = store(2, 1);
        let reps = s.put("k".into(), StoredValue::blob(vec![1]), None).unwrap();
        s.wipe_node(reps[0]);
        let locs = s.locations(&"k".into()).unwrap();
        assert!(locs.is_empty());
    }

    #[test]
    fn stats_and_byte_accounting() {
        let s = store(2, 2);
        s.put("k".into(), StoredValue::blob(vec![0; 100]), None)
            .unwrap();
        s.get(&"k".into()).unwrap();
        let st = s.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 1);
        assert_eq!(st.bytes_written, 200, "payload × 2 replicas");
        assert_eq!(st.bytes_read, 100);
        let total: u64 = s.nodes().iter().map(|n| s.bytes_on(*n)).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn overwrite_replaces_accounting() {
        let s = store(2, 1);
        s.put("k".into(), StoredValue::blob(vec![0; 100]), None)
            .unwrap();
        s.put("k".into(), StoredValue::blob(vec![0; 10]), None)
            .unwrap();
        let total: u64 = s.nodes().iter().map(|n| s.bytes_on(*n)).sum();
        assert_eq!(total, 10);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_is_idempotent() {
        let s = store(2, 1);
        s.put("k".into(), StoredValue::blob(vec![1]), None).unwrap();
        s.delete(&"k".into());
        s.delete(&"k".into());
        assert!(s.is_empty());
        assert!(s.get(&"k".into()).is_err());
    }

    #[test]
    fn placement_is_deterministic() {
        let s1 = store(8, 3);
        let s2 = store(8, 3);
        for i in 0..32 {
            let k: ObjectKey = format!("key{i}").into();
            let r1 = s1.put(k.clone(), StoredValue::blob(vec![0]), None).unwrap();
            let r2 = s2.put(k, StoredValue::blob(vec![0]), None).unwrap();
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn keys_spread_over_nodes() {
        let s = store(4, 1);
        for i in 0..64 {
            s.put(
                format!("key{i}").into(),
                StoredValue::blob(vec![0; 10]),
                None,
            )
            .unwrap();
        }
        let populated = s.nodes().iter().filter(|n| s.bytes_on(**n) > 0).count();
        assert!(populated >= 3, "hash partitioning should use most nodes");
    }
}
