//! Async call surface over a blocking [`StorageRuntime`] backend: a
//! task awaiting a KV get or a put acknowledgement yields its worker
//! instead of blocking it.
//!
//! The backends of this crate are deliberately synchronous — the SRI
//! (`StorageRuntime`) mirrors the paper's blocking storage interface.
//! [`AsyncStorage`] layers a service thread in front of any backend:
//! requests travel over a channel, the service thread performs the
//! blocking call, and the reply lands in a
//! [`oneshot`](continuum_platform::oneshot) cell whose receiver is the
//! future the caller awaits. A parked caller costs one waker clone;
//! the only thread involved is the single service thread, shared by
//! every in-flight request.
//!
//! The handle is executor-agnostic (it speaks `std::task::Waker`), so
//! it works under the runtime's M:N workers, a hand-rolled poll loop,
//! or any other executor.

#![deny(clippy::await_holding_lock)]

use crate::error::StorageError;
use crate::interface::{ObjectKey, StorageRuntime, StoredValue};
use continuum_platform::oneshot::{self, OneshotReceiver, OneshotSender};
use continuum_platform::NodeId;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread;

/// A pending reply from the storage service thread. Resolves to `None`
/// only if the service thread died before answering (the handle was
/// dropped mid-call).
pub type StorageReply<T> = OneshotReceiver<T>;

enum Req {
    Put {
        key: ObjectKey,
        value: StoredValue,
        hint: Option<NodeId>,
        reply: OneshotSender<Result<Vec<NodeId>, StorageError>>,
    },
    Get {
        key: ObjectKey,
        reply: OneshotSender<Result<StoredValue, StorageError>>,
    },
    Locations {
        key: ObjectKey,
        reply: OneshotSender<Result<Vec<NodeId>, StorageError>>,
    },
    Contains {
        key: ObjectKey,
        reply: OneshotSender<bool>,
    },
    Delete {
        key: ObjectKey,
    },
    Shutdown,
}

/// Asynchronous handle over a blocking storage backend.
///
/// # Example
///
/// ```
/// use continuum_platform::NodeId;
/// use continuum_storage::{AsyncStorage, KvStore, KvConfig, ObjectKey, StoredValue};
/// use std::sync::Arc;
///
/// let nodes: Vec<NodeId> = (0..3).map(NodeId::from_raw).collect();
/// let store = Arc::new(KvStore::new(nodes, KvConfig::default()).unwrap());
/// let handle = AsyncStorage::new(store);
/// let put = handle.put(ObjectKey::new("k"), StoredValue::blob(vec![1, 2]), None);
/// // `put` is a Future; in a sync context, drive it with a poll loop
/// // or await it inside an async task body.
/// # let _ = put;
/// ```
pub struct AsyncStorage {
    tx: Sender<Req>,
    service: Option<thread::JoinHandle<()>>,
}

impl AsyncStorage {
    /// Wraps `store` with a service thread and returns the async
    /// handle.
    pub fn new(store: Arc<dyn StorageRuntime>) -> Self {
        let (tx, rx) = mpsc::channel::<Req>();
        let service = thread::Builder::new()
            .name("continuum-storage-async".to_string())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    match req {
                        Req::Put {
                            key,
                            value,
                            hint,
                            reply,
                        } => {
                            reply.send(store.put(key, value, hint));
                        }
                        Req::Get { key, reply } => {
                            reply.send(store.get(&key));
                        }
                        Req::Locations { key, reply } => {
                            reply.send(store.locations(&key));
                        }
                        Req::Contains { key, reply } => {
                            reply.send(store.contains(&key));
                        }
                        Req::Delete { key } => store.delete(&key),
                        Req::Shutdown => break,
                    }
                }
            })
            .expect("spawn storage service thread");
        AsyncStorage {
            tx,
            service: Some(service),
        }
    }

    /// Async [`StorageRuntime::put`]: awaits the replica set.
    pub fn put(
        &self,
        key: ObjectKey,
        value: StoredValue,
        hint: Option<NodeId>,
    ) -> StorageReply<Result<Vec<NodeId>, StorageError>> {
        let (reply, rx) = oneshot::channel();
        let _ = self.tx.send(Req::Put {
            key,
            value,
            hint,
            reply,
        });
        rx
    }

    /// Async [`StorageRuntime::get`].
    pub fn get(&self, key: ObjectKey) -> StorageReply<Result<StoredValue, StorageError>> {
        let (reply, rx) = oneshot::channel();
        let _ = self.tx.send(Req::Get { key, reply });
        rx
    }

    /// Async [`StorageRuntime::locations`] (the paper's
    /// `getLocations`).
    pub fn locations(&self, key: ObjectKey) -> StorageReply<Result<Vec<NodeId>, StorageError>> {
        let (reply, rx) = oneshot::channel();
        let _ = self.tx.send(Req::Locations { key, reply });
        rx
    }

    /// Async [`StorageRuntime::contains`].
    pub fn contains(&self, key: ObjectKey) -> StorageReply<bool> {
        let (reply, rx) = oneshot::channel();
        let _ = self.tx.send(Req::Contains { key, reply });
        rx
    }

    /// Fire-and-forget [`StorageRuntime::delete`].
    pub fn delete(&self, key: ObjectKey) {
        let _ = self.tx.send(Req::Delete { key });
    }
}

impl Drop for AsyncStorage {
    fn drop(&mut self) {
        // Queued requests still drain — Shutdown sits behind them. Any
        // reply cell the service thread never reaches resolves to
        // `None` when its sender is dropped with the queue.
        let _ = self.tx.send(Req::Shutdown);
        if let Some(h) = self.service.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for AsyncStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AsyncStorage")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{KvConfig, KvStore};
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::Mutex;
    use std::task::{Context, Poll, Wake, Waker};
    use std::time::{Duration, Instant};

    struct Unpark(Mutex<Option<thread::Thread>>);

    impl Wake for Unpark {
        fn wake(self: Arc<Self>) {
            if let Some(t) = self.0.lock().unwrap().take() {
                t.unpark();
            }
        }
    }

    /// Minimal single-future block_on for tests (reply futures are
    /// `Unpin`: they hold only an `Arc`).
    fn block_on<F: Future + Unpin>(mut fut: F) -> F::Output {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let unpark = Arc::new(Unpark(Mutex::new(Some(thread::current()))));
            let waker = Waker::from(Arc::clone(&unpark));
            match Pin::new(&mut fut).poll(&mut Context::from_waker(&waker)) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    assert!(Instant::now() < deadline, "future stuck");
                    thread::park_timeout(Duration::from_millis(50));
                }
            }
        }
    }

    #[test]
    fn round_trip_through_the_service_thread() {
        let nodes = (0..3).map(continuum_platform::NodeId::from_raw).collect();
        let store = Arc::new(KvStore::new(nodes, KvConfig::default()).unwrap());
        let handle = AsyncStorage::new(store);
        let key = ObjectKey::new("async-k");
        let nodes = block_on(handle.put(key.clone(), StoredValue::blob(vec![1, 2, 3]), None))
            .expect("service alive")
            .expect("put ok");
        assert!(!nodes.is_empty());
        assert!(block_on(handle.contains(key.clone())).expect("service alive"));
        let v = block_on(handle.get(key.clone()))
            .expect("service alive")
            .expect("get ok");
        assert_eq!(v.size(), 3);
        handle.delete(key.clone());
        // Delete is queued ahead of this get on the same channel.
        let missing = block_on(handle.get(key)).expect("service alive");
        assert!(matches!(missing, Err(StorageError::NotFound(_))));
    }

    #[test]
    fn dropping_the_handle_resolves_pending_replies() {
        let nodes = (0..3).map(continuum_platform::NodeId::from_raw).collect();
        let store = Arc::new(KvStore::new(nodes, KvConfig::default()).unwrap());
        let handle = AsyncStorage::new(store);
        let rx = handle.get(ObjectKey::new("never-stored"));
        drop(handle);
        // The request either ran (NotFound) or was dropped unanswered
        // (None) — both resolve; nothing hangs.
        match block_on(rx) {
            None | Some(Err(_)) => {}
            Some(Ok(_)) => panic!("value for a key never stored"),
        }
    }
}
