//! Write-ahead persistence log used by agents to survive fog-node
//! churn: every value produced by a task is appended before being
//! consumed, so a failed node's outputs can be restored elsewhere
//! (paper §VI-B: "any value produced during a task execution is stored
//! on dataClay so any other agent can use that value").

use crate::interface::{ObjectKey, StorageRuntime, StoredValue};
use parking_lot::Mutex;

/// One logged record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Key of the persisted value.
    pub key: ObjectKey,
    /// The value at append time.
    pub value: StoredValue,
}

/// An append-only, in-process write-ahead log.
///
/// # Example
///
/// ```
/// use continuum_storage::{WriteAheadLog, ObjectKey, StoredValue};
///
/// let wal = WriteAheadLog::new();
/// wal.append("task7:out".into(), StoredValue::blob(vec![1, 2]));
/// assert_eq!(wal.len(), 1);
/// let restored = wal.replay();
/// assert_eq!(restored[0].key, ObjectKey::new("task7:out"));
/// ```
#[derive(Debug, Default)]
pub struct WriteAheadLog {
    entries: Mutex<Vec<WalEntry>>,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn append(&self, key: ObjectKey, value: StoredValue) {
        self.entries.lock().push(WalEntry { key, value });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Returns `true` if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all records in append order. Later records for the
    /// same key supersede earlier ones when restoring.
    pub fn replay(&self) -> Vec<WalEntry> {
        self.entries.lock().clone()
    }

    /// Restores every logged value into `store` (later duplicates win).
    /// Returns the number of put operations performed.
    pub fn restore_into(&self, store: &dyn StorageRuntime) -> usize {
        let entries = self.replay();
        let n = entries.len();
        for e in entries {
            // Best-effort: a degraded store may reject puts; recovery
            // proceeds with whatever can be restored.
            let _ = store.put(e.key, e.value, None);
        }
        n
    }

    /// Drops all records (e.g. after a checkpoint).
    pub fn truncate(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{KvConfig, KvStore};
    use continuum_platform::NodeId;

    #[test]
    fn append_and_replay_preserve_order() {
        let wal = WriteAheadLog::new();
        wal.append("a".into(), StoredValue::blob(vec![1]));
        wal.append("b".into(), StoredValue::blob(vec![2]));
        wal.append("a".into(), StoredValue::blob(vec![3]));
        let entries = wal.replay();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].key, ObjectKey::new("a"));
        assert_eq!(&entries[2].value.payload[..], &[3]);
    }

    #[test]
    fn restore_into_store_with_last_write_wins() {
        let wal = WriteAheadLog::new();
        wal.append("a".into(), StoredValue::blob(vec![1]));
        wal.append("a".into(), StoredValue::blob(vec![9, 9]));
        let store = KvStore::new(
            (0..2).map(NodeId::from_raw).collect(),
            KvConfig { replication: 1 },
        )
        .unwrap();
        use crate::interface::StorageRuntime;
        assert_eq!(wal.restore_into(&store), 2);
        assert_eq!(&store.get(&"a".into()).unwrap().payload[..], &[9, 9]);
    }

    #[test]
    fn truncate_empties_log() {
        let wal = WriteAheadLog::new();
        wal.append("a".into(), StoredValue::blob(vec![1]));
        assert!(!wal.is_empty());
        wal.truncate();
        assert!(wal.is_empty());
        assert_eq!(wal.len(), 0);
    }
}
