//! The storage interfaces: SOI (programmer-facing) and SRI
//! (runtime-facing), as defined in §VI-A1 of the paper.

use crate::error::StorageError;
use bytes::Bytes;
use continuum_platform::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Key identifying a persisted object.
///
/// Runtimes typically derive keys from versioned data
/// (`"d12@v3"`-style); applications may use arbitrary strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectKey(String);

impl ObjectKey {
    /// Creates a key.
    pub fn new(key: impl Into<String>) -> Self {
        ObjectKey(key.into())
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectKey {
    fn from(s: &str) -> Self {
        ObjectKey::new(s)
    }
}

impl From<String> for ObjectKey {
    fn from(s: String) -> Self {
        ObjectKey(s)
    }
}

/// A stored value with its (optional) class tag, enabling active-store
/// method execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredValue {
    /// Serialized payload.
    pub payload: Bytes,
    /// Class name for active objects, `None` for plain blobs.
    pub class: Option<String>,
}

impl StoredValue {
    /// A plain blob without class information.
    pub fn blob(payload: impl Into<Bytes>) -> Self {
        StoredValue {
            payload: payload.into(),
            class: None,
        }
    }

    /// An object of a registered class.
    pub fn object(payload: impl Into<Bytes>, class: impl Into<String>) -> Self {
        StoredValue {
            payload: payload.into(),
            class: Some(class.into()),
        }
    }

    /// Size of the payload in bytes.
    pub fn size(&self) -> usize {
        self.payload.len()
    }
}

/// The **Storage Runtime Interface** (SRI): the contract between the
/// workflow runtime and a storage backend.
///
/// This mirrors the paper's interface: the runtime pushes and pulls
/// values and — crucially for scheduling — asks `locations` (the
/// paper's `getLocations`) where replicas live so tasks can be placed
/// next to their data.
pub trait StorageRuntime: Send + Sync {
    /// Stores a value, preferring placement near `hint` if given.
    /// Returns the nodes holding replicas.
    ///
    /// # Errors
    ///
    /// Backend-specific; e.g. the hint names an unknown node.
    fn put(
        &self,
        key: ObjectKey,
        value: StoredValue,
        hint: Option<NodeId>,
    ) -> Result<Vec<NodeId>, StorageError>;

    /// Retrieves a value.
    ///
    /// # Errors
    ///
    /// [`StorageError::NotFound`] if absent,
    /// [`StorageError::AllReplicasDown`] if no live replica remains.
    fn get(&self, key: &ObjectKey) -> Result<StoredValue, StorageError>;

    /// Live replica locations of a key (the paper's `getLocations`).
    ///
    /// # Errors
    ///
    /// [`StorageError::NotFound`] if the key was never stored.
    fn locations(&self, key: &ObjectKey) -> Result<Vec<NodeId>, StorageError>;

    /// Removes a key. Removing an absent key is not an error.
    fn delete(&self, key: &ObjectKey);

    /// Returns `true` if at least one live replica exists.
    fn contains(&self, key: &ObjectKey) -> bool;
}

/// The **Storage Object Interface** (SOI): the programmer-facing trait.
///
/// Implemented by application object wrappers; calling
/// [`make_persistent`](PersistentObject::make_persistent) pushes the
/// object to the backend, after which it is used like a regular value
/// (the backend keeps it durable and replicated).
pub trait PersistentObject {
    /// Serializes the object for storage.
    fn to_payload(&self) -> Bytes;

    /// Class name, for active-store method registration.
    fn class_name(&self) -> Option<&str> {
        None
    }

    /// Pushes the object to `store` under `key`, making it persistent.
    ///
    /// # Errors
    ///
    /// Propagates backend errors from `put`.
    fn make_persistent(
        &self,
        store: &dyn StorageRuntime,
        key: ObjectKey,
    ) -> Result<Vec<NodeId>, StorageError> {
        let value = match self.class_name() {
            Some(c) => StoredValue::object(self.to_payload(), c),
            None => StoredValue::blob(self.to_payload()),
        };
        store.put(key, value, None)
    }

    /// Removes the object from `store`.
    fn delete_persistent(&self, store: &dyn StorageRuntime, key: &ObjectKey) {
        store.delete(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_conversions() {
        let a: ObjectKey = "k1".into();
        let b: ObjectKey = String::from("k1").into();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "k1");
        assert_eq!(a.to_string(), "k1");
    }

    #[test]
    fn stored_value_kinds() {
        let blob = StoredValue::blob(vec![1, 2, 3]);
        assert_eq!(blob.size(), 3);
        assert!(blob.class.is_none());
        let obj = StoredValue::object(vec![0; 10], "Matrix");
        assert_eq!(obj.class.as_deref(), Some("Matrix"));
        assert_eq!(obj.size(), 10);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &dyn StorageRuntime) {}
    }
}
