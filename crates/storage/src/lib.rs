//! Persistent storage for the `continuum` workflow environment.
//!
//! Implements the storage interface of the paper (§VI-A1): a **Storage
//! Object Interface** (SOI) offered to application programmers —
//! objects become persistent with [`PersistentObject::make_persistent`]
//! and are then accessed like regular values — and a **Storage Runtime
//! Interface** (SRI, the [`StorageRuntime`] trait) used by the runtime
//! to place data, query replica locations (`locations`, the paper's
//! `getLocations`) and exploit data locality when scheduling.
//!
//! Two backends implement the SRI, mirroring the BSC storage stack:
//!
//! * [`KvStore`] — a Hecuba-like partitioned, replicated key-value
//!   store (Python-dict-to-Cassandra-table in the paper; here a
//!   token-range partitioned map over storage nodes);
//! * [`ActiveStore`] — a dataClay-like *active* object store that also
//!   holds class methods and executes them inside the store node that
//!   owns the object, so only (small) results travel, not objects.
//!
//! A [`WriteAheadLog`] provides the persistence substrate the COMPSs
//! agents use to recover tasks lost on fog-node failures (§VI-B).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod async_handle;
mod error;
mod interface;
mod kv;
mod wal;

pub use active::{ActiveStore, ClassDef, MethodFn, ShippingStats};
pub use async_handle::{AsyncStorage, StorageReply};
pub use error::StorageError;
pub use interface::{ObjectKey, PersistentObject, StorageRuntime, StoredValue};
pub use kv::{KvConfig, KvStats, KvStore};
pub use wal::{WalEntry, WriteAheadLog};
