//! dataClay-like active object store: objects live together with their
//! class methods, and methods execute *inside* the store node that
//! holds the object, so only small results cross the network.

use crate::error::StorageError;
use crate::interface::{ObjectKey, StorageRuntime, StoredValue};
use crate::kv::{KvConfig, KvStore};
use bytes::Bytes;
use continuum_platform::NodeId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A method registered with a class: `(object_payload, args) -> result`.
pub type MethodFn = Arc<dyn Fn(&[u8], &[u8]) -> Bytes + Send + Sync>;

/// A class registered with an [`ActiveStore`]: a name plus executable
/// methods (the paper: "dataClay also holds a registry of the classes
/// where the objects belong, including their methods").
#[derive(Clone)]
pub struct ClassDef {
    name: String,
    methods: HashMap<String, MethodFn>,
}

impl ClassDef {
    /// Creates an empty class.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            methods: HashMap::new(),
        }
    }

    /// Registers a method.
    pub fn method(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&[u8], &[u8]) -> Bytes + Send + Sync + 'static,
    ) -> Self {
        self.methods.insert(name.into(), Arc::new(f));
        self
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registered method names.
    pub fn method_names(&self) -> impl Iterator<Item = &str> {
        self.methods.keys().map(String::as_str)
    }
}

impl fmt::Debug for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassDef")
            .field("name", &self.name)
            .field("methods", &self.methods.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Bytes that crossed the network under each access style, used to
/// quantify the paper's claim that in-store execution "minimises the
/// number of data transfers".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShippingStats {
    /// Bytes moved by fetching whole objects to the caller.
    pub object_bytes_shipped: u64,
    /// Bytes moved by shipping method arguments to the store.
    pub args_bytes_shipped: u64,
    /// Bytes moved by shipping method results back to the caller.
    pub result_bytes_shipped: u64,
    /// Number of whole-object fetches.
    pub fetches: u64,
    /// Number of in-store method executions.
    pub executions: u64,
}

impl ShippingStats {
    /// Total bytes moved under the active (method-shipping) style.
    pub fn active_bytes(&self) -> u64 {
        self.args_bytes_shipped + self.result_bytes_shipped
    }

    /// Total bytes moved under the passive (object-fetch) style.
    pub fn passive_bytes(&self) -> u64 {
        self.object_bytes_shipped
    }
}

/// An active object store: a replicated KV store plus a class registry
/// and in-store method execution.
///
/// # Example
///
/// ```
/// use continuum_storage::{ActiveStore, ClassDef, ObjectKey, StorageRuntime, StoredValue};
/// use continuum_platform::NodeId;
/// use bytes::Bytes;
///
/// let nodes: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
/// let store = ActiveStore::new(nodes, 1)?;
/// store.register_class(
///     ClassDef::new("Vector").method("sum", |payload, _args| {
///         let s: u64 = payload.iter().map(|b| *b as u64).sum();
///         Bytes::copy_from_slice(&s.to_le_bytes())
///     }),
/// );
/// store.put("v".into(), StoredValue::object(vec![1, 2, 3], "Vector"), None)?;
/// let result = store.execute(&"v".into(), "sum", &[])?;
/// assert_eq!(u64::from_le_bytes(result[..8].try_into().unwrap()), 6);
/// # Ok::<(), continuum_storage::StorageError>(())
/// ```
#[derive(Debug)]
pub struct ActiveStore {
    kv: KvStore,
    classes: Mutex<HashMap<String, ClassDef>>,
    stats: Mutex<ShippingStats>,
}

impl ActiveStore {
    /// Creates an active store over the given nodes with the given
    /// replication factor.
    ///
    /// # Errors
    ///
    /// Same config validation as [`KvStore::new`].
    pub fn new(nodes: Vec<NodeId>, replication: usize) -> Result<Self, StorageError> {
        Ok(ActiveStore {
            kv: KvStore::new(nodes, KvConfig { replication })?,
            classes: Mutex::new(HashMap::new()),
            stats: Mutex::new(ShippingStats::default()),
        })
    }

    /// Registers (or replaces) a class and its methods.
    pub fn register_class(&self, class: ClassDef) {
        self.classes.lock().insert(class.name().to_string(), class);
    }

    /// Executes a registered method *inside* the store node holding the
    /// object: only `args` travel in and the result travels out.
    ///
    /// # Errors
    ///
    /// * [`StorageError::NotFound`] / [`StorageError::AllReplicasDown`]
    ///   if the object is unavailable;
    /// * [`StorageError::NoClass`] if the object is a plain blob;
    /// * [`StorageError::UnknownMethod`] if the method is not
    ///   registered for the object's class.
    pub fn execute(
        &self,
        key: &ObjectKey,
        method: &str,
        args: &[u8],
    ) -> Result<Bytes, StorageError> {
        let value = self.kv.get(key)?;
        let class_name = value
            .class
            .clone()
            .ok_or_else(|| StorageError::NoClass(key.clone()))?;
        let func = {
            let classes = self.classes.lock();
            let class = classes
                .get(&class_name)
                .ok_or_else(|| StorageError::UnknownMethod {
                    class: class_name.clone(),
                    method: method.to_string(),
                })?;
            class
                .methods
                .get(method)
                .cloned()
                .ok_or_else(|| StorageError::UnknownMethod {
                    class: class_name.clone(),
                    method: method.to_string(),
                })?
        };
        let result = func(&value.payload, args);
        let mut stats = self.stats.lock();
        stats.executions += 1;
        stats.args_bytes_shipped += args.len() as u64;
        stats.result_bytes_shipped += result.len() as u64;
        Ok(result)
    }

    /// Fetches the whole object to the caller (the *passive* style the
    /// paper contrasts against), accounting the full payload as moved.
    ///
    /// # Errors
    ///
    /// Propagates [`StorageError`] from the underlying store.
    pub fn fetch(&self, key: &ObjectKey) -> Result<StoredValue, StorageError> {
        let value = self.kv.get(key)?;
        let mut stats = self.stats.lock();
        stats.fetches += 1;
        stats.object_bytes_shipped += value.size() as u64;
        Ok(value)
    }

    /// Current shipping statistics.
    pub fn shipping_stats(&self) -> ShippingStats {
        *self.stats.lock()
    }

    /// Resets the shipping statistics.
    pub fn reset_stats(&self) {
        *self.stats.lock() = ShippingStats::default();
    }

    /// The underlying KV store (placement, liveness, SRI operations).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }
}

impl StorageRuntime for ActiveStore {
    fn put(
        &self,
        key: ObjectKey,
        value: StoredValue,
        hint: Option<NodeId>,
    ) -> Result<Vec<NodeId>, StorageError> {
        self.kv.put(key, value, hint)
    }

    fn get(&self, key: &ObjectKey) -> Result<StoredValue, StorageError> {
        self.kv.get(key)
    }

    fn locations(&self, key: &ObjectKey) -> Result<Vec<NodeId>, StorageError> {
        self.kv.locations(key)
    }

    fn delete(&self, key: &ObjectKey) {
        self.kv.delete(key)
    }

    fn contains(&self, key: &ObjectKey) -> bool {
        self.kv.contains(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector_store() -> ActiveStore {
        let store = ActiveStore::new((0..3).map(NodeId::from_raw).collect(), 2).unwrap();
        store.register_class(
            ClassDef::new("Vector")
                .method("sum", |payload, _| {
                    let s: u64 = payload.iter().map(|b| *b as u64).sum();
                    Bytes::copy_from_slice(&s.to_le_bytes())
                })
                .method("count_above", |payload, args| {
                    let threshold = args.first().copied().unwrap_or(0);
                    let c = payload.iter().filter(|b| **b > threshold).count() as u64;
                    Bytes::copy_from_slice(&c.to_le_bytes())
                }),
        );
        store
    }

    #[test]
    fn method_execution_returns_result() {
        let s = vector_store();
        s.put(
            "v".into(),
            StoredValue::object(vec![1, 2, 3, 4], "Vector"),
            None,
        )
        .unwrap();
        let r = s.execute(&"v".into(), "sum", &[]).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 10);
    }

    #[test]
    fn method_with_args() {
        let s = vector_store();
        s.put(
            "v".into(),
            StoredValue::object(vec![1, 5, 9], "Vector"),
            None,
        )
        .unwrap();
        let r = s.execute(&"v".into(), "count_above", &[4]).unwrap();
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 2);
    }

    #[test]
    fn unknown_method_and_class_errors() {
        let s = vector_store();
        s.put("v".into(), StoredValue::object(vec![1], "Vector"), None)
            .unwrap();
        assert!(matches!(
            s.execute(&"v".into(), "nope", &[]),
            Err(StorageError::UnknownMethod { .. })
        ));
        s.put("w".into(), StoredValue::object(vec![1], "Ghost"), None)
            .unwrap();
        assert!(matches!(
            s.execute(&"w".into(), "sum", &[]),
            Err(StorageError::UnknownMethod { .. })
        ));
    }

    #[test]
    fn blob_objects_cannot_run_methods() {
        let s = vector_store();
        s.put("b".into(), StoredValue::blob(vec![1, 2]), None)
            .unwrap();
        assert_eq!(
            s.execute(&"b".into(), "sum", &[]),
            Err(StorageError::NoClass("b".into()))
        );
    }

    #[test]
    fn shipping_stats_quantify_the_savings() {
        let s = vector_store();
        let big = vec![1u8; 1_000_000];
        s.put("v".into(), StoredValue::object(big, "Vector"), None)
            .unwrap();
        // Active style: ship 0-byte args + 8-byte result.
        s.execute(&"v".into(), "sum", &[]).unwrap();
        // Passive style: fetch the whole megabyte.
        s.fetch(&"v".into()).unwrap();
        let stats = s.shipping_stats();
        assert_eq!(stats.active_bytes(), 8);
        assert_eq!(stats.passive_bytes(), 1_000_000);
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.fetches, 1);
        assert!(stats.passive_bytes() > 1000 * stats.active_bytes());
        s.reset_stats();
        assert_eq!(s.shipping_stats(), ShippingStats::default());
    }

    #[test]
    fn execution_fails_when_object_unavailable() {
        let s = vector_store();
        let reps = s
            .put("v".into(), StoredValue::object(vec![1], "Vector"), None)
            .unwrap();
        for r in reps {
            s.kv().fail_node(r);
        }
        assert!(matches!(
            s.execute(&"v".into(), "sum", &[]),
            Err(StorageError::AllReplicasDown(_))
        ));
    }

    #[test]
    fn sri_passthrough() {
        let s = vector_store();
        s.put("v".into(), StoredValue::blob(vec![1]), None).unwrap();
        assert!(s.contains(&"v".into()));
        assert!(!s.locations(&"v".into()).unwrap().is_empty());
        s.delete(&"v".into());
        assert!(!s.contains(&"v".into()));
    }

    #[test]
    fn class_def_introspection() {
        let c = ClassDef::new("C").method("m", |_, _| Bytes::new());
        assert_eq!(c.name(), "C");
        assert_eq!(c.method_names().collect::<Vec<_>>(), vec!["m"]);
        assert!(format!("{c:?}").contains("\"m\""));
    }
}
