//! Error type for storage operations.

use crate::interface::ObjectKey;
use continuum_platform::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced by storage backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The key is not present in the store.
    NotFound(ObjectKey),
    /// All replicas of the key are on failed nodes.
    AllReplicasDown(ObjectKey),
    /// The referenced storage node is not part of this store.
    UnknownNode(NodeId),
    /// A class or method name was not registered with an active store.
    UnknownMethod {
        /// Class name looked up.
        class: String,
        /// Method name looked up.
        method: String,
    },
    /// The object was stored without a class, so methods cannot run on it.
    NoClass(ObjectKey),
    /// The store was configured inconsistently (e.g. replication factor
    /// larger than the node count).
    InvalidConfig(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(k) => write!(f, "object `{k}` not found"),
            StorageError::AllReplicasDown(k) => {
                write!(f, "all replicas of `{k}` are on failed nodes")
            }
            StorageError::UnknownNode(n) => write!(f, "node {n} is not a storage node"),
            StorageError::UnknownMethod { class, method } => {
                write!(f, "method `{method}` not registered for class `{class}`")
            }
            StorageError::NoClass(k) => {
                write!(f, "object `{k}` has no registered class")
            }
            StorageError::InvalidConfig(msg) => write!(f, "invalid store config: {msg}"),
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let k = ObjectKey::new("x");
        assert!(StorageError::NotFound(k.clone())
            .to_string()
            .contains("`x`"));
        let e = StorageError::UnknownMethod {
            class: "Matrix".into(),
            method: "sum".into(),
        };
        assert!(e.to_string().contains("`sum`"));
        assert!(e.to_string().contains("`Matrix`"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<StorageError>();
    }
}
