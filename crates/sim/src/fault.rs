//! Fault injection: scheduled or stochastic node failures/recoveries
//! (the fog-node churn of §VI-B).

use crate::time::VirtualTime;
use continuum_platform::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Whether the node fails or comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Node dies; running tasks are lost.
    Fail,
    /// Node returns, idle.
    Recover,
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When it happens.
    pub time: VirtualTime,
    /// Which node.
    pub node: NodeId,
    /// Failure or recovery.
    pub kind: FaultKind,
}

/// A time-ordered plan of fault events fed to the simulated engine.
///
/// # Example
///
/// ```
/// use continuum_sim::{FaultPlan, VirtualTime};
/// use continuum_platform::NodeId;
///
/// let plan = FaultPlan::new()
///     .fail_at(10.0, NodeId::from_raw(2))
///     .recover_at(60.0, NodeId::from_raw(2));
/// assert_eq!(plan.events().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a failure.
    pub fn fail_at(mut self, seconds: f64, node: NodeId) -> Self {
        self.events.push(FaultEvent {
            time: VirtualTime::from_seconds(seconds),
            node,
            kind: FaultKind::Fail,
        });
        self.sort();
        self
    }

    /// Schedules a recovery.
    pub fn recover_at(mut self, seconds: f64, node: NodeId) -> Self {
        self.events.push(FaultEvent {
            time: VirtualTime::from_seconds(seconds),
            node,
            kind: FaultKind::Recover,
        });
        self.sort();
        self
    }

    /// Generates exponential churn for a set of volatile nodes: each
    /// node fails with mean time between failures `mtbf_s` and recovers
    /// after a mean downtime `mttr_s`, until `horizon_s`. Deterministic
    /// for a given seed.
    pub fn churn(
        seed: u64,
        nodes: impl IntoIterator<Item = NodeId>,
        mtbf_s: f64,
        mttr_s: f64,
        horizon_s: f64,
    ) -> Self {
        assert!(mtbf_s > 0.0 && mttr_s > 0.0, "mean times must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for node in nodes {
            let mut t = 0.0f64;
            loop {
                // Exponential sample via inverse CDF.
                let up: f64 = -mtbf_s * (1.0 - rng.gen::<f64>()).ln();
                t += up.max(1e-6);
                if t >= horizon_s {
                    break;
                }
                events.push(FaultEvent {
                    time: VirtualTime::from_seconds(t),
                    node,
                    kind: FaultKind::Fail,
                });
                let down: f64 = -mttr_s * (1.0 - rng.gen::<f64>()).ln();
                t += down.max(1e-6);
                if t >= horizon_s {
                    break;
                }
                events.push(FaultEvent {
                    time: VirtualTime::from_seconds(t),
                    node,
                    kind: FaultKind::Recover,
                });
            }
        }
        let mut plan = FaultPlan { events };
        plan.sort();
        plan
    }

    fn sort(&mut self) {
        self.events
            .sort_by(|a, b| a.time.cmp(&b.time).then(a.node.cmp(&b.node)));
    }

    /// The time-ordered events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Returns `true` if the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_events() {
        let plan = FaultPlan::new()
            .recover_at(60.0, NodeId::from_raw(1))
            .fail_at(10.0, NodeId::from_raw(1));
        assert_eq!(plan.events()[0].kind, FaultKind::Fail);
        assert_eq!(plan.events()[1].kind, FaultKind::Recover);
    }

    #[test]
    fn churn_is_deterministic_and_ordered() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId::from_raw).collect();
        let a = FaultPlan::churn(7, nodes.clone(), 100.0, 20.0, 1000.0);
        let b = FaultPlan::churn(7, nodes.clone(), 100.0, 20.0, 1000.0);
        assert_eq!(a, b);
        assert!(
            !a.is_empty(),
            "1000 s horizon with 100 s MTBF must fail sometimes"
        );
        for w in a.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn churn_alternates_fail_recover_per_node() {
        let plan = FaultPlan::churn(3, [NodeId::from_raw(0)], 50.0, 10.0, 2000.0);
        let mut expect_fail = true;
        for e in plan.events() {
            let expected = if expect_fail {
                FaultKind::Fail
            } else {
                FaultKind::Recover
            };
            assert_eq!(e.kind, expected);
            expect_fail = !expect_fail;
        }
    }

    #[test]
    fn churn_respects_horizon() {
        let plan = FaultPlan::churn(5, (0..8).map(NodeId::from_raw), 10.0, 5.0, 100.0);
        for e in plan.events() {
            assert!(e.time.as_seconds() < 100.0);
        }
    }

    #[test]
    fn higher_churn_rate_means_more_failures() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId::from_raw).collect();
        let rare = FaultPlan::churn(1, nodes.clone(), 10_000.0, 10.0, 1000.0);
        let frequent = FaultPlan::churn(1, nodes, 50.0, 10.0, 1000.0);
        assert!(frequent.events().len() > rare.events().len());
    }

    #[test]
    #[should_panic(expected = "mean times must be positive")]
    fn churn_rejects_zero_mtbf() {
        let _ = FaultPlan::churn(0, [NodeId::from_raw(0)], 0.0, 1.0, 10.0);
    }
}
