//! Per-node simulation state: occupancy, utilisation and energy over
//! virtual time.

use crate::time::VirtualTime;
use continuum_dag::TaskId;
use continuum_platform::{Constraints, EnergyAccount, Node, NodeCapacity, NodeId, PowerModel};
use std::collections::BTreeSet;

/// Dynamic state of one simulated node.
///
/// The state integrates core-utilisation and the linear power model
/// over virtual time: every mutation first calls `advance`, which
/// accounts the elapsed interval at the utilisation that held during
/// it.
#[derive(Debug, Clone)]
pub struct NodeState {
    id: NodeId,
    total: NodeCapacity,
    free: NodeCapacity,
    speed: f64,
    power: PowerModel,
    alive: bool,
    running: BTreeSet<TaskId>,
    cores_in_use: u32,
    last_update: VirtualTime,
    busy_core_seconds: f64,
    alive_seconds: f64,
    energy: EnergyAccount,
    account_idle: bool,
}

impl NodeState {
    /// Creates the state for a platform node, alive and idle at t=0.
    pub fn new(node: &Node) -> Self {
        NodeState {
            id: node.id(),
            total: node.capacity().clone(),
            free: node.capacity().clone(),
            speed: node.spec().speed(),
            power: node.spec().power(),
            alive: true,
            running: BTreeSet::new(),
            cores_in_use: 0,
            last_update: VirtualTime::ZERO,
            busy_core_seconds: 0.0,
            alive_seconds: 0.0,
            energy: EnergyAccount::new(),
            account_idle: true,
        }
    }

    /// Creates the state for a node that joins the platform at `now`
    /// (elastic provisioning): no alive time is accounted before then.
    pub fn new_at(node: &Node, now: VirtualTime) -> Self {
        let mut st = Self::new(node);
        st.last_update = now;
        st
    }

    /// Controls whether idle (powered-on) time consumes idle power.
    /// Disabling models aggressive power management: idle nodes are
    /// suspended and draw nothing (used by energy-aware experiments).
    pub fn set_idle_accounting(&mut self, account_idle: bool) {
        self.account_idle = account_idle;
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is currently alive.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// The node's full capacity.
    pub fn total_capacity(&self) -> &NodeCapacity {
        &self.total
    }

    /// The node's currently free capacity.
    pub fn free_capacity(&self) -> &NodeCapacity {
        &self.free
    }

    /// Tasks currently running here.
    pub fn running_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.running.iter().copied()
    }

    /// Number of tasks currently running here.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Returns `true` if nothing is running.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// Relative speed factor of the node.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Wall-clock duration of a task with the given reference duration
    /// on this node.
    pub fn effective_duration(&self, reference_seconds: f64) -> f64 {
        reference_seconds / self.speed
    }

    /// Integrates utilisation/energy up to `now`. Idempotent for equal
    /// times; called implicitly by every mutation.
    pub fn advance(&mut self, now: VirtualTime) {
        let dt = now.since(self.last_update);
        if dt > 0.0 && self.alive {
            let total_cores = self.total.cores().max(1) as f64;
            let u = self.cores_in_use as f64 / total_cores;
            self.busy_core_seconds += self.cores_in_use as f64 * dt;
            self.alive_seconds += dt;
            if self.cores_in_use > 0 {
                self.energy.add_busy(self.power, dt, u);
            } else if self.account_idle {
                self.energy.add_idle(self.power, dt);
            }
        }
        self.last_update = self.last_update.max(now);
    }

    /// Returns `true` if the node is alive and has capacity for `req`.
    pub fn can_host(&self, req: &Constraints) -> bool {
        self.alive && self.free.satisfies(req)
    }

    /// Attempts to start a task; returns `false` (without side effects)
    /// if the node is dead or lacks capacity.
    pub fn try_start(&mut self, task: TaskId, req: &Constraints, now: VirtualTime) -> bool {
        if !self.can_host(req) {
            return false;
        }
        self.advance(now);
        self.free.allocate(req);
        self.cores_in_use += req.required_compute_units();
        self.running.insert(task);
        true
    }

    /// Finishes a task, releasing its resources.
    ///
    /// # Panics
    ///
    /// Panics if the task is not running here.
    pub fn finish(&mut self, task: TaskId, req: &Constraints, now: VirtualTime) {
        assert!(
            self.running.remove(&task),
            "task {task} not running on {}",
            self.id
        );
        self.advance(now);
        self.free.release(req);
        self.cores_in_use -= req.required_compute_units();
    }

    /// Kills the node: all running tasks are lost and returned so the
    /// engine can re-queue them. Capacity resets for the eventual
    /// recovery.
    pub fn fail(&mut self, now: VirtualTime) -> Vec<TaskId> {
        self.advance(now);
        self.alive = false;
        self.cores_in_use = 0;
        self.free = self.total.clone();
        std::mem::take(&mut self.running).into_iter().collect()
    }

    /// Brings a failed node back, idle.
    pub fn recover(&mut self, now: VirtualTime) {
        self.advance(now);
        self.alive = true;
    }

    /// Core-seconds spent running tasks.
    pub fn busy_core_seconds(&self) -> f64 {
        self.busy_core_seconds
    }

    /// Seconds the node has been powered on (alive).
    pub fn alive_seconds(&self) -> f64 {
        self.alive_seconds
    }

    /// Mean core utilisation over the node's alive time, in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.alive_seconds <= 0.0 {
            return 0.0;
        }
        self.busy_core_seconds / (self.total.cores().max(1) as f64 * self.alive_seconds)
    }

    /// Accumulated energy account.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_platform::NodeSpec;

    fn node(cores: u32, mem: u64) -> Node {
        let platform = continuum_platform::PlatformBuilder::new()
            .cluster("c", 1, NodeSpec::hpc(cores, mem))
            .build();
        platform.node_by_index(0).clone()
    }

    fn t(s: f64) -> VirtualTime {
        VirtualTime::from_seconds(s)
    }

    #[test]
    fn start_and_finish_track_occupancy() {
        let mut st = NodeState::new(&node(4, 1000));
        let task = TaskId::from_raw(0);
        let req = Constraints::new().compute_units(2).memory_mb(500);
        assert!(st.try_start(task, &req, t(0.0)));
        assert_eq!(st.running_count(), 1);
        assert_eq!(st.free_capacity().cores(), 2);
        assert_eq!(st.free_capacity().memory_mb(), 500);
        st.finish(task, &req, t(10.0));
        assert!(st.is_idle());
        assert_eq!(st.free_capacity().cores(), 4);
        assert_eq!(st.busy_core_seconds(), 20.0, "2 cores × 10 s");
    }

    #[test]
    fn rejects_over_capacity() {
        let mut st = NodeState::new(&node(2, 100));
        let big = Constraints::new().compute_units(4);
        assert!(!st.try_start(TaskId::from_raw(0), &big, t(0.0)));
        let hungry = Constraints::new().memory_mb(200);
        assert!(!st.try_start(TaskId::from_raw(1), &hungry, t(0.0)));
        assert!(st.is_idle());
    }

    #[test]
    fn utilisation_integrates_over_time() {
        let mut st = NodeState::new(&node(4, 1000));
        let req = Constraints::new().compute_units(4);
        st.try_start(TaskId::from_raw(0), &req, t(0.0));
        st.finish(TaskId::from_raw(0), &req, t(5.0));
        st.advance(t(10.0));
        // Busy 5 s at 100%, idle 5 s: utilisation = 0.5.
        assert!((st.utilisation() - 0.5).abs() < 1e-9);
        assert_eq!(st.alive_seconds(), 10.0);
    }

    #[test]
    fn energy_splits_busy_and_idle() {
        let mut st = NodeState::new(&node(1, 100));
        let req = Constraints::new();
        st.try_start(TaskId::from_raw(0), &req, t(0.0));
        st.finish(TaskId::from_raw(0), &req, t(10.0));
        st.advance(t(20.0));
        let e = st.energy();
        assert!(e.busy_joules > 0.0);
        assert!(e.idle_joules > 0.0);
        assert_eq!(e.busy_seconds, 10.0);
        assert_eq!(e.idle_seconds, 10.0);
    }

    #[test]
    fn failure_drops_tasks_and_stops_accounting() {
        let mut st = NodeState::new(&node(4, 1000));
        let req = Constraints::new();
        st.try_start(TaskId::from_raw(0), &req, t(0.0));
        st.try_start(TaskId::from_raw(1), &req, t(0.0));
        let lost = st.fail(t(5.0));
        assert_eq!(lost.len(), 2);
        assert!(!st.is_alive());
        assert!(!st.can_host(&req));
        let alive_before = st.alive_seconds();
        st.advance(t(50.0));
        assert_eq!(st.alive_seconds(), alive_before, "dead time not counted");
        st.recover(t(50.0));
        assert!(st.can_host(&req));
        assert!(st.try_start(TaskId::from_raw(2), &req, t(50.0)));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn finishing_unknown_task_panics() {
        let mut st = NodeState::new(&node(1, 100));
        st.finish(TaskId::from_raw(9), &Constraints::new(), t(0.0));
    }

    #[test]
    fn effective_duration_scales_with_speed() {
        let platform = continuum_platform::PlatformBuilder::new()
            .cluster("c", 1, NodeSpec::hpc(4, 1000).with_speed(2.0))
            .build();
        let st = NodeState::new(platform.node_by_index(0));
        assert_eq!(st.effective_duration(10.0), 5.0);
    }

    #[test]
    fn advance_is_idempotent_for_equal_times() {
        let mut st = NodeState::new(&node(2, 100));
        st.advance(t(5.0));
        let a = st.alive_seconds();
        st.advance(t(5.0));
        assert_eq!(st.alive_seconds(), a);
        // Advancing "backwards" is a no-op, not a panic.
        st.advance(t(1.0));
        assert_eq!(st.alive_seconds(), a);
    }
}
