//! Run metrics: the bundle every simulated experiment reports.

use crate::node_state::NodeState;
use crate::transfer::TransferLedger;
use continuum_platform::EnergyAccount;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-node usage summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeUsage {
    /// Node index in the platform.
    pub node_index: usize,
    /// Core-seconds spent running tasks.
    pub busy_core_seconds: f64,
    /// Seconds the node was powered on.
    pub alive_seconds: f64,
    /// Mean core utilisation in `[0, 1]`.
    pub utilisation: f64,
}

/// Metrics of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Virtual seconds from start to last task completion.
    pub makespan_s: f64,
    /// Tasks completed.
    pub tasks_completed: usize,
    /// Task executions beyond the first attempt (failure recovery).
    pub tasks_reexecuted: usize,
    /// Number of network transfers performed.
    pub transfer_count: usize,
    /// Bytes moved across the network.
    pub transfer_bytes: u64,
    /// Reads served locally without a transfer.
    pub locality_hits: u64,
    /// Fraction of reads served locally.
    pub locality_rate: f64,
    /// Seconds task starts were stalled waiting for input transfers,
    /// summed over all executions.
    pub transfer_stall_s: f64,
    /// Aggregate energy over all nodes.
    pub energy: EnergyAccount,
    /// Per-node usage.
    pub node_usage: Vec<NodeUsage>,
    /// Node-hours consumed (alive time summed over nodes, in hours).
    pub node_hours: f64,
}

impl RunReport {
    /// Assembles a report from engine state.
    pub fn from_parts(
        makespan_s: f64,
        tasks_completed: usize,
        tasks_reexecuted: usize,
        transfer_stall_s: f64,
        nodes: &[NodeState],
        transfers: &TransferLedger,
    ) -> Self {
        let mut energy = EnergyAccount::new();
        let mut node_usage = Vec::with_capacity(nodes.len());
        let mut alive_total = 0.0;
        for (i, n) in nodes.iter().enumerate() {
            energy.merge(n.energy());
            alive_total += n.alive_seconds();
            node_usage.push(NodeUsage {
                node_index: i,
                busy_core_seconds: n.busy_core_seconds(),
                alive_seconds: n.alive_seconds(),
                utilisation: n.utilisation(),
            });
        }
        RunReport {
            makespan_s,
            tasks_completed,
            tasks_reexecuted,
            transfer_count: transfers.count(),
            transfer_bytes: transfers.total_bytes(),
            locality_hits: transfers.local_hits(),
            locality_rate: transfers.locality_rate(),
            transfer_stall_s,
            energy,
            node_usage,
            node_hours: alive_total / 3600.0,
        }
    }

    /// Mean utilisation across nodes that were ever alive.
    pub fn mean_utilisation(&self) -> f64 {
        let alive: Vec<&NodeUsage> = self
            .node_usage
            .iter()
            .filter(|u| u.alive_seconds > 0.0)
            .collect();
        if alive.is_empty() {
            return 0.0;
        }
        alive.iter().map(|u| u.utilisation).sum::<f64>() / alive.len() as f64
    }

    /// Speedup of this run relative to a baseline makespan.
    pub fn speedup_vs(&self, baseline_makespan_s: f64) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        baseline_makespan_s / self.makespan_s
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "makespan           {:>12.2} s", self.makespan_s)?;
        writeln!(f, "tasks completed    {:>12}", self.tasks_completed)?;
        writeln!(f, "tasks re-executed  {:>12}", self.tasks_reexecuted)?;
        writeln!(
            f,
            "transfers          {:>12}  ({:.1} MB)",
            self.transfer_count,
            self.transfer_bytes as f64 / 1e6
        )?;
        writeln!(
            f,
            "locality           {:>11.1}%  ({} hits)",
            self.locality_rate * 100.0,
            self.locality_hits
        )?;
        writeln!(f, "transfer stall     {:>12.2} s", self.transfer_stall_s)?;
        writeln!(
            f,
            "energy             {:>12.3} kWh",
            self.energy.total_kwh()
        )?;
        writeln!(f, "node-hours         {:>12.3}", self.node_hours)?;
        write!(
            f,
            "mean utilisation   {:>11.1}%",
            self.mean_utilisation() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualTime;
    use continuum_dag::TaskId;
    use continuum_platform::{Constraints, NodeSpec, PlatformBuilder};

    fn sample_report() -> RunReport {
        let platform = PlatformBuilder::new()
            .cluster("c", 2, NodeSpec::hpc(4, 1000))
            .build();
        let mut nodes: Vec<NodeState> = platform.nodes().iter().map(NodeState::new).collect();
        let req = Constraints::new().compute_units(4);
        nodes[0].try_start(TaskId::from_raw(0), &req, VirtualTime::ZERO);
        nodes[0].finish(TaskId::from_raw(0), &req, VirtualTime::from_seconds(10.0));
        nodes[1].advance(VirtualTime::from_seconds(10.0));
        let mut ledger = TransferLedger::new();
        ledger.record_local_hit(100);
        RunReport::from_parts(10.0, 1, 0, 0.25, &nodes, &ledger)
    }

    #[test]
    fn aggregates_node_usage() {
        let r = sample_report();
        assert_eq!(r.makespan_s, 10.0);
        assert_eq!(r.node_usage.len(), 2);
        assert!((r.node_usage[0].utilisation - 1.0).abs() < 1e-9);
        assert_eq!(r.node_usage[1].utilisation, 0.0);
        assert!((r.mean_utilisation() - 0.5).abs() < 1e-9);
        assert!((r.node_hours - 20.0 / 3600.0).abs() < 1e-9);
        assert!(r.energy.total_joules() > 0.0);
    }

    #[test]
    fn locality_propagates() {
        let r = sample_report();
        assert_eq!(r.locality_hits, 1);
        assert_eq!(r.locality_rate, 1.0);
        assert_eq!(r.transfer_count, 0);
    }

    #[test]
    fn speedup_math() {
        let r = sample_report();
        assert!((r.speedup_vs(100.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_non_empty() {
        let r = sample_report();
        let s = r.to_string();
        assert!(s.contains("makespan"));
        assert!(s.contains("energy"));
        assert!(s.contains("transfer stall"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        assert_eq!(r.transfer_stall_s, 0.25);
        let back: RunReport = serde::from_str(&serde::to_string(&r)).unwrap();
        assert_eq!(back, r);
    }
}
