//! Accounting of simulated data transfers.

use crate::time::VirtualTime;
use continuum_platform::NodeId;
use serde::{Deserialize, Serialize};

/// One recorded transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload size.
    pub bytes: u64,
    /// Link occupancy time.
    pub seconds: f64,
    /// Start time of the transfer.
    pub start: VirtualTime,
}

/// Ledger of all transfers performed during a run, plus locality hits
/// (reads served without any transfer because the data was already on
/// the consuming node).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransferLedger {
    records: Vec<TransferRecord>,
    total_bytes: u64,
    total_seconds: f64,
    local_hits: u64,
    local_bytes: u64,
}

impl TransferLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transfer between distinct nodes.
    pub fn record(&mut self, record: TransferRecord) {
        self.total_bytes += record.bytes;
        self.total_seconds += record.seconds;
        self.records.push(record);
    }

    /// Records a read served locally (no transfer needed).
    pub fn record_local_hit(&mut self, bytes: u64) {
        self.local_hits += 1;
        self.local_bytes += bytes;
    }

    /// Number of transfers performed.
    pub fn count(&self) -> usize {
        self.records.len()
    }

    /// Total bytes moved across the network.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total seconds of link occupancy.
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }

    /// Reads served from local data.
    pub fn local_hits(&self) -> u64 {
        self.local_hits
    }

    /// Bytes that did **not** move thanks to locality.
    pub fn local_bytes(&self) -> u64 {
        self.local_bytes
    }

    /// Fraction of reads served locally, in `[0, 1]`.
    pub fn locality_rate(&self) -> f64 {
        let total = self.local_hits + self.records.len() as u64;
        if total == 0 {
            return 0.0;
        }
        self.local_hits as f64 / total as f64
    }

    /// All transfer records.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bytes: u64, seconds: f64) -> TransferRecord {
        TransferRecord {
            from: NodeId::from_raw(0),
            to: NodeId::from_raw(1),
            bytes,
            seconds,
            start: VirtualTime::ZERO,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut l = TransferLedger::new();
        l.record(rec(100, 1.0));
        l.record(rec(50, 0.5));
        assert_eq!(l.count(), 2);
        assert_eq!(l.total_bytes(), 150);
        assert!((l.total_seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn locality_rate() {
        let mut l = TransferLedger::new();
        assert_eq!(l.locality_rate(), 0.0);
        l.record(rec(100, 1.0));
        l.record_local_hit(100);
        l.record_local_hit(100);
        l.record_local_hit(100);
        assert!((l.locality_rate() - 0.75).abs() < 1e-12);
        assert_eq!(l.local_bytes(), 300);
        assert_eq!(l.local_hits(), 3);
    }
}
