//! Virtual time: finite, non-negative seconds since simulation start.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since the simulation epoch.
///
/// Values are always finite; constructors reject NaN/infinities so the
/// event queue's ordering is total.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct VirtualTime(f64);

impl VirtualTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// Creates a virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn from_seconds(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "virtual time must be finite and non-negative, got {seconds}"
        );
        VirtualTime(seconds)
    }

    /// Seconds since the epoch.
    pub fn as_seconds(self) -> f64 {
        self.0
    }

    /// This time advanced by `seconds` (clamped to non-negative).
    pub fn after(self, seconds: f64) -> VirtualTime {
        VirtualTime::from_seconds(self.0 + seconds.max(0.0))
    }

    /// The non-negative duration from `earlier` to `self`.
    pub fn since(self, earlier: VirtualTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }

    /// The later of two times.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for VirtualTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite by construction, so partial_cmp never fails.
        self.0
            .partial_cmp(&other.0)
            .expect("virtual time is finite")
    }
}

impl Add<f64> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: f64) -> VirtualTime {
        self.after(rhs)
    }
}

impl AddAssign<f64> for VirtualTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = self.after(rhs);
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = f64;
    fn sub(self, rhs: VirtualTime) -> f64 {
        self.since(rhs)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = VirtualTime::from_seconds(1.5);
        assert_eq!(t.as_seconds(), 1.5);
        assert_eq!(VirtualTime::ZERO.as_seconds(), 0.0);
        assert_eq!(t.to_string(), "1.500s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rejected() {
        let _ = VirtualTime::from_seconds(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_rejected() {
        let _ = VirtualTime::from_seconds(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::from_seconds(10.0);
        assert_eq!((t + 5.0).as_seconds(), 15.0);
        assert_eq!(t.after(-3.0).as_seconds(), 10.0, "negative deltas clamp");
        let later = VirtualTime::from_seconds(12.0);
        assert_eq!(later - t, 2.0);
        assert_eq!(t - later, 0.0, "durations are non-negative");
        let mut m = t;
        m += 1.0;
        assert_eq!(m.as_seconds(), 11.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = VirtualTime::from_seconds(1.0);
        let b = VirtualTime::from_seconds(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
