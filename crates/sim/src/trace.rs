//! Execution traces: per-task placement and timing records, the
//! equivalent of the Paraver traces the COMPSs runtime emits for
//! post-mortem analysis.

use continuum_dag::TaskId;
use continuum_platform::NodeId;
use continuum_telemetry::{micros_from_seconds, Event, GanttSpan, SpanContext, TaskPhase, Track};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One task execution (re-executions appear as separate records).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The executed task.
    pub task: TaskId,
    /// Head node of the execution (first host for rigid tasks).
    pub node: NodeId,
    /// Start time (transfer stall included), seconds.
    pub start_s: f64,
    /// Completion time, seconds.
    pub end_s: f64,
    /// Seconds spent waiting for input transfers before compute.
    pub transfer_stall_s: f64,
    /// `true` for lineage replays of already-completed tasks.
    pub replay: bool,
}

impl TraceRecord {
    /// Expands the record into engine-independent telemetry events on
    /// the execution node's track, in virtual microseconds: a
    /// `Transferring` span for any input stall, an `Executing` span,
    /// and a `Committed` (or `Replayed`) marker. This is the single
    /// conversion the simulated engine and post-hoc trace exports
    /// share. `ctx`, when given, stamps the spans so the task chains
    /// into a distributed trace (both phases share the one context:
    /// they are phases of a single logical execution).
    pub fn to_events(&self, name: &str, ctx: Option<SpanContext>) -> Vec<Event> {
        let track = Track::Node(self.node.index() as u32);
        let start_us = micros_from_seconds(self.start_s);
        let exec_start_us = micros_from_seconds(self.start_s + self.transfer_stall_s);
        let end_us = micros_from_seconds(self.end_s);
        let mut events = Vec::with_capacity(3);
        if exec_start_us > start_us {
            events.push(Event::Span {
                track,
                name: name.to_string(),
                phase: TaskPhase::Transferring,
                start_us,
                dur_us: exec_start_us - start_us,
                ctx,
            });
        }
        events.push(Event::Span {
            track,
            name: name.to_string(),
            phase: TaskPhase::Executing,
            start_us: exec_start_us,
            dur_us: end_us.saturating_sub(exec_start_us),
            ctx,
        });
        events.push(Event::Instant {
            track,
            name: name.to_string(),
            phase: if self.replay {
                TaskPhase::Replayed
            } else {
                TaskPhase::Committed
            },
            at_us: end_us,
        });
        events
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    records: Vec<TraceRecord>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// All records, in completion order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records executed on a given node.
    pub fn on_node(&self, node: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.node == node)
    }

    /// Total seconds stalled on transfers across all executions.
    pub fn total_transfer_stall_s(&self) -> f64 {
        self.records.iter().map(|r| r.transfer_stall_s).sum()
    }

    /// Renders an ASCII Gantt chart: one row per node, time bucketed
    /// into `width` columns. Busy buckets show `#`, replays `r`.
    /// Rendering is delegated to [`continuum_telemetry::gantt`].
    pub fn gantt(&self, nodes: usize, width: usize) -> String {
        let rows: Vec<(String, Vec<GanttSpan>)> = (0..nodes)
            .map(|n| {
                let spans = self
                    .on_node(NodeId::from_raw(n as u32))
                    .map(|r| GanttSpan {
                        start_s: r.start_s,
                        end_s: r.end_s,
                        replay: r.replay,
                    })
                    .collect();
                (format!("n{n}"), spans)
            })
            .collect();
        continuum_telemetry::gantt::render(&rows, width)
    }

    /// Converts the whole trace to telemetry events (see
    /// [`TraceRecord::to_events`]), labelling spans with the task id.
    pub fn to_events(&self) -> Vec<Event> {
        self.to_events_traced(None)
    }

    /// Like [`ExecutionTrace::to_events`], but parents every record
    /// under `ctx`: record *i* gets the child context derived with
    /// sequence `i + 1` (record order, so lineage replays of one task
    /// still get distinct span ids).
    pub fn to_events_traced(&self, ctx: Option<SpanContext>) -> Vec<Event> {
        self.records
            .iter()
            .enumerate()
            .flat_map(|(i, r)| {
                let child = ctx.map(|c| c.child(c.agent_id, i as u64 + 1));
                r.to_events(&r.task.to_string(), child)
            })
            .collect()
    }
}

impl fmt::Display for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(
                f,
                "{}{} on {}: {:.3}s → {:.3}s (stall {:.3}s)",
                r.task,
                if r.replay { " (replay)" } else { "" },
                r.node,
                r.start_s,
                r.end_s,
                r.transfer_stall_s
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: u64, node: u32, start: f64, end: f64) -> TraceRecord {
        TraceRecord {
            task: TaskId::from_raw(task),
            node: NodeId::from_raw(node),
            start_s: start,
            end_s: end,
            transfer_stall_s: 0.1,
            replay: false,
        }
    }

    #[test]
    fn records_and_filters() {
        let mut t = ExecutionTrace::new();
        assert!(t.is_empty());
        t.record(rec(0, 0, 0.0, 5.0));
        t.record(rec(1, 1, 0.0, 3.0));
        t.record(rec(2, 0, 5.0, 8.0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.on_node(NodeId::from_raw(0)).count(), 2);
        assert!((t.total_transfer_stall_s() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_busy_cells() {
        let mut t = ExecutionTrace::new();
        t.record(rec(0, 0, 0.0, 10.0));
        t.record(rec(1, 1, 5.0, 10.0));
        let g = t.gantt(2, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("n0"));
        assert!(lines[0].contains("####"));
        // Node 1 is idle in the first half.
        let n1 = lines[1];
        let bar = &n1[n1.find('|').unwrap() + 1..n1.rfind('|').unwrap()];
        assert!(bar.starts_with(' '));
        assert!(bar.ends_with('#'));
    }

    #[test]
    fn to_events_carries_stalls_and_commits() {
        let mut t = ExecutionTrace::new();
        let mut r = rec(3, 1, 1.0, 4.0); // 0.1 s stall from rec()
        r.transfer_stall_s = 0.5;
        t.record(r);
        let events = t.to_events();
        assert_eq!(events.len(), 3, "transfer span + exec span + marker");
        match &events[0] {
            Event::Span {
                phase,
                start_us,
                dur_us,
                ..
            } => {
                assert_eq!(*phase, TaskPhase::Transferring);
                assert_eq!((*start_us, *dur_us), (1_000_000, 500_000));
            }
            other => panic!("expected transfer span, got {other:?}"),
        }
        match &events[2] {
            Event::Instant {
                phase,
                at_us,
                track,
                ..
            } => {
                assert_eq!(*phase, TaskPhase::Committed);
                assert_eq!(*at_us, 4_000_000);
                assert_eq!(*track, Track::Node(1));
            }
            other => panic!("expected commit marker, got {other:?}"),
        }
    }

    #[test]
    fn replays_render_differently() {
        let mut t = ExecutionTrace::new();
        let mut r = rec(0, 0, 0.0, 10.0);
        r.replay = true;
        t.record(r);
        assert!(t.gantt(1, 10).contains('r'));
        assert!(t.to_string().contains("(replay)"));
    }
}
