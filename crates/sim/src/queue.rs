//! Deterministic event queue over virtual time with stable FIFO
//! tie-breaking for simultaneous events.
//!
//! Two interchangeable backends sit behind one API:
//!
//! * **Calendar** (the default): a calendar-queue / timing-wheel hybrid.
//!   Near-future events land in a circular array of buckets of adaptive
//!   width (a bitmap tracks occupied buckets, so advancing over empty
//!   ones costs 1/64th of a scan); far-future events (fault injections,
//!   elastic ticks) wait in an overflow min-heap and are promoted into
//!   the wheel as the clock reaches them. Under the mostly-monotone
//!   event distribution a discrete-event engine produces, push and pop
//!   are O(1) amortized instead of the heap's O(log n).
//! * **Heap**: the original `BinaryHeap` — kept as the reference
//!   implementation the calendar backend is checked against (see
//!   `sim_bench --check` and the property tests below).
//!
//! Both order events by `(time, sequence-number)`, so any two backends
//! drain any push history in the identical order — simulations are
//! bit-for-bit deterministic regardless of backend.

use crate::time::VirtualTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapItem<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapItem<E> {}

impl<E> PartialOrd for HeapItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapItem<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; seq breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which backend an [`EventQueue`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventQueueKind {
    /// Calendar-queue / timing-wheel hybrid (O(1) amortized).
    #[default]
    Calendar,
    /// Binary-heap reference implementation (O(log n)).
    Heap,
}

/// Smallest bucket width the calendar will adapt down to.
const MIN_WIDTH: f64 = 1e-9;
/// Bucket-count bounds (both powers of two).
const MIN_SLOTS: usize = 64;
const MAX_SLOTS: usize = 1 << 20;

/// The calendar backend: a power-of-two circular bucket array covering
/// `[cursor, cursor + nslots)` absolute buckets of `width` virtual
/// seconds each, plus an overflow heap for everything beyond that
/// horizon.
///
/// Invariants:
/// * every wheel item `i` satisfies
///   `cursor <= bucket(i.time) < cursor + nslots` where
///   `bucket(t) = floor(t / width)` (saturating);
/// * `cursor == bucket(now)` — the cursor is *derived* from the clock
///   after each pop, never advanced speculatively, so late pushes at
///   `now` always land in a visible bucket;
/// * the overflow heap may hold events *earlier* than some wheel events
///   (bucket widths change over time), so every pop and peek compares
///   the wheel's minimum against the overflow minimum by `(time, seq)`.
struct Calendar<E> {
    slots: Vec<Vec<HeapItem<E>>>,
    /// One bit per slot; set iff the slot is non-empty.
    occupied: Vec<u64>,
    nslots: usize,
    width: f64,
    /// Absolute bucket index of the clock: `floor(now / width)`.
    cursor: u64,
    wheel_len: usize,
    overflow: BinaryHeap<HeapItem<E>>,
    /// Retune (re-estimate width, resize buckets) when the total count
    /// next crosses one of these thresholds.
    grow_at: usize,
    shrink_at: usize,
    /// Operations since the last retune; forces a periodic retune even
    /// at a steady population, so the bucket width tracks a drifting
    /// inter-event gap (a width estimated from the first events of a
    /// long run would otherwise persist forever).
    ops: usize,
    retune_every: usize,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            slots: (0..MIN_SLOTS).map(|_| Vec::new()).collect(),
            occupied: vec![0; MIN_SLOTS / 64],
            nslots: MIN_SLOTS,
            width: 1.0,
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            grow_at: MIN_SLOTS * 2,
            shrink_at: 0,
            ops: 0,
            retune_every: MIN_SLOTS * 8,
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    #[inline]
    fn bucket(&self, time: VirtualTime) -> u64 {
        // `as` saturates: astronomically far events all map to the last
        // bucket index and therefore to the overflow heap, which is
        // exactly where they belong.
        (time.as_seconds() / self.width) as u64
    }

    #[inline]
    fn horizon(&self) -> u64 {
        self.cursor.saturating_add(self.nslots as u64)
    }

    fn insert(&mut self, item: HeapItem<E>) {
        let bucket = self.bucket(item.time);
        debug_assert!(bucket >= self.cursor, "event behind the clock");
        if bucket >= self.horizon() {
            self.overflow.push(item);
        } else {
            let slot = (bucket & (self.nslots as u64 - 1)) as usize;
            self.slots[slot].push(item);
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.wheel_len += 1;
        }
    }

    fn push(&mut self, now: VirtualTime, item: HeapItem<E>) {
        self.insert(item);
        self.ops += 1;
        if self.len() >= self.grow_at || self.ops >= self.retune_every {
            self.retune(now);
        }
    }

    /// First occupied slot at or after the cursor's slot in circular
    /// order — i.e. the wheel's minimum absolute bucket. `None` when
    /// the wheel is empty.
    fn first_occupied(&self) -> Option<usize> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor & (self.nslots as u64 - 1)) as usize;
        let words = self.occupied.len();
        let (start_word, start_bit) = (start / 64, start % 64);
        // First partial word, then whole words wrapping around, then the
        // partial word again from the other side.
        let masked = self.occupied[start_word] & (!0u64 << start_bit);
        if masked != 0 {
            return Some(start_word * 64 + masked.trailing_zeros() as usize);
        }
        for i in 1..words {
            let w = (start_word + i) % words;
            if self.occupied[w] != 0 {
                return Some(w * 64 + self.occupied[w].trailing_zeros() as usize);
            }
        }
        let masked = self.occupied[start_word] & !(!0u64 << start_bit);
        if masked != 0 {
            return Some(start_word * 64 + masked.trailing_zeros() as usize);
        }
        None
    }

    /// Index of the `(time, seq)`-minimum within a slot's vector.
    fn slot_min(&self, slot: usize) -> usize {
        let v = &self.slots[slot];
        let mut best = 0;
        for (i, item) in v.iter().enumerate().skip(1) {
            if (item.time, item.seq) < (v[best].time, v[best].seq) {
                best = i;
            }
        }
        best
    }

    fn peek(&self) -> Option<(VirtualTime, u64)> {
        let wheel = self.first_occupied().map(|slot| {
            let i = self.slot_min(slot);
            let item = &self.slots[slot][i];
            (item.time, item.seq)
        });
        let over = self.overflow.peek().map(|i| (i.time, i.seq));
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    fn pop(&mut self) -> Option<HeapItem<E>> {
        let wheel_slot = self.first_occupied();
        let wheel_key = wheel_slot.map(|slot| {
            let i = self.slot_min(slot);
            let item = &self.slots[slot][i];
            ((item.time, item.seq), slot, i)
        });
        let over_key = self.overflow.peek().map(|i| (i.time, i.seq));
        let item = match (wheel_key, over_key) {
            (None, None) => return None,
            (Some((_, slot, i)), None) => self.take(slot, i),
            (None, Some(_)) => self.overflow.pop().expect("peeked"),
            (Some((wk, slot, i)), Some(ok)) => {
                if wk <= ok {
                    self.take(slot, i)
                } else {
                    self.overflow.pop().expect("peeked")
                }
            }
        };
        self.cursor = self.bucket(item.time);
        self.promote();
        self.ops += 1;
        if self.len() < self.shrink_at || self.ops >= self.retune_every {
            self.retune(item.time);
        }
        Some(item)
    }

    fn take(&mut self, slot: usize, i: usize) -> HeapItem<E> {
        let item = self.slots[slot].swap_remove(i);
        if self.slots[slot].is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.wheel_len -= 1;
        item
    }

    /// Pulls overflow events that have entered the horizon (the clock
    /// advanced toward them) into their buckets so the next stretch of
    /// pops runs at wheel speed. The cursor is *not* advanced here: it
    /// must stay `bucket(now)`, because later pushes are clamped only
    /// to `now` and a speculatively advanced cursor would leave their
    /// buckets behind the scan start. An overflow minimum still beyond
    /// the horizon simply keeps popping from the heap until the clock
    /// gets close enough.
    fn promote(&mut self) {
        let horizon = self.horizon();
        while let Some(top) = self.overflow.peek() {
            if self.bucket(top.time) >= horizon {
                break;
            }
            let item = self.overflow.pop().expect("peeked");
            let bucket = self.bucket(item.time);
            let slot = (bucket & (self.nslots as u64 - 1)) as usize;
            self.slots[slot].push(item);
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.wheel_len += 1;
        }
    }

    /// Re-estimates the bucket width from the current population,
    /// resizes the bucket array to ~1 event per bucket, and
    /// redistributes. Triggered when the population doubles or
    /// quarters, or every `retune_every` operations at a steady
    /// population, so its O(n) cost is amortized O(1) per operation —
    /// and it only ever changes *performance*: ordering is always by
    /// `(time, seq)`, so retuning never affects the schedule.
    fn retune(&mut self, now: VirtualTime) {
        let total = self.len();
        let mut items: Vec<HeapItem<E>> = Vec::with_capacity(total);
        for slot in &mut self.slots {
            items.append(slot);
        }
        items.extend(std::mem::take(&mut self.overflow));
        self.width = estimate_width(&items).unwrap_or(self.width);
        self.nslots = total.next_power_of_two().clamp(MIN_SLOTS, MAX_SLOTS);
        self.slots = (0..self.nslots).map(|_| Vec::new()).collect();
        self.occupied = vec![0; self.nslots / 64];
        self.wheel_len = 0;
        self.cursor = self.bucket(now);
        for item in items {
            self.insert(item);
        }
        self.grow_at = (total * 2).max(MIN_SLOTS * 2);
        self.shrink_at = total / 4;
        self.ops = 0;
        // The O(total + nslots) redistribution amortizes to O(1) per
        // operation against this period.
        self.retune_every = (total * 8).max(MIN_SLOTS * 8);
    }
}

/// Median inter-event gap of a deterministic sample — the bucket width
/// that puts roughly one event per bucket. `None` when there are not
/// enough distinct times to estimate (all-simultaneous populations keep
/// the previous width).
fn estimate_width<E>(items: &[HeapItem<E>]) -> Option<f64> {
    if items.len() < 2 {
        return None;
    }
    let stride = (items.len() / 256).max(1);
    let mut sample: Vec<VirtualTime> = items.iter().step_by(stride).map(|i| i.time).collect();
    sample.sort_unstable();
    let mut gaps: Vec<f64> = sample
        .windows(2)
        .map(|w| w[1].as_seconds() - w[0].as_seconds())
        .filter(|g| *g > 0.0)
        .collect();
    if gaps.is_empty() {
        return None;
    }
    gaps.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite gaps"));
    // The sample keeps every stride-th event, so the true per-event gap
    // is the sampled gap divided by the stride.
    Some((gaps[gaps.len() / 2] / stride as f64).max(MIN_WIDTH))
}

enum Backend<E> {
    Calendar(Calendar<E>),
    Heap(BinaryHeap<HeapItem<E>>),
}

/// A simulation event queue.
///
/// Events are popped in non-decreasing time order; events scheduled for
/// the same instant are popped in insertion order, making simulations
/// fully deterministic.
///
/// # Example
///
/// ```
/// use continuum_sim::{EventQueue, VirtualTime};
///
/// let mut q = EventQueue::new();
/// q.push(VirtualTime::from_seconds(2.0), "late");
/// q.push(VirtualTime::from_seconds(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    now: VirtualTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero on the default (calendar)
    /// backend.
    pub fn new() -> Self {
        EventQueue::with_kind(EventQueueKind::Calendar)
    }

    /// Creates an empty queue on the binary-heap reference backend.
    pub fn heap_reference() -> Self {
        EventQueue::with_kind(EventQueueKind::Heap)
    }

    /// Creates an empty queue on the chosen backend.
    pub fn with_kind(kind: EventQueueKind) -> Self {
        let backend = match kind {
            EventQueueKind::Calendar => Backend::Calendar(Calendar::new()),
            EventQueueKind::Heap => Backend::Heap(BinaryHeap::new()),
        };
        EventQueue {
            backend,
            seq: 0,
            now: VirtualTime::ZERO,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> EventQueueKind {
        match self.backend {
            Backend::Calendar(_) => EventQueueKind::Calendar,
            Backend::Heap(_) => EventQueueKind::Heap,
        }
    }

    /// Schedules an event. Events scheduled in the past are clamped to
    /// the current time (they fire "immediately").
    pub fn push(&mut self, time: VirtualTime, event: E) {
        let time = time.max(self.now);
        let item = HeapItem {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        match &mut self.backend {
            Backend::Calendar(c) => c.push(self.now, item),
            Backend::Heap(h) => h.push(item),
        }
    }

    /// Schedules an event `delay` seconds after the current time.
    pub fn push_after(&mut self, delay: f64, event: E) {
        self.push(self.now.after(delay), event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        let item = match &mut self.backend {
            Backend::Calendar(c) => c.pop()?,
            Backend::Heap(h) => h.pop()?,
        };
        self.now = item.time;
        Some((item.time, item.event))
    }

    /// The time of the next event without popping it.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        match &self.backend {
            Backend::Calendar(c) => c.peek().map(|(t, _)| t),
            Backend::Heap(h) => h.peek().map(|i| i.time),
        }
    }

    /// The current simulation clock (time of the last popped event).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.len(),
            Backend::Heap(h) => h.len(),
        }
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("kind", &self.kind())
            .field("pending", &self.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn both() -> [EventQueue<i32>; 2] {
        [EventQueue::new(), EventQueue::heap_reference()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(VirtualTime::from_seconds(3.0), 3);
            q.push(VirtualTime::from_seconds(1.0), 1);
            q.push(VirtualTime::from_seconds(2.0), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        }
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        for mut q in both() {
            let t = VirtualTime::from_seconds(1.0);
            for i in 0..10 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        }
    }

    /// The tie-break audit: the exact collision the engine produces — a
    /// fault injection, a task completion and a stream delivery landing
    /// on the same instant — drains in insertion order on both
    /// backends, interleaved with earlier/later events.
    #[test]
    fn colliding_fault_completion_stream_pop_in_insertion_order() {
        #[derive(Debug, PartialEq, Clone, Copy)]
        enum Ev {
            Fault,
            TaskDone,
            StreamSend,
            Earlier,
            Later,
        }
        let t = VirtualTime::from_seconds(42.0);
        for kind in [EventQueueKind::Calendar, EventQueueKind::Heap] {
            let mut q = EventQueue::with_kind(kind);
            q.push(VirtualTime::from_seconds(100.0), Ev::Later);
            q.push(t, Ev::Fault);
            q.push(t, Ev::TaskDone);
            q.push(VirtualTime::from_seconds(1.0), Ev::Earlier);
            q.push(t, Ev::StreamSend);
            let order: Vec<Ev> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(
                order,
                vec![
                    Ev::Earlier,
                    Ev::Fault,
                    Ev::TaskDone,
                    Ev::StreamSend,
                    Ev::Later
                ],
                "{kind:?} backend broke the (time, seq) order"
            );
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for mut q in both() {
            q.push(VirtualTime::from_seconds(5.0), 0);
            assert_eq!(q.now(), VirtualTime::ZERO);
            q.pop();
            assert_eq!(q.now().as_seconds(), 5.0);
        }
    }

    #[test]
    fn past_events_clamp_to_now() {
        for mut q in both() {
            q.push(VirtualTime::from_seconds(5.0), 0);
            q.pop();
            q.push(VirtualTime::from_seconds(1.0), 1);
            let (t, _) = q.pop().unwrap();
            assert_eq!(t.as_seconds(), 5.0, "cannot travel back in time");
        }
    }

    #[test]
    fn push_after_uses_current_clock() {
        for mut q in both() {
            q.push(VirtualTime::from_seconds(10.0), 0);
            q.pop();
            q.push_after(2.5, 1);
            let (t, _) = q.pop().unwrap();
            assert_eq!(t.as_seconds(), 12.5);
        }
    }

    #[test]
    fn len_and_peek() {
        for mut q in both() {
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(VirtualTime::from_seconds(1.0), 0);
            q.push(VirtualTime::from_seconds(0.5), 1);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time().unwrap().as_seconds(), 0.5);
        }
    }

    #[test]
    fn far_future_outliers_interleave_correctly() {
        // Fault-plan-style outliers orders of magnitude past the bulk:
        // they must surface exactly when the clock reaches them.
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_seconds(1e9), -1);
        q.push(VirtualTime::from_seconds(2e9), -2);
        for i in 0..1000 {
            q.push(VirtualTime::from_seconds(i as f64 * 0.25), i);
        }
        let mut popped = Vec::new();
        while let Some((_, e)) = q.pop() {
            popped.push(e);
        }
        let mut expect: Vec<i32> = (0..1000).collect();
        expect.push(-1);
        expect.push(-2);
        assert_eq!(popped, expect);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        // Mimics the engine: pop one, push a few completions relative
        // to the new clock, repeat. Checks against the heap reference.
        let mut cal = EventQueue::new();
        let mut heap = EventQueue::heap_reference();
        for q in [&mut cal, &mut heap] {
            for i in 0..64 {
                q.push(VirtualTime::from_seconds(i as f64), i);
            }
        }
        let mut step = 0u64;
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            let Some((_, e)) = a else { break };
            if step < 5000 {
                let d1 = (e % 7) as f64 * 1.5;
                let d2 = ((e % 3) as f64) * 400.0;
                cal.push_after(d1, e + 1000);
                heap.push_after(d1, e + 1000);
                if e % 5 == 0 {
                    cal.push_after(d2, e + 2000);
                    heap.push_after(d2, e + 2000);
                }
            }
            step += 1;
        }
        assert!(cal.is_empty() && heap.is_empty());
    }

    /// One scripted operation against both backends.
    #[derive(Debug, Clone)]
    enum Op {
        PushAbs(f64),
        PushAfter(f64),
        Pop,
    }

    fn run_ops(kind: EventQueueKind, ops: &[Op]) -> Vec<(VirtualTime, u32)> {
        let mut q = EventQueue::with_kind(kind);
        let mut tag = 0u32;
        let mut out = Vec::new();
        for op in ops {
            match op {
                Op::PushAbs(t) => {
                    q.push(VirtualTime::from_seconds(*t), tag);
                    tag += 1;
                }
                Op::PushAfter(d) => {
                    q.push_after(*d, tag);
                    tag += 1;
                }
                Op::Pop => {
                    if let Some(x) = q.pop() {
                        out.push(x);
                    }
                }
            }
        }
        while let Some(x) = q.pop() {
            out.push(x);
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Random interleavings of absolute pushes (with far-future
        /// outliers), relative `push_after` pushes and pops drain in an
        /// identical sequence from both backends.
        #[test]
        fn calendar_matches_heap_reference(
            ops in proptest::collection::vec(
                prop_oneof![
                    (0.0f64..100.0).prop_map(Op::PushAbs),
                    // Far-future outliers well past the overflow horizon.
                    (1e6f64..1e12).prop_map(Op::PushAbs),
                    (0.0f64..50.0).prop_map(Op::PushAfter),
                    Just(Op::Pop),
                ],
                1..200,
            ),
        ) {
            let cal = run_ops(EventQueueKind::Calendar, &ops);
            let heap = run_ops(EventQueueKind::Heap, &ops);
            prop_assert_eq!(cal, heap);
        }

        /// Heavy timestamp collisions (a handful of distinct instants)
        /// still drain FIFO-identically on both backends.
        #[test]
        fn colliding_timestamps_match_heap_reference(
            ops in proptest::collection::vec(
                prop_oneof![
                    (0u8..5).prop_map(|t| Op::PushAbs(t as f64)),
                    Just(Op::PushAfter(0.0)),
                    Just(Op::Pop),
                ],
                1..150,
            ),
        ) {
            let cal = run_ops(EventQueueKind::Calendar, &ops);
            let heap = run_ops(EventQueueKind::Heap, &ops);
            prop_assert_eq!(cal, heap);
        }
    }
}
