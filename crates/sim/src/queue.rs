//! Deterministic event queue: min-heap over virtual time with stable
//! FIFO tie-breaking for simultaneous events.

use crate::time::VirtualTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapItem<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapItem<E> {}

impl<E> PartialOrd for HeapItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapItem<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; seq breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A simulation event queue.
///
/// Events are popped in non-decreasing time order; events scheduled for
/// the same instant are popped in insertion order, making simulations
/// fully deterministic.
///
/// # Example
///
/// ```
/// use continuum_sim::{EventQueue, VirtualTime};
///
/// let mut q = EventQueue::new();
/// q.push(VirtualTime::from_seconds(2.0), "late");
/// q.push(VirtualTime::from_seconds(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapItem<E>>,
    seq: u64,
    now: VirtualTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: VirtualTime::ZERO,
        }
    }

    /// Schedules an event. Events scheduled in the past are clamped to
    /// the current time (they fire "immediately").
    pub fn push(&mut self, time: VirtualTime, event: E) {
        let time = time.max(self.now);
        self.heap.push(HeapItem {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules an event `delay` seconds after the current time.
    pub fn push_after(&mut self, delay: f64, event: E) {
        self.push(self.now.after(delay), event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        let item = self.heap.pop()?;
        self.now = item.time;
        Some((item.time, item.event))
    }

    /// The time of the next event without popping it.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|i| i.time)
    }

    /// The current simulation clock (time of the last popped event).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_seconds(3.0), 3);
        q.push(VirtualTime::from_seconds(1.0), 1);
        q.push(VirtualTime::from_seconds(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = VirtualTime::from_seconds(1.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_seconds(5.0), ());
        assert_eq!(q.now(), VirtualTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_seconds(), 5.0);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_seconds(5.0), "a");
        q.pop();
        q.push(VirtualTime::from_seconds(1.0), "late-scheduled");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_seconds(), 5.0, "cannot travel back in time");
    }

    #[test]
    fn push_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::from_seconds(10.0), "first");
        q.pop();
        q.push_after(2.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_seconds(), 12.5);
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(VirtualTime::from_seconds(1.0), ());
        q.push(VirtualTime::from_seconds(0.5), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time().unwrap().as_seconds(), 0.5);
    }
}
