//! Discrete-event simulation toolkit for the `continuum` workflow
//! environment.
//!
//! The paper's experiments run on platforms we cannot access (the
//! MareNostrum supercomputer, clouds, fleets of fog devices), so the
//! runtime executes paper-scale workloads on a deterministic
//! discrete-event simulation of those platforms instead. This crate
//! provides the building blocks the simulated engine is assembled
//! from:
//!
//! * [`VirtualTime`] and [`EventQueue`] — a deterministic event queue
//!   with stable FIFO tie-breaking;
//! * [`NodeState`] — per-node core/memory occupancy with utilisation
//!   and energy integration over virtual time;
//! * [`TransferLedger`] — accounting of simulated data movements;
//! * [`FaultPlan`] — scheduled or stochastic node failures/recoveries
//!   (fog churn);
//! * [`RunReport`] — the metrics bundle every experiment prints.
//!
//! The engine loop itself lives in `continuum-runtime`, which combines
//! these primitives with a pluggable scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod node_state;
mod queue;
mod report;
mod time;
mod trace;
mod transfer;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use node_state::NodeState;
pub use queue::{EventQueue, EventQueueKind};
pub use report::{NodeUsage, RunReport};
pub use time::VirtualTime;
pub use trace::{ExecutionTrace, TraceRecord};
pub use transfer::{TransferLedger, TransferRecord};
