//! Synthetic scientific workloads calibrated to the applications the
//! paper reports on.
//!
//! * [`GwasWorkload`] — a GUIDANCE-like genome-wide association
//!   campaign: per-chromosome, per-chunk pipelines (filter → impute →
//!   association) with merge stages, lognormal task durations and the
//!   *variable memory* property the paper highlights (most tasks are
//!   light; a fraction needs most of a node's memory);
//! * [`NmmbWorkload`] — an NMMB-Monarch-like multi-day weather
//!   pipeline: per-day initialisation scripts (sequential in the
//!   original, parallelised in the PyCOMPSs port), one rigid
//!   multi-node MPI simulation, post-processing and archiving, with a
//!   day-to-day restart dependency;
//! * [`patterns`] — generic DAG shapes (embarrassingly parallel,
//!   map-reduce, chains, fork-join ensembles, random layered DAGs)
//!   used by tests and micro-benchmarks;
//! * [`parse_wdl`]/[`to_wdl`] — a textual workflow description
//!   language (the Pegasus-style modality of the paper's taxonomy),
//!   round-tripping with [`continuum_runtime::SimWorkload`].
//!
//! All generators are deterministic for a given seed and produce
//! [`continuum_runtime::SimWorkload`] values ready for the simulated
//! engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gwas;
mod nmmb;
pub mod patterns;
mod rng;
mod wdl;

pub use gwas::{GwasSource, GwasWorkload};
pub use nmmb::NmmbWorkload;
pub use rng::LogNormal;
pub use wdl::{parse_wdl, to_wdl, WdlError};
