//! Generic DAG patterns for tests, micro-benchmarks and ablations.

use continuum_dag::TaskSpec;
use continuum_runtime::{SimWorkload, TaskProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` independent tasks of `duration_s` each.
pub fn embarrassingly_parallel(n: usize, duration_s: f64) -> SimWorkload {
    let mut w = SimWorkload::new();
    let outs = w.data_batch("ep_out", n);
    for o in &outs {
        w.task(
            TaskSpec::new("work").output(*o),
            TaskProfile::new(duration_s),
        )
        .expect("valid pattern task");
    }
    w
}

/// `mappers` parallel map tasks feeding one reduce; each map output is
/// `bytes` large (for locality/transfer experiments).
pub fn map_reduce(mappers: usize, map_s: f64, reduce_s: f64, bytes: u64) -> SimWorkload {
    let mut w = SimWorkload::new();
    let outs = w.data_batch("map_out", mappers);
    let result = w.data("reduced");
    for o in &outs {
        w.task(
            TaskSpec::new("map").output(*o),
            TaskProfile::new(map_s).outputs_bytes(bytes),
        )
        .expect("valid pattern task");
    }
    w.task(
        TaskSpec::new("reduce").inputs(outs).output(result),
        TaskProfile::new(reduce_s),
    )
    .expect("valid pattern task");
    w
}

/// A chain of `n` tasks, each depending on the previous.
pub fn chain(n: usize, duration_s: f64) -> SimWorkload {
    let mut w = SimWorkload::new();
    let d = w.data("chain");
    w.task(
        TaskSpec::new("stage0").output(d),
        TaskProfile::new(duration_s),
    )
    .expect("valid pattern task");
    for i in 1..n {
        w.task(
            TaskSpec::new(format!("stage{i}")).inout(d),
            TaskProfile::new(duration_s),
        )
        .expect("valid pattern task");
    }
    w
}

/// `ensembles` independent fork-join pipelines: fork into `width`
/// branches of `depth` stages, then join.
pub fn fork_join(ensembles: usize, width: usize, depth: usize, duration_s: f64) -> SimWorkload {
    let mut w = SimWorkload::new();
    for e in 0..ensembles {
        let root = w.data(format!("fj{e}_root"));
        w.task(
            TaskSpec::new("fork").group(format!("ens{e}")).output(root),
            TaskProfile::new(duration_s),
        )
        .expect("valid pattern task");
        let mut lasts = Vec::with_capacity(width);
        for b in 0..width {
            let mut prev = root;
            for s in 0..depth {
                let next = w.data(format!("fj{e}_b{b}_s{s}"));
                w.task(
                    TaskSpec::new("branch")
                        .group(format!("ens{e}"))
                        .input(prev)
                        .output(next),
                    TaskProfile::new(duration_s),
                )
                .expect("valid pattern task");
                prev = next;
            }
            lasts.push(prev);
        }
        let joined = w.data(format!("fj{e}_join"));
        w.task(
            TaskSpec::new("join")
                .group(format!("ens{e}"))
                .inputs(lasts)
                .output(joined),
            TaskProfile::new(duration_s),
        )
        .expect("valid pattern task");
    }
    w
}

/// A `rows × cols` stencil sweep: the task at `(r, c)` consumes the
/// outputs of its row-`r-1` neighbours `(c-1, c, c+1)` — the
/// NMMB-style halo-exchange shape that stresses multi-input locality
/// scoring, since every placement choice weighs three candidate
/// data-holding nodes.
pub fn stencil(rows: usize, cols: usize, duration_s: f64, bytes: u64) -> SimWorkload {
    assert!(rows > 0 && cols > 0, "empty stencil");
    let mut w = SimWorkload::new();
    let mut prev_row: Vec<continuum_dag::DataId> = Vec::new();
    for r in 0..rows {
        let mut this_row = Vec::with_capacity(cols);
        for c in 0..cols {
            let out = w.data(format!("st_r{r}_c{c}"));
            let mut spec = TaskSpec::new(format!("stencil_r{r}"))
                .group(format!("row{r}"))
                .output(out);
            if r > 0 {
                let lo = c.saturating_sub(1);
                let hi = (c + 1).min(cols - 1);
                for p in &prev_row[lo..=hi] {
                    spec = spec.input(*p);
                }
            }
            w.task(spec, TaskProfile::new(duration_s).outputs_bytes(bytes))
                .expect("valid pattern task");
            this_row.push(out);
        }
        prev_row = this_row;
    }
    w
}

/// A binary tree reduction over `leaves` inputs: the classic
/// Montage-style aggregation shape. Returns the workload; level 0 are
/// the leaf producers.
pub fn tree_reduce(leaves: usize, leaf_s: f64, merge_s: f64, bytes: u64) -> SimWorkload {
    assert!(leaves > 0, "need at least one leaf");
    let mut w = SimWorkload::new();
    let mut frontier: Vec<continuum_dag::DataId> = Vec::with_capacity(leaves);
    for i in 0..leaves {
        let out = w.data(format!("leaf{i}"));
        w.task(
            TaskSpec::new("produce").group("leaves").output(out),
            TaskProfile::new(leaf_s).outputs_bytes(bytes),
        )
        .expect("valid pattern task");
        frontier.push(out);
    }
    let mut level = 0;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        for (i, pair) in frontier.chunks(2).enumerate() {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let out = w.data(format!("merge_{level}_{i}"));
            w.task(
                TaskSpec::new("merge")
                    .group(format!("level{level}"))
                    .input(pair[0])
                    .input(pair[1])
                    .output(out),
                TaskProfile::new(merge_s).outputs_bytes(bytes),
            )
            .expect("valid pattern task");
            next.push(out);
        }
        frontier = next;
        level += 1;
    }
    w
}

/// A streaming pipeline: `batches` data batches arrive from an edge
/// source every `interval_s` seconds (modelled by a chain of tick
/// tasks, so batch `i` becomes available at `i × interval_s`); each
/// batch then flows through the given processing stages. Batch latency
/// (completion − arrival) is measurable from the execution trace.
///
/// The arrival process must be *open-loop*: if ticks shared cores with
/// the processing stages, back-pressure would throttle arrivals to the
/// service rate and hide saturation. Tick tasks therefore require the
/// `"edge-source"` software tag (run them on a dedicated sensor node),
/// and stage tasks require 1 GB of memory so they can never crowd onto
/// a tiny sensor device.
pub fn streaming_pipeline(
    batches: usize,
    interval_s: f64,
    stage_durations: &[f64],
    batch_bytes: u64,
) -> SimWorkload {
    assert!(batches > 0 && !stage_durations.is_empty(), "empty stream");
    let mut w = SimWorkload::new();
    let mut prev_tick: Option<continuum_dag::DataId> = None;
    for b in 0..batches {
        // The tick chain models the arrival process on the source
        // device: batch b's raw data exists at b × interval.
        let tick = w.data(format!("batch{b}"));
        let mut spec = TaskSpec::new("arrive").group("source").output(tick);
        if let Some(prev) = prev_tick {
            spec = spec.input(prev);
        }
        w.task(
            spec,
            TaskProfile::new(interval_s)
                .constraints(continuum_platform::Constraints::new().software("edge-source"))
                .outputs_bytes(batch_bytes),
        )
        .expect("valid pattern task");
        prev_tick = Some(tick);
        // Per-batch processing stages.
        let mut upstream = tick;
        for (s, dur) in stage_durations.iter().enumerate() {
            let out = w.data(format!("b{b}_s{s}"));
            w.task(
                TaskSpec::new(format!("stage{s}"))
                    .group(format!("batch{b}"))
                    .input(upstream)
                    .output(out),
                TaskProfile::new(*dur)
                    .constraints(continuum_platform::Constraints::new().memory_mb(1_000))
                    .outputs_bytes(batch_bytes / 2),
            )
            .expect("valid pattern task");
            upstream = out;
        }
    }
    w
}

/// The continuous-inference service of the hybrid-workflows extension:
/// sensor → featurize → model → sink, every edge a
/// [`Stream`](continuum_dag::Direction::Stream) channel, so each stage
/// is released at its upstream's *first element* and the whole service
/// runs as one overlapping pipeline instead of four serial phases.
///
/// The service is conceptually indefinite; `frames` bounds one
/// observation window so tests and benchmarks terminate (a deployment
/// re-submits windows back-to-back). Each stage takes `stage_s` for the
/// whole window and forwards `frames` elements of `frame_bytes`
/// downstream; the sink writes one versioned `report` consumed by the
/// client.
///
/// With `frames` elements per window, the streamed makespan approaches
/// `stage_s × (1 + 3/(frames+1))` — versus `4 × stage_s` for the batch
/// equivalent of the same DAG with completion edges.
pub fn continuous_inference(frames: u64, frame_bytes: u64, stage_s: f64) -> SimWorkload {
    assert!(stage_s > 0.0, "stages need a positive duration");
    let mut w = SimWorkload::new();
    let raw = w.data("ci_raw");
    let feats = w.data("ci_feats");
    let preds = w.data("ci_preds");
    let report = w.data("ci_report");
    w.task(
        TaskSpec::new("sensor").group("ci").stream_out(raw),
        TaskProfile::new(stage_s)
            .stream_elements(frames)
            .stream_element_bytes(frame_bytes),
    )
    .expect("valid pattern task");
    w.task(
        TaskSpec::new("featurize")
            .group("ci")
            .stream_in(raw)
            .stream_out(feats),
        TaskProfile::new(stage_s)
            .stream_elements(frames)
            .stream_element_bytes(frame_bytes / 4),
    )
    .expect("valid pattern task");
    w.task(
        TaskSpec::new("model")
            .group("ci")
            .stream_in(feats)
            .stream_out(preds),
        TaskProfile::new(stage_s)
            .stream_elements(frames)
            .stream_element_bytes(64),
    )
    .expect("valid pattern task");
    w.task(
        TaskSpec::new("sink")
            .group("ci")
            .stream_in(preds)
            .output(report),
        TaskProfile::new(stage_s).outputs_bytes(frames * 64),
    )
    .expect("valid pattern task");
    w
}

/// The batch rendition of [`continuous_inference`]: the same four
/// stages chained through versioned whole-window data, each stage
/// starting only at its predecessor's *completion*. The baseline for
/// the streamed/batch makespan comparison in `stream_bench`.
pub fn batch_inference(frames: u64, frame_bytes: u64, stage_s: f64) -> SimWorkload {
    assert!(stage_s > 0.0, "stages need a positive duration");
    let mut w = SimWorkload::new();
    let raw = w.data("ci_raw");
    let feats = w.data("ci_feats");
    let preds = w.data("ci_preds");
    let report = w.data("ci_report");
    let window = frames * frame_bytes;
    w.task(
        TaskSpec::new("sensor").group("ci").output(raw),
        TaskProfile::new(stage_s).outputs_bytes(window),
    )
    .expect("valid pattern task");
    w.task(
        TaskSpec::new("featurize")
            .group("ci")
            .input(raw)
            .output(feats),
        TaskProfile::new(stage_s).outputs_bytes(window / 4),
    )
    .expect("valid pattern task");
    w.task(
        TaskSpec::new("model")
            .group("ci")
            .input(feats)
            .output(preds),
        TaskProfile::new(stage_s).outputs_bytes(frames * 64),
    )
    .expect("valid pattern task");
    w.task(
        TaskSpec::new("sink")
            .group("ci")
            .input(preds)
            .output(report),
        TaskProfile::new(stage_s).outputs_bytes(frames * 64),
    )
    .expect("valid pattern task");
    w
}

/// A random layered DAG: `layers` levels of `width` tasks; each task
/// reads each task of the previous layer with probability `p_edge`.
/// Durations are uniform in `[min_s, max_s]`. Deterministic per seed.
pub fn random_layered(
    seed: u64,
    layers: usize,
    width: usize,
    p_edge: f64,
    min_s: f64,
    max_s: f64,
) -> SimWorkload {
    assert!(layers > 0 && width > 0, "empty dag");
    assert!(max_s >= min_s && min_s >= 0.0, "bad duration range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = SimWorkload::new();
    let mut prev_layer: Vec<continuum_dag::DataId> = Vec::new();
    for layer in 0..layers {
        let mut this_layer = Vec::with_capacity(width);
        for i in 0..width {
            let out = w.data(format!("l{layer}_t{i}"));
            let mut spec = TaskSpec::new(format!("task_l{layer}"))
                .group(format!("layer{layer}"))
                .output(out);
            let mut has_input = false;
            for p in &prev_layer {
                if rng.gen::<f64>() < p_edge {
                    spec = spec.input(*p);
                    has_input = true;
                }
            }
            // Guarantee connectivity below the first layer.
            if layer > 0 && !has_input {
                let pick = prev_layer[rng.gen_range(0..prev_layer.len())];
                spec = spec.input(pick);
            }
            let duration = min_s + rng.gen::<f64>() * (max_s - min_s);
            w.task(spec, TaskProfile::new(duration).outputs_bytes(1_000_000))
                .expect("valid pattern task");
            this_layer.push(out);
        }
        prev_layer = this_layer;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_shape() {
        let w = embarrassingly_parallel(10, 2.0);
        let s = w.stats();
        assert_eq!(s.tasks, 10);
        assert_eq!(s.edges, 0);
        assert!((s.critical_path_s - 2.0).abs() < 1e-9);
        assert!((s.average_parallelism - 10.0).abs() < 1e-9);
    }

    #[test]
    fn map_reduce_shape() {
        let w = map_reduce(8, 5.0, 3.0, 100);
        let s = w.stats();
        assert_eq!(s.tasks, 9);
        assert_eq!(s.edges, 8);
        assert!((s.critical_path_s - 8.0).abs() < 1e-9);
    }

    #[test]
    fn chain_shape() {
        let w = chain(6, 1.0);
        let s = w.stats();
        assert_eq!(s.tasks, 6);
        assert_eq!(s.edges, 5);
        assert!((s.average_parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_shape() {
        let w = fork_join(2, 3, 2, 1.0);
        let s = w.stats();
        // Per ensemble: 1 fork + 3×2 branch + 1 join = 8.
        assert_eq!(s.tasks, 16);
        // Depth: fork + 2 stages + join = 4.
        assert!((s.critical_path_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stencil_shape() {
        let w = stencil(3, 4, 1.0, 100);
        let s = w.stats();
        assert_eq!(s.tasks, 12);
        // Depth: one task per row along any column.
        assert!((s.critical_path_s - 3.0).abs() < 1e-9);
        let g = w.graph();
        // Interior tasks below row 0 have exactly 3 predecessors,
        // column edges have 2.
        for (i, node) in g.nodes().enumerate() {
            let (r, c) = (i / 4, i % 4);
            let expect = if r == 0 {
                0
            } else if c == 0 || c == 3 {
                2
            } else {
                3
            };
            assert_eq!(node.predecessors().len(), expect, "task ({r},{c})");
        }
    }

    #[test]
    fn tree_reduce_shape() {
        let w = tree_reduce(8, 2.0, 1.0, 100);
        let s = w.stats();
        assert_eq!(s.tasks, 8 + 7, "n leaves need n-1 merges");
        // Depth: leaf + 3 merge levels.
        assert!((s.critical_path_s - (2.0 + 3.0)).abs() < 1e-9);
        // Odd leaf counts promote the straggler.
        let w = tree_reduce(5, 1.0, 1.0, 0);
        assert_eq!(w.stats().tasks, 5 + 4);
    }

    #[test]
    fn streaming_pipeline_arrivals_are_spaced() {
        let w = streaming_pipeline(4, 10.0, &[2.0, 3.0], 1000);
        let s = w.stats();
        assert_eq!(s.tasks, 4 * 3);
        // Critical path: 4 ticks then the last batch's two stages.
        assert!((s.critical_path_s - (40.0 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn continuous_inference_is_a_stream_chain() {
        let w = continuous_inference(32, 4_096, 10.0);
        let s = w.stats();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 0, "no completion edges between the stages");
        assert_eq!(w.graph().stream_edge_count(), 3);
        assert_eq!(
            w.profile(continuum_dag::TaskId::from_raw(0))
                .stream_elements_count(),
            32
        );
        let b = batch_inference(32, 4_096, 10.0);
        assert_eq!(b.stats().edges, 3, "batch rendition uses completion edges");
        assert_eq!(b.graph().stream_edge_count(), 0);
        assert!((b.stats().critical_path_s - 40.0).abs() < 1e-9);
    }

    #[test]
    fn streamed_window_overlaps_batch_serialises() {
        use continuum_platform::{NodeSpec, PlatformBuilder};
        use continuum_runtime::{FifoScheduler, SimOptions, SimRuntime};
        use continuum_sim::FaultPlan;
        let platform = || {
            PlatformBuilder::new()
                .cluster("c", 2, NodeSpec::hpc(4, 96_000))
                .build()
        };
        let streamed = SimRuntime::new(platform(), SimOptions::default())
            .run(
                &continuous_inference(32, 4_096, 10.0),
                &mut FifoScheduler::new(),
                &FaultPlan::new(),
            )
            .unwrap();
        let batch = SimRuntime::new(platform(), SimOptions::default())
            .run(
                &batch_inference(32, 4_096, 10.0),
                &mut FifoScheduler::new(),
                &FaultPlan::new(),
            )
            .unwrap();
        assert!(
            streamed.makespan_s < batch.makespan_s,
            "streamed {} !< batch {}",
            streamed.makespan_s,
            batch.makespan_s
        );
        // Four 10 s stages: batch ≥ 40 s; streamed ≈ 10.9 s.
        assert!(streamed.makespan_s < 12.0, "{}", streamed.makespan_s);
    }

    #[test]
    fn random_layered_is_connected_and_deterministic() {
        let a = random_layered(5, 4, 6, 0.3, 1.0, 10.0);
        let b = random_layered(5, 4, 6, 0.3, 1.0, 10.0);
        assert_eq!(a.stats(), b.stats());
        let g = a.graph();
        // Every non-first-layer task has at least one predecessor.
        for node in g.nodes().skip(6) {
            assert!(
                !node.predecessors().is_empty(),
                "task {} disconnected",
                node.id()
            );
        }
        assert_eq!(g.len(), 24);
    }

    #[test]
    fn random_layered_durations_in_range() {
        let w = random_layered(9, 3, 5, 0.5, 2.0, 4.0);
        for t in 0..w.stats().tasks {
            let d = w
                .profile(continuum_dag::TaskId::from_raw(t as u64))
                .duration_s();
            assert!((2.0..=4.0).contains(&d));
        }
    }
}
