//! Generic DAG patterns for tests, micro-benchmarks and ablations.

use continuum_dag::TaskSpec;
use continuum_runtime::{SimWorkload, TaskProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` independent tasks of `duration_s` each.
pub fn embarrassingly_parallel(n: usize, duration_s: f64) -> SimWorkload {
    let mut w = SimWorkload::new();
    let outs = w.data_batch("ep_out", n);
    for o in &outs {
        w.task(
            TaskSpec::new("work").output(*o),
            TaskProfile::new(duration_s),
        )
        .expect("valid pattern task");
    }
    w
}

/// `mappers` parallel map tasks feeding one reduce; each map output is
/// `bytes` large (for locality/transfer experiments).
pub fn map_reduce(mappers: usize, map_s: f64, reduce_s: f64, bytes: u64) -> SimWorkload {
    let mut w = SimWorkload::new();
    let outs = w.data_batch("map_out", mappers);
    let result = w.data("reduced");
    for o in &outs {
        w.task(
            TaskSpec::new("map").output(*o),
            TaskProfile::new(map_s).outputs_bytes(bytes),
        )
        .expect("valid pattern task");
    }
    w.task(
        TaskSpec::new("reduce").inputs(outs).output(result),
        TaskProfile::new(reduce_s),
    )
    .expect("valid pattern task");
    w
}

/// A chain of `n` tasks, each depending on the previous.
pub fn chain(n: usize, duration_s: f64) -> SimWorkload {
    let mut w = SimWorkload::new();
    let d = w.data("chain");
    w.task(
        TaskSpec::new("stage0").output(d),
        TaskProfile::new(duration_s),
    )
    .expect("valid pattern task");
    for i in 1..n {
        w.task(
            TaskSpec::new(format!("stage{i}")).inout(d),
            TaskProfile::new(duration_s),
        )
        .expect("valid pattern task");
    }
    w
}

/// `ensembles` independent fork-join pipelines: fork into `width`
/// branches of `depth` stages, then join.
pub fn fork_join(ensembles: usize, width: usize, depth: usize, duration_s: f64) -> SimWorkload {
    let mut w = SimWorkload::new();
    for e in 0..ensembles {
        let root = w.data(format!("fj{e}_root"));
        w.task(
            TaskSpec::new("fork").group(format!("ens{e}")).output(root),
            TaskProfile::new(duration_s),
        )
        .expect("valid pattern task");
        let mut lasts = Vec::with_capacity(width);
        for b in 0..width {
            let mut prev = root;
            for s in 0..depth {
                let next = w.data(format!("fj{e}_b{b}_s{s}"));
                w.task(
                    TaskSpec::new("branch")
                        .group(format!("ens{e}"))
                        .input(prev)
                        .output(next),
                    TaskProfile::new(duration_s),
                )
                .expect("valid pattern task");
                prev = next;
            }
            lasts.push(prev);
        }
        let joined = w.data(format!("fj{e}_join"));
        w.task(
            TaskSpec::new("join")
                .group(format!("ens{e}"))
                .inputs(lasts)
                .output(joined),
            TaskProfile::new(duration_s),
        )
        .expect("valid pattern task");
    }
    w
}

/// A `rows × cols` stencil sweep: the task at `(r, c)` consumes the
/// outputs of its row-`r-1` neighbours `(c-1, c, c+1)` — the
/// NMMB-style halo-exchange shape that stresses multi-input locality
/// scoring, since every placement choice weighs three candidate
/// data-holding nodes.
pub fn stencil(rows: usize, cols: usize, duration_s: f64, bytes: u64) -> SimWorkload {
    assert!(rows > 0 && cols > 0, "empty stencil");
    let mut w = SimWorkload::new();
    let mut prev_row: Vec<continuum_dag::DataId> = Vec::new();
    for r in 0..rows {
        let mut this_row = Vec::with_capacity(cols);
        for c in 0..cols {
            let out = w.data(format!("st_r{r}_c{c}"));
            let mut spec = TaskSpec::new(format!("stencil_r{r}"))
                .group(format!("row{r}"))
                .output(out);
            if r > 0 {
                let lo = c.saturating_sub(1);
                let hi = (c + 1).min(cols - 1);
                for p in &prev_row[lo..=hi] {
                    spec = spec.input(*p);
                }
            }
            w.task(spec, TaskProfile::new(duration_s).outputs_bytes(bytes))
                .expect("valid pattern task");
            this_row.push(out);
        }
        prev_row = this_row;
    }
    w
}

/// A binary tree reduction over `leaves` inputs: the classic
/// Montage-style aggregation shape. Returns the workload; level 0 are
/// the leaf producers.
pub fn tree_reduce(leaves: usize, leaf_s: f64, merge_s: f64, bytes: u64) -> SimWorkload {
    assert!(leaves > 0, "need at least one leaf");
    let mut w = SimWorkload::new();
    let mut frontier: Vec<continuum_dag::DataId> = Vec::with_capacity(leaves);
    for i in 0..leaves {
        let out = w.data(format!("leaf{i}"));
        w.task(
            TaskSpec::new("produce").group("leaves").output(out),
            TaskProfile::new(leaf_s).outputs_bytes(bytes),
        )
        .expect("valid pattern task");
        frontier.push(out);
    }
    let mut level = 0;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        for (i, pair) in frontier.chunks(2).enumerate() {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let out = w.data(format!("merge_{level}_{i}"));
            w.task(
                TaskSpec::new("merge")
                    .group(format!("level{level}"))
                    .input(pair[0])
                    .input(pair[1])
                    .output(out),
                TaskProfile::new(merge_s).outputs_bytes(bytes),
            )
            .expect("valid pattern task");
            next.push(out);
        }
        frontier = next;
        level += 1;
    }
    w
}

/// A streaming pipeline: `batches` data batches arrive from an edge
/// source every `interval_s` seconds (modelled by a chain of tick
/// tasks, so batch `i` becomes available at `i × interval_s`); each
/// batch then flows through the given processing stages. Batch latency
/// (completion − arrival) is measurable from the execution trace.
///
/// The arrival process must be *open-loop*: if ticks shared cores with
/// the processing stages, back-pressure would throttle arrivals to the
/// service rate and hide saturation. Tick tasks therefore require the
/// `"edge-source"` software tag (run them on a dedicated sensor node),
/// and stage tasks require 1 GB of memory so they can never crowd onto
/// a tiny sensor device.
pub fn streaming_pipeline(
    batches: usize,
    interval_s: f64,
    stage_durations: &[f64],
    batch_bytes: u64,
) -> SimWorkload {
    assert!(batches > 0 && !stage_durations.is_empty(), "empty stream");
    let mut w = SimWorkload::new();
    let mut prev_tick: Option<continuum_dag::DataId> = None;
    for b in 0..batches {
        // The tick chain models the arrival process on the source
        // device: batch b's raw data exists at b × interval.
        let tick = w.data(format!("batch{b}"));
        let mut spec = TaskSpec::new("arrive").group("source").output(tick);
        if let Some(prev) = prev_tick {
            spec = spec.input(prev);
        }
        w.task(
            spec,
            TaskProfile::new(interval_s)
                .constraints(continuum_platform::Constraints::new().software("edge-source"))
                .outputs_bytes(batch_bytes),
        )
        .expect("valid pattern task");
        prev_tick = Some(tick);
        // Per-batch processing stages.
        let mut upstream = tick;
        for (s, dur) in stage_durations.iter().enumerate() {
            let out = w.data(format!("b{b}_s{s}"));
            w.task(
                TaskSpec::new(format!("stage{s}"))
                    .group(format!("batch{b}"))
                    .input(upstream)
                    .output(out),
                TaskProfile::new(*dur)
                    .constraints(continuum_platform::Constraints::new().memory_mb(1_000))
                    .outputs_bytes(batch_bytes / 2),
            )
            .expect("valid pattern task");
            upstream = out;
        }
    }
    w
}

/// A random layered DAG: `layers` levels of `width` tasks; each task
/// reads each task of the previous layer with probability `p_edge`.
/// Durations are uniform in `[min_s, max_s]`. Deterministic per seed.
pub fn random_layered(
    seed: u64,
    layers: usize,
    width: usize,
    p_edge: f64,
    min_s: f64,
    max_s: f64,
) -> SimWorkload {
    assert!(layers > 0 && width > 0, "empty dag");
    assert!(max_s >= min_s && min_s >= 0.0, "bad duration range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = SimWorkload::new();
    let mut prev_layer: Vec<continuum_dag::DataId> = Vec::new();
    for layer in 0..layers {
        let mut this_layer = Vec::with_capacity(width);
        for i in 0..width {
            let out = w.data(format!("l{layer}_t{i}"));
            let mut spec = TaskSpec::new(format!("task_l{layer}"))
                .group(format!("layer{layer}"))
                .output(out);
            let mut has_input = false;
            for p in &prev_layer {
                if rng.gen::<f64>() < p_edge {
                    spec = spec.input(*p);
                    has_input = true;
                }
            }
            // Guarantee connectivity below the first layer.
            if layer > 0 && !has_input {
                let pick = prev_layer[rng.gen_range(0..prev_layer.len())];
                spec = spec.input(pick);
            }
            let duration = min_s + rng.gen::<f64>() * (max_s - min_s);
            w.task(spec, TaskProfile::new(duration).outputs_bytes(1_000_000))
                .expect("valid pattern task");
            this_layer.push(out);
        }
        prev_layer = this_layer;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_shape() {
        let w = embarrassingly_parallel(10, 2.0);
        let s = w.stats();
        assert_eq!(s.tasks, 10);
        assert_eq!(s.edges, 0);
        assert!((s.critical_path_s - 2.0).abs() < 1e-9);
        assert!((s.average_parallelism - 10.0).abs() < 1e-9);
    }

    #[test]
    fn map_reduce_shape() {
        let w = map_reduce(8, 5.0, 3.0, 100);
        let s = w.stats();
        assert_eq!(s.tasks, 9);
        assert_eq!(s.edges, 8);
        assert!((s.critical_path_s - 8.0).abs() < 1e-9);
    }

    #[test]
    fn chain_shape() {
        let w = chain(6, 1.0);
        let s = w.stats();
        assert_eq!(s.tasks, 6);
        assert_eq!(s.edges, 5);
        assert!((s.average_parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_shape() {
        let w = fork_join(2, 3, 2, 1.0);
        let s = w.stats();
        // Per ensemble: 1 fork + 3×2 branch + 1 join = 8.
        assert_eq!(s.tasks, 16);
        // Depth: fork + 2 stages + join = 4.
        assert!((s.critical_path_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stencil_shape() {
        let w = stencil(3, 4, 1.0, 100);
        let s = w.stats();
        assert_eq!(s.tasks, 12);
        // Depth: one task per row along any column.
        assert!((s.critical_path_s - 3.0).abs() < 1e-9);
        let g = w.graph();
        // Interior tasks below row 0 have exactly 3 predecessors,
        // column edges have 2.
        for (i, node) in g.nodes().enumerate() {
            let (r, c) = (i / 4, i % 4);
            let expect = if r == 0 {
                0
            } else if c == 0 || c == 3 {
                2
            } else {
                3
            };
            assert_eq!(node.predecessors().len(), expect, "task ({r},{c})");
        }
    }

    #[test]
    fn tree_reduce_shape() {
        let w = tree_reduce(8, 2.0, 1.0, 100);
        let s = w.stats();
        assert_eq!(s.tasks, 8 + 7, "n leaves need n-1 merges");
        // Depth: leaf + 3 merge levels.
        assert!((s.critical_path_s - (2.0 + 3.0)).abs() < 1e-9);
        // Odd leaf counts promote the straggler.
        let w = tree_reduce(5, 1.0, 1.0, 0);
        assert_eq!(w.stats().tasks, 5 + 4);
    }

    #[test]
    fn streaming_pipeline_arrivals_are_spaced() {
        let w = streaming_pipeline(4, 10.0, &[2.0, 3.0], 1000);
        let s = w.stats();
        assert_eq!(s.tasks, 4 * 3);
        // Critical path: 4 ticks then the last batch's two stages.
        assert!((s.critical_path_s - (40.0 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn random_layered_is_connected_and_deterministic() {
        let a = random_layered(5, 4, 6, 0.3, 1.0, 10.0);
        let b = random_layered(5, 4, 6, 0.3, 1.0, 10.0);
        assert_eq!(a.stats(), b.stats());
        let g = a.graph();
        // Every non-first-layer task has at least one predecessor.
        for node in g.nodes().skip(6) {
            assert!(
                !node.predecessors().is_empty(),
                "task {} disconnected",
                node.id()
            );
        }
        assert_eq!(g.len(), 24);
    }

    #[test]
    fn random_layered_durations_in_range() {
        let w = random_layered(9, 3, 5, 0.5, 2.0, 4.0);
        for t in 0..w.stats().tasks {
            let d = w
                .profile(continuum_dag::TaskId::from_raw(t as u64))
                .duration_s();
            assert!((2.0..=4.0).contains(&d));
        }
    }
}
