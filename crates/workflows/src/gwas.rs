//! GUIDANCE-like GWAS campaign generator.
//!
//! The paper (§VI-A) describes GUIDANCE: a COMPSs application
//! orchestrating external binaries over 120 000 files, generating
//! 1–3 million tasks, whose binaries need a *variable amount of
//! memory*; declaring per-task memory constraints instead of sizing
//! every task for the worst case — combined with asynchronous
//! dataflow execution — cut execution time by ~50% on MareNostrum.
//!
//! The generator reproduces that structure: per chromosome, per chunk,
//! a filter → impute → association pipeline; per-chromosome merges and
//! a final campaign merge. Durations are lognormal; memory demand is
//! bimodal (a small fraction of imputations needs most of a node).

use crate::rng::LogNormal;
use continuum_dag::{DagError, DataId, ExpandSink, GraphSource, TaskId, TaskSpec};
use continuum_platform::Constraints;
use continuum_runtime::{SimWorkload, TaskProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Builder for GWAS campaign workloads.
///
/// # Example
///
/// ```
/// use continuum_workflows::GwasWorkload;
///
/// let w = GwasWorkload::new().chromosomes(4).chunks_per_chromosome(8).build();
/// // 4 × 8 × (filter+impute+assoc) + 4 merges + 1 final merge.
/// assert_eq!(w.stats().tasks, 4 * 8 * 3 + 4 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct GwasWorkload {
    chromosomes: usize,
    chunks: usize,
    seed: u64,
    mean_task_s: f64,
    duration_cv: f64,
    heavy_fraction: f64,
    light_memory_mb: u64,
    heavy_memory_mb: u64,
    worst_case_memory: bool,
    chunk_bytes: u64,
}

impl Default for GwasWorkload {
    fn default() -> Self {
        GwasWorkload {
            chromosomes: 22,
            chunks: 24,
            seed: 0,
            mean_task_s: 120.0,
            duration_cv: 0.6,
            heavy_fraction: 0.15,
            light_memory_mb: 4_000,
            heavy_memory_mb: 56_000,
            worst_case_memory: false,
            chunk_bytes: 40_000_000,
        }
    }
}

impl GwasWorkload {
    /// Creates the default campaign (22 chromosomes × 24 chunks —
    /// about 1 600 tasks; scale `chunks_per_chromosome` up for the
    /// paper's million-task campaigns).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of chromosomes.
    pub fn chromosomes(mut self, n: usize) -> Self {
        self.chromosomes = n.max(1);
        self
    }

    /// Chunks per chromosome.
    pub fn chunks_per_chromosome(mut self, n: usize) -> Self {
        self.chunks = n.max(1);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mean task duration in seconds.
    pub fn mean_task_s(mut self, s: f64) -> Self {
        self.mean_task_s = s;
        self
    }

    /// Coefficient of variation of task durations.
    pub fn duration_cv(mut self, cv: f64) -> Self {
        self.duration_cv = cv;
        self
    }

    /// Fraction of imputation tasks needing the heavy memory budget.
    pub fn heavy_fraction(mut self, f: f64) -> Self {
        self.heavy_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Light/heavy memory budgets in MB.
    pub fn memory_mb(mut self, light: u64, heavy: u64) -> Self {
        self.light_memory_mb = light;
        self.heavy_memory_mb = heavy.max(light);
        self
    }

    /// Sizes **every** task for the worst-case memory (the static
    /// baseline the paper's 50% claim is measured against).
    pub fn worst_case_memory(mut self, on: bool) -> Self {
        self.worst_case_memory = on;
        self
    }

    /// Bytes per chunk file.
    pub fn chunk_bytes(mut self, bytes: u64) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Number of tasks the built workload will contain.
    pub fn task_count(&self) -> usize {
        self.chromosomes * self.chunks * 3 + self.chromosomes + 1
    }

    /// Generates the workload.
    pub fn build(&self) -> SimWorkload {
        let mut w = SimWorkload::new();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let durations = LogNormal::from_mean_cv(self.mean_task_s, self.duration_cv);
        let draw = |rng: &mut StdRng| durations.sample(rng).clamp(1.0, self.mean_task_s * 20.0);

        let memory_of = |heavy: bool, worst: bool| {
            if worst || heavy {
                self.heavy_memory_mb
            } else {
                self.light_memory_mb
            }
        };

        let final_out = w.data("campaign_summary");
        let mut chrom_outputs = Vec::with_capacity(self.chromosomes);
        for chrom in 0..self.chromosomes {
            let mut chunk_outputs = Vec::with_capacity(self.chunks);
            for chunk in 0..self.chunks {
                let tag = format!("c{chrom}_{chunk}");
                let raw = w.initial_data(format!("raw_{tag}"), self.chunk_bytes, None);
                let filtered = w.data(format!("filt_{tag}"));
                let imputed = w.data(format!("imp_{tag}"));
                let assoc = w.data(format!("assoc_{tag}"));

                w.task(
                    TaskSpec::new("filter")
                        .group("qc")
                        .input(raw)
                        .output(filtered),
                    TaskProfile::new(draw(&mut rng) * 0.3)
                        .constraints(
                            Constraints::new().memory_mb(memory_of(false, self.worst_case_memory)),
                        )
                        .outputs_bytes(self.chunk_bytes / 2),
                )
                .expect("valid gwas task");

                let heavy = rng.gen::<f64>() < self.heavy_fraction;
                w.task(
                    TaskSpec::new("impute")
                        .group("imputation")
                        .input(filtered)
                        .output(imputed),
                    TaskProfile::new(draw(&mut rng) * if heavy { 2.0 } else { 1.0 })
                        .constraints(
                            Constraints::new().memory_mb(memory_of(heavy, self.worst_case_memory)),
                        )
                        .outputs_bytes(self.chunk_bytes),
                )
                .expect("valid gwas task");

                w.task(
                    TaskSpec::new("association")
                        .group("analysis")
                        .input(imputed)
                        .output(assoc),
                    TaskProfile::new(draw(&mut rng) * 0.5)
                        .constraints(
                            Constraints::new().memory_mb(memory_of(false, self.worst_case_memory)),
                        )
                        .outputs_bytes(self.chunk_bytes / 10),
                )
                .expect("valid gwas task");
                chunk_outputs.push(assoc);
            }
            let merged = w.data(format!("chrom_merge_{chrom}"));
            w.task(
                TaskSpec::new("merge_chromosome")
                    .group("merge")
                    .inputs(chunk_outputs)
                    .output(merged),
                TaskProfile::new(draw(&mut rng) * 0.4)
                    .constraints(
                        Constraints::new().memory_mb(memory_of(false, self.worst_case_memory)),
                    )
                    .outputs_bytes(self.chunk_bytes / 5),
            )
            .expect("valid gwas task");
            chrom_outputs.push(merged);
        }
        w.task(
            TaskSpec::new("merge_campaign")
                .group("merge")
                .inputs(chrom_outputs)
                .output(final_out),
            TaskProfile::new(self.mean_task_s)
                .constraints(Constraints::new().memory_mb(memory_of(false, self.worst_case_memory)))
                .outputs_bytes(self.chunk_bytes),
        )
        .expect("valid gwas task");
        w
    }

    /// Lazy equivalent of [`GwasWorkload::build`]: a [`GraphSource`]
    /// that materializes `window` chunk pipelines ahead of the
    /// execution frontier instead of the whole campaign up front.
    ///
    /// Unlike [`GwasWorkload::build`] (one sequential RNG over the
    /// whole campaign), per-chunk cost draws are seeded from
    /// `(seed, chunk index)` so the generated profiles are a pure
    /// function of the campaign parameters — independent of the
    /// completion order that drives expansion.
    pub fn into_source(self, window: usize) -> GwasSource {
        GwasSource::new(self, window)
    }
}

/// Lazily-materialized GWAS campaign (see [`GwasWorkload::into_source`]).
///
/// Expansion protocol: `prime` emits the first `window` chunk
/// pipelines (filter → impute → association); every *association*
/// completion emits the next chunk pipeline. A chromosome's merge task
/// is emitted together with its last chunk, and the campaign merge
/// together with the last chromosome. Data are closed as soon as every
/// consumer is materialized, so the engine retires drained subgraphs
/// behind the frontier: resident state scales with
/// `window + chunks_per_chromosome`, not with the campaign size.
#[derive(Debug)]
pub struct GwasSource {
    cfg: GwasWorkload,
    window: usize,
    /// Next linear chunk index (chromosome-major) to materialize.
    next_chunk: usize,
    /// Association tasks emitted but not yet completed (bounded by the
    /// window plus in-flight work; membership identifies which
    /// completions advance the frontier).
    assoc_pending: HashSet<TaskId>,
    /// Association outputs of the chromosome currently materializing
    /// (drained into its merge when the last chunk is emitted).
    assoc_data: Vec<DataId>,
    /// Per-chromosome merge outputs (inputs of the campaign merge).
    chrom_merge_data: Vec<DataId>,
    final_out: Option<DataId>,
}

impl GwasSource {
    fn new(cfg: GwasWorkload, window: usize) -> Self {
        GwasSource {
            cfg,
            window: window.max(1),
            next_chunk: 0,
            assoc_pending: HashSet::new(),
            assoc_data: Vec::new(),
            chrom_merge_data: Vec::new(),
            final_out: None,
        }
    }

    /// The expansion window (chunk pipelines materialized ahead).
    pub fn window(&self) -> usize {
        self.window
    }

    fn total_chunks(&self) -> usize {
        self.cfg.chromosomes * self.cfg.chunks
    }

    /// Deterministic per-stream RNG: draws depend only on the campaign
    /// seed and the stream index, never on expansion order.
    fn stream_rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream),
        )
    }

    fn memory_of(&self, heavy: bool) -> u64 {
        if self.cfg.worst_case_memory || heavy {
            self.cfg.heavy_memory_mb
        } else {
            self.cfg.light_memory_mb
        }
    }

    /// Emits one chunk pipeline, plus the chromosome merge when this
    /// was the chromosome's last chunk and the campaign merge when it
    /// was the campaign's last chromosome.
    fn emit_chunk(&mut self, sink: &mut dyn ExpandSink<TaskProfile>) -> Result<(), DagError> {
        let cfg = self.cfg.clone();
        let linear = self.next_chunk;
        self.next_chunk += 1;
        let chrom = linear / cfg.chunks;
        let chunk = linear % cfg.chunks;
        let durations = LogNormal::from_mean_cv(cfg.mean_task_s, cfg.duration_cv);
        let mut rng = self.stream_rng(linear as u64);
        let draw = |rng: &mut StdRng| durations.sample(rng).clamp(1.0, cfg.mean_task_s * 20.0);

        let tag = format!("c{chrom}_{chunk}");
        let raw = sink.initial_data(&format!("raw_{tag}"), cfg.chunk_bytes);
        let filtered = sink.data(&format!("filt_{tag}"));
        let imputed = sink.data(&format!("imp_{tag}"));
        let assoc = sink.data(&format!("assoc_{tag}"));

        sink.submit(
            TaskSpec::new("filter")
                .group("qc")
                .input(raw)
                .output(filtered),
            TaskProfile::new(draw(&mut rng) * 0.3)
                .constraints(Constraints::new().memory_mb(self.memory_of(false)))
                .outputs_bytes(cfg.chunk_bytes / 2),
        )?;
        let heavy = rng.gen::<f64>() < cfg.heavy_fraction;
        sink.submit(
            TaskSpec::new("impute")
                .group("imputation")
                .input(filtered)
                .output(imputed),
            TaskProfile::new(draw(&mut rng) * if heavy { 2.0 } else { 1.0 })
                .constraints(Constraints::new().memory_mb(self.memory_of(heavy)))
                .outputs_bytes(cfg.chunk_bytes),
        )?;
        let assoc_task = sink.submit(
            TaskSpec::new("association")
                .group("analysis")
                .input(imputed)
                .output(assoc),
            TaskProfile::new(draw(&mut rng) * 0.5)
                .constraints(Constraints::new().memory_mb(self.memory_of(false)))
                .outputs_bytes(cfg.chunk_bytes / 10),
        )?;
        self.assoc_pending.insert(assoc_task);
        self.assoc_data.push(assoc);
        // Every consumer of the intra-chunk data now exists.
        sink.close_data(raw);
        sink.close_data(filtered);
        sink.close_data(imputed);

        if chunk + 1 == cfg.chunks {
            // Last chunk of the chromosome: its merge (and the
            // closure of every association output it consumes).
            let merged = sink.data(&format!("chrom_merge_{chrom}"));
            let mut merge_rng = self.stream_rng(self.total_chunks() as u64 + chrom as u64);
            let chunk_outputs = std::mem::take(&mut self.assoc_data);
            sink.submit(
                TaskSpec::new("merge_chromosome")
                    .group("merge")
                    .inputs(chunk_outputs.iter().copied())
                    .output(merged),
                TaskProfile::new(draw(&mut merge_rng) * 0.4)
                    .constraints(Constraints::new().memory_mb(self.memory_of(false)))
                    .outputs_bytes(cfg.chunk_bytes / 5),
            )?;
            for d in chunk_outputs {
                sink.close_data(d);
            }
            self.chrom_merge_data.push(merged);
        }
        if linear + 1 == self.total_chunks() {
            // Last chunk of the campaign: the final merge.
            let final_out = sink.data("campaign_summary");
            let chrom_outputs = std::mem::take(&mut self.chrom_merge_data);
            sink.submit(
                TaskSpec::new("merge_campaign")
                    .group("merge")
                    .inputs(chrom_outputs.iter().copied())
                    .output(final_out),
                TaskProfile::new(cfg.mean_task_s)
                    .constraints(Constraints::new().memory_mb(self.memory_of(false)))
                    .outputs_bytes(cfg.chunk_bytes),
            )?;
            for d in chrom_outputs {
                sink.close_data(d);
            }
            self.final_out = Some(final_out);
        }
        Ok(())
    }
}

impl GraphSource<TaskProfile> for GwasSource {
    fn prime(&mut self, sink: &mut dyn ExpandSink<TaskProfile>) -> Result<(), DagError> {
        let initial = self.window.min(self.total_chunks());
        for _ in 0..initial {
            self.emit_chunk(sink)?;
        }
        Ok(())
    }

    fn on_task_complete(
        &mut self,
        task: TaskId,
        sink: &mut dyn ExpandSink<TaskProfile>,
    ) -> Result<(), DagError> {
        if self.assoc_pending.remove(&task) && self.next_chunk < self.total_chunks() {
            self.emit_chunk(sink)?;
        }
        Ok(())
    }

    fn total_tasks(&self) -> Option<u64> {
        Some(self.cfg.task_count() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_formula() {
        let g = GwasWorkload::new().chromosomes(3).chunks_per_chromosome(5);
        let w = g.build();
        let stats = w.stats();
        assert_eq!(stats.tasks, g.task_count());
        assert_eq!(stats.tasks, 3 * 5 * 3 + 3 + 1);
        // Each chunk pipeline contributes 2 edges; merges add the rest.
        assert_eq!(stats.edges, 3 * 5 * 2 + 3 * 5 + 3);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = GwasWorkload::new()
            .chromosomes(2)
            .chunks_per_chromosome(3)
            .seed(5)
            .build();
        let b = GwasWorkload::new()
            .chromosomes(2)
            .chunks_per_chromosome(3)
            .seed(5)
            .build();
        assert_eq!(a.stats(), b.stats());
        for t in 0..a.stats().tasks {
            let id = continuum_dag::TaskId::from_raw(t as u64);
            assert_eq!(a.profile(id), b.profile(id));
        }
    }

    #[test]
    fn memory_is_bimodal_by_default() {
        let w = GwasWorkload::new()
            .chromosomes(4)
            .chunks_per_chromosome(16)
            .heavy_fraction(0.25)
            .seed(1)
            .build();
        let mut heavy = 0;
        let mut light = 0;
        for t in 0..w.stats().tasks {
            let p = w.profile(continuum_dag::TaskId::from_raw(t as u64));
            match p.constraints_ref().required_memory_mb() {
                56_000 => heavy += 1,
                4_000 => light += 1,
                other => panic!("unexpected memory {other}"),
            }
        }
        assert!(heavy > 0, "some heavy imputations must exist");
        assert!(light > 4 * heavy, "most tasks are light");
    }

    #[test]
    fn worst_case_memory_is_uniform() {
        let w = GwasWorkload::new()
            .chromosomes(2)
            .chunks_per_chromosome(4)
            .worst_case_memory(true)
            .build();
        for t in 0..w.stats().tasks {
            let p = w.profile(continuum_dag::TaskId::from_raw(t as u64));
            assert_eq!(p.constraints_ref().required_memory_mb(), 56_000);
        }
    }

    #[test]
    fn campaign_has_high_inherent_parallelism() {
        let w = GwasWorkload::new()
            .chromosomes(8)
            .chunks_per_chromosome(16)
            .build();
        let stats = w.stats();
        assert!(
            stats.average_parallelism > 10.0,
            "chunk pipelines are independent, got {}",
            stats.average_parallelism
        );
    }

    #[test]
    fn lazy_source_completes_with_bounded_residency() {
        use continuum_platform::{NodeSpec, PlatformBuilder};
        use continuum_runtime::{LocalityScheduler, SimOptions, SimRuntime};
        use continuum_sim::FaultPlan;

        let cfg = GwasWorkload::new()
            .chromosomes(3)
            .chunks_per_chromosome(8)
            .seed(7);
        let total = cfg.task_count();
        let platform = PlatformBuilder::new()
            .cluster("mn", 4, NodeSpec::hpc(8, 96_000))
            .build();
        let rt = SimRuntime::new(platform, SimOptions::default());
        let mut source = cfg.into_source(2);
        let out = rt
            .run_lazy(
                &mut source,
                &mut LocalityScheduler::new(),
                &FaultPlan::new(),
            )
            .unwrap();
        assert_eq!(out.total_tasks, total);
        assert_eq!(out.report.tasks_completed, total);
        // The frontier stays bounded by window + one chromosome of
        // association outputs, well under the whole campaign.
        assert!(
            out.peak_materialized_tasks < total / 2,
            "peak {} vs total {total}",
            out.peak_materialized_tasks
        );
        assert!(out.retired_tasks > total / 2);
        assert!(out.retired_values > 0);
    }

    #[test]
    fn lazy_source_identical_across_queue_backends() {
        use continuum_platform::{NodeSpec, PlatformBuilder};
        use continuum_runtime::{EventQueueKind, LocalityScheduler, SimOptions, SimRuntime};
        use continuum_sim::FaultPlan;

        let run_with = |kind: EventQueueKind| {
            let platform = PlatformBuilder::new()
                .cluster("mn", 4, NodeSpec::hpc(8, 96_000))
                .build();
            let opts = SimOptions {
                event_queue: kind,
                ..Default::default()
            };
            let rt = SimRuntime::new(platform, opts);
            let mut source = GwasWorkload::new()
                .chromosomes(2)
                .chunks_per_chromosome(6)
                .seed(11)
                .into_source(3);
            rt.run_lazy(
                &mut source,
                &mut LocalityScheduler::new(),
                &FaultPlan::new(),
            )
            .unwrap()
        };
        let cal = run_with(EventQueueKind::Calendar);
        let heap = run_with(EventQueueKind::Heap);
        assert_eq!(cal, heap);
    }

    #[test]
    fn durations_are_positive_and_varied() {
        let w = GwasWorkload::new()
            .chromosomes(2)
            .chunks_per_chromosome(8)
            .build();
        let durations: Vec<f64> = (0..w.stats().tasks)
            .map(|t| {
                w.profile(continuum_dag::TaskId::from_raw(t as u64))
                    .duration_s()
            })
            .collect();
        assert!(durations.iter().all(|d| *d >= 1.0));
        let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durations.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.5, "lognormal spread expected");
    }
}
