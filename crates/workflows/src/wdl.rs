//! A textual workflow description language.
//!
//! The paper surveys three ways to express workflows: graphically
//! (Kepler/Taverna), **textually** (Pegasus/ASKALON) and
//! programmatically (COMPSs). `continuum` is programmatic-first, but
//! this module adds the textual modality: a plain line-based format
//! that parses into a [`SimWorkload`] and can be regenerated from one,
//! so workflows can be stored, diffed and shared as files.
//!
//! # Format
//!
//! ```text
//! # comments and blank lines are ignored
//! data <name> size=<bytes|K|M|G> [home=<node-index>]
//! task <type> [in=<d1,d2,..>] [inout=<d,..>] out=<d,..> dur=<seconds>
//!      [mem=<bytes|K|M|G>] [cores=<n>] [nodes=<n>] [out_bytes=<..>]
//!      [group=<label>]
//! ```
//!
//! `data` lines declare initial (externally provided) inputs; every
//! other datum is declared implicitly by first use in a task line.

use continuum_dag::{DataId, TaskSpec};
use continuum_platform::{Constraints, NodeId};
use continuum_runtime::{SimWorkload, TaskProfile};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WdlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for WdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for WdlError {}

fn err(line: usize, message: impl Into<String>) -> WdlError {
    WdlError {
        line,
        message: message.into(),
    }
}

/// Parses a byte quantity with optional K/M/G suffix.
fn parse_bytes(s: &str, line: usize) -> Result<u64, WdlError> {
    let (digits, mult) = match s.chars().last() {
        Some('K') => (&s[..s.len() - 1], 1_000),
        Some('M') => (&s[..s.len() - 1], 1_000_000),
        Some('G') => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| err(line, format!("invalid byte quantity `{s}`")))
}

fn split_kv(token: &str, line: usize) -> Result<(&str, &str), WdlError> {
    token
        .split_once('=')
        .ok_or_else(|| err(line, format!("expected key=value, got `{token}`")))
}

/// Parses a workflow description into a [`SimWorkload`].
///
/// # Errors
///
/// Returns a [`WdlError`] naming the offending line for syntax errors,
/// unknown keys, duplicate data declarations or dependency-validation
/// failures.
///
/// # Example
///
/// ```
/// let text = "
/// data raw size=40M
/// task filter in=raw out=clean dur=12 mem=4G out_bytes=20M
/// task analyze in=clean out=stats dur=30 cores=4
/// ";
/// let w = continuum_workflows::parse_wdl(text)?;
/// assert_eq!(w.stats().tasks, 2);
/// assert_eq!(w.stats().edges, 1);
/// # Ok::<(), continuum_workflows::WdlError>(())
/// ```
pub fn parse_wdl(text: &str) -> Result<SimWorkload, WdlError> {
    let mut w = SimWorkload::new();
    let mut names: HashMap<String, DataId> = HashMap::new();

    let resolve = |w: &mut SimWorkload, names: &mut HashMap<String, DataId>, name: &str| {
        *names
            .entry(name.to_string())
            .or_insert_with(|| w.data(name))
    };

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("data") => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "data needs a name"))?;
                if names.contains_key(name) {
                    return Err(err(line_no, format!("datum `{name}` already declared")));
                }
                let mut size = 0u64;
                let mut home = None;
                for token in tokens {
                    let (k, v) = split_kv(token, line_no)?;
                    match k {
                        "size" => size = parse_bytes(v, line_no)?,
                        "home" => {
                            let n: u32 = v
                                .parse()
                                .map_err(|_| err(line_no, format!("invalid home `{v}`")))?;
                            home = Some(NodeId::from_raw(n));
                        }
                        other => return Err(err(line_no, format!("unknown data key `{other}`"))),
                    }
                }
                let id = w.initial_data(name, size, home);
                names.insert(name.to_string(), id);
            }
            Some("task") => {
                let ty = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "task needs a type name"))?;
                let mut spec = TaskSpec::new(ty);
                let mut dur = None;
                let mut constraints = Constraints::new();
                let mut out_bytes = 0u64;
                let mut n_outputs = 0usize;
                for token in tokens {
                    let (k, v) = split_kv(token, line_no)?;
                    match k {
                        "in" => {
                            for name in v.split(',').filter(|s| !s.is_empty()) {
                                let id = resolve(&mut w, &mut names, name);
                                spec = spec.input(id);
                            }
                        }
                        "inout" => {
                            for name in v.split(',').filter(|s| !s.is_empty()) {
                                let id = resolve(&mut w, &mut names, name);
                                spec = spec.inout(id);
                            }
                        }
                        "out" => {
                            for name in v.split(',').filter(|s| !s.is_empty()) {
                                let id = resolve(&mut w, &mut names, name);
                                spec = spec.output(id);
                                n_outputs += 1;
                            }
                        }
                        "dur" => {
                            dur =
                                Some(v.parse::<f64>().map_err(|_| {
                                    err(line_no, format!("invalid duration `{v}`"))
                                })?);
                        }
                        "mem" => {
                            constraints =
                                constraints.memory_mb(parse_bytes(v, line_no)? / 1_000_000)
                        }
                        "cores" => {
                            constraints = constraints.compute_units(
                                v.parse()
                                    .map_err(|_| err(line_no, format!("invalid cores `{v}`")))?,
                            )
                        }
                        "nodes" => {
                            constraints = constraints.nodes(
                                v.parse()
                                    .map_err(|_| err(line_no, format!("invalid nodes `{v}`")))?,
                            )
                        }
                        "gpus" => {
                            constraints = constraints.gpus(
                                v.parse()
                                    .map_err(|_| err(line_no, format!("invalid gpus `{v}`")))?,
                            )
                        }
                        "out_bytes" => out_bytes = parse_bytes(v, line_no)?,
                        "group" => spec = spec.group(v),
                        other => return Err(err(line_no, format!("unknown task key `{other}`"))),
                    }
                }
                let dur = dur.ok_or_else(|| err(line_no, "task needs dur=<seconds>"))?;
                let _ = n_outputs;
                let profile = TaskProfile::new(dur)
                    .constraints(constraints)
                    .outputs_bytes(out_bytes);
                w.task(spec, profile)
                    .map_err(|e| err(line_no, format!("invalid task: {e}")))?;
            }
            Some(other) => return Err(err(line_no, format!("unknown directive `{other}`"))),
            None => unreachable!("blank lines skipped"),
        }
    }
    Ok(w)
}

/// Serialises a workload back to the textual format. Data are written
/// with their registered names where unique; the output round-trips
/// through [`parse_wdl`] to a structurally identical workload.
pub fn to_wdl(w: &SimWorkload) -> String {
    let mut out = String::from("# continuum workflow description\n");
    // Initial data first.
    let mut initial: Vec<(DataId, u64, Option<NodeId>)> = w.initial_data_entries().collect();
    initial.sort_by_key(|(d, _, _)| *d);
    for (d, bytes, home) in initial {
        out.push_str(&format!("data d{} size={bytes}", d.as_u64()));
        if let Some(h) = home {
            out.push_str(&format!(" home={}", h.index()));
        }
        out.push('\n');
    }
    for node in w.graph().nodes() {
        let spec = node.spec();
        out.push_str(&format!("task {}", spec.name().replace(' ', "_")));
        let fmt_list = |ids: Vec<DataId>| {
            ids.iter()
                .map(|d| format!("d{}", d.as_u64()))
                .collect::<Vec<_>>()
                .join(",")
        };
        let ins: Vec<DataId> = spec
            .params()
            .iter()
            .filter(|p| p.direction == continuum_dag::Direction::In)
            .map(|p| p.data)
            .collect();
        let inouts: Vec<DataId> = spec
            .params()
            .iter()
            .filter(|p| p.direction == continuum_dag::Direction::InOut)
            .map(|p| p.data)
            .collect();
        let outs: Vec<DataId> = spec
            .params()
            .iter()
            .filter(|p| p.direction == continuum_dag::Direction::Out)
            .map(|p| p.data)
            .collect();
        if !ins.is_empty() {
            out.push_str(&format!(" in={}", fmt_list(ins)));
        }
        if !inouts.is_empty() {
            out.push_str(&format!(" inout={}", fmt_list(inouts)));
        }
        if !outs.is_empty() {
            out.push_str(&format!(" out={}", fmt_list(outs)));
        }
        let profile = w.profile(node.id());
        out.push_str(&format!(" dur={}", profile.duration_s()));
        let c = profile.constraints_ref();
        if c.required_memory_mb() > 0 {
            out.push_str(&format!(" mem={}M", c.required_memory_mb()));
        }
        if c.required_compute_units() > 1 {
            out.push_str(&format!(" cores={}", c.required_compute_units()));
        }
        if c.required_nodes() > 1 {
            out.push_str(&format!(" nodes={}", c.required_nodes()));
        }
        if c.required_gpus() > 0 {
            out.push_str(&format!(" gpus={}", c.required_gpus()));
        }
        if profile.output_size(0) > 0 {
            out.push_str(&format!(" out_bytes={}", profile.output_size(0)));
        }
        if let Some(g) = spec.group_label() {
            out.push_str(&format!(" group={}", g.replace(' ', "_")));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_dag::TaskId;

    const PIPELINE: &str = "
# a small pipeline
data raw size=40M home=2
task filter in=raw out=clean dur=12.5 mem=4G out_bytes=20M group=qc
task impute in=clean out=full dur=60 mem=48G out_bytes=40M
task merge in=full inout=summary dur=8 cores=2
task simulate in=summary out=result dur=300 nodes=4
";

    #[test]
    fn parses_structure_and_profiles() {
        let w = parse_wdl(PIPELINE).unwrap();
        let s = w.stats();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(w.initial_size(DataId::from_raw(0)), 40_000_000);
        assert_eq!(
            w.initial_home(DataId::from_raw(0)),
            Some(NodeId::from_raw(2))
        );
        let filter = w.profile(TaskId::from_raw(0));
        assert_eq!(filter.duration_s(), 12.5);
        assert_eq!(filter.constraints_ref().required_memory_mb(), 4_000);
        assert_eq!(filter.output_size(0), 20_000_000);
        let merge = w.profile(TaskId::from_raw(2));
        assert_eq!(merge.constraints_ref().required_compute_units(), 2);
        let sim = w.profile(TaskId::from_raw(3));
        assert_eq!(sim.constraints_ref().required_nodes(), 4);
        assert_eq!(
            w.graph()
                .node(TaskId::from_raw(0))
                .unwrap()
                .spec()
                .group_label(),
            Some("qc")
        );
    }

    #[test]
    fn inout_chains_parse() {
        let text = "
task a out=x dur=1
task b inout=x dur=1
task c inout=x dur=1
";
        let w = parse_wdl(text).unwrap();
        assert_eq!(w.stats().edges, 2);
        assert!((w.stats().critical_path_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("task nodur out=x", 1, "dur"),
            ("data raw size=40M\ndata raw size=1", 2, "already declared"),
            ("bogus directive", 1, "unknown directive"),
            ("task t out=x dur=abc", 1, "invalid duration"),
            ("task t out=x dur=1 wat=1", 1, "unknown task key"),
            ("data d size=4X", 1, "invalid byte quantity"),
            ("task t foo", 1, "key=value"),
        ];
        for (text, line, needle) in cases {
            let e = parse_wdl(text).unwrap_err();
            assert_eq!(e.line, line, "{text}");
            assert!(e.to_string().contains(needle), "{e} !~ {needle}");
        }
    }

    #[test]
    fn byte_suffixes() {
        assert_eq!(parse_bytes("17", 1).unwrap(), 17);
        assert_eq!(parse_bytes("2K", 1).unwrap(), 2_000);
        assert_eq!(parse_bytes("3M", 1).unwrap(), 3_000_000);
        assert_eq!(parse_bytes("4G", 1).unwrap(), 4_000_000_000);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let w = parse_wdl(PIPELINE).unwrap();
        let text = to_wdl(&w);
        let w2 = parse_wdl(&text).unwrap();
        assert_eq!(w.stats(), w2.stats());
        for t in 0..w.stats().tasks {
            let id = TaskId::from_raw(t as u64);
            assert_eq!(w.profile(id), w2.profile(id), "task {t} profile");
            assert_eq!(
                w.graph().predecessors(id),
                w2.graph().predecessors(id),
                "task {t} deps"
            );
        }
        // Initial data metadata survives.
        assert_eq!(w2.initial_size(DataId::from_raw(0)), 40_000_000);
        assert_eq!(
            w2.initial_home(DataId::from_raw(0)),
            Some(NodeId::from_raw(2))
        );
    }

    #[test]
    fn generated_workloads_round_trip() {
        let w = crate::GwasWorkload::new()
            .chromosomes(2)
            .chunks_per_chromosome(3)
            .build();
        let w2 = parse_wdl(&to_wdl(&w)).unwrap();
        assert_eq!(w.stats(), w2.stats());
    }
}
