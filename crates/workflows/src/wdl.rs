//! A textual workflow description language.
//!
//! The paper surveys three ways to express workflows: graphically
//! (Kepler/Taverna), **textually** (Pegasus/ASKALON) and
//! programmatically (COMPSs). `continuum` is programmatic-first, but
//! this module adds the textual modality: a plain line-based format
//! that parses into a [`SimWorkload`] and can be regenerated from one,
//! so workflows can be stored, diffed and shared as files.
//!
//! # Format
//!
//! ```text
//! # comments and blank lines are ignored
//! data <name> size=<bytes|K|M|G> [home=<node-index>]
//! task <type> [in=<d1,d2,..>] [inout=<d,..>] [out=<d,..>]
//!      [stream_in=<d,..>] [stream_out=<d,..>] dur=<seconds>
//!      [mem=<bytes|K|M|G>] [cores=<n>] [nodes=<n>] [out_bytes=<..>]
//!      [elems=<n>] [elem_bytes=<bytes|K|M|G>] [group=<label>]
//! ```
//!
//! `data` lines declare initial (externally provided) inputs; every
//! other datum is declared implicitly by first use in a task line.
//! The access keys are exactly the [`Direction::as_str`] labels, so
//! every parameter direction — including both stream ends — has a
//! textual spelling; `elems`/`elem_bytes` set the producer-side stream
//! profile (elements per output stream and payload bytes per element).

use continuum_dag::{DataId, Direction, TaskSpec};
use continuum_platform::{Constraints, NodeId};
use continuum_runtime::{SimWorkload, TaskProfile};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WdlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for WdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for WdlError {}

fn err(line: usize, message: impl Into<String>) -> WdlError {
    WdlError {
        line,
        message: message.into(),
    }
}

/// Parses a byte quantity with optional K/M/G suffix.
fn parse_bytes(s: &str, line: usize) -> Result<u64, WdlError> {
    let (digits, mult) = match s.chars().last() {
        Some('K') => (&s[..s.len() - 1], 1_000),
        Some('M') => (&s[..s.len() - 1], 1_000_000),
        Some('G') => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| err(line, format!("invalid byte quantity `{s}`")))
}

fn split_kv(token: &str, line: usize) -> Result<(&str, &str), WdlError> {
    token
        .split_once('=')
        .ok_or_else(|| err(line, format!("expected key=value, got `{token}`")))
}

/// Parses a workflow description into a [`SimWorkload`].
///
/// # Errors
///
/// Returns a [`WdlError`] naming the offending line for syntax errors,
/// unknown keys, duplicate data declarations or dependency-validation
/// failures.
///
/// # Example
///
/// ```
/// let text = "
/// data raw size=40M
/// task filter in=raw out=clean dur=12 mem=4G out_bytes=20M
/// task analyze in=clean out=stats dur=30 cores=4
/// ";
/// let w = continuum_workflows::parse_wdl(text)?;
/// assert_eq!(w.stats().tasks, 2);
/// assert_eq!(w.stats().edges, 1);
/// # Ok::<(), continuum_workflows::WdlError>(())
/// ```
pub fn parse_wdl(text: &str) -> Result<SimWorkload, WdlError> {
    let mut w = SimWorkload::new();
    let mut names: HashMap<String, DataId> = HashMap::new();

    let resolve = |w: &mut SimWorkload, names: &mut HashMap<String, DataId>, name: &str| {
        *names
            .entry(name.to_string())
            .or_insert_with(|| w.data(name))
    };

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("data") => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "data needs a name"))?;
                if names.contains_key(name) {
                    return Err(err(line_no, format!("datum `{name}` already declared")));
                }
                let mut size = 0u64;
                let mut home = None;
                for token in tokens {
                    let (k, v) = split_kv(token, line_no)?;
                    match k {
                        "size" => size = parse_bytes(v, line_no)?,
                        "home" => {
                            let n: u32 = v
                                .parse()
                                .map_err(|_| err(line_no, format!("invalid home `{v}`")))?;
                            home = Some(NodeId::from_raw(n));
                        }
                        other => return Err(err(line_no, format!("unknown data key `{other}`"))),
                    }
                }
                let id = w.initial_data(name, size, home);
                names.insert(name.to_string(), id);
            }
            Some("task") => {
                let ty = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "task needs a type name"))?;
                let mut spec = TaskSpec::new(ty);
                let mut dur = None;
                let mut constraints = Constraints::new();
                let mut out_bytes = 0u64;
                let mut n_outputs = 0usize;
                let mut elems = None;
                let mut elem_bytes = 0u64;
                for token in tokens {
                    let (k, v) = split_kv(token, line_no)?;
                    // Access keys are the Direction labels themselves
                    // (`in`, `out`, `inout`, `stream_in`, `stream_out`),
                    // so every variant — present and future — parses
                    // without a per-variant arm here.
                    if let Some(dir) = Direction::parse(k) {
                        for name in v.split(',').filter(|s| !s.is_empty()) {
                            let id = resolve(&mut w, &mut names, name);
                            spec = spec.param(id, dir);
                            if dir == Direction::Out {
                                n_outputs += 1;
                            }
                        }
                        continue;
                    }
                    match k {
                        "dur" => {
                            dur =
                                Some(v.parse::<f64>().map_err(|_| {
                                    err(line_no, format!("invalid duration `{v}`"))
                                })?);
                        }
                        "mem" => {
                            constraints =
                                constraints.memory_mb(parse_bytes(v, line_no)? / 1_000_000)
                        }
                        "cores" => {
                            constraints = constraints.compute_units(
                                v.parse()
                                    .map_err(|_| err(line_no, format!("invalid cores `{v}`")))?,
                            )
                        }
                        "nodes" => {
                            constraints = constraints.nodes(
                                v.parse()
                                    .map_err(|_| err(line_no, format!("invalid nodes `{v}`")))?,
                            )
                        }
                        "gpus" => {
                            constraints = constraints.gpus(
                                v.parse()
                                    .map_err(|_| err(line_no, format!("invalid gpus `{v}`")))?,
                            )
                        }
                        "out_bytes" => out_bytes = parse_bytes(v, line_no)?,
                        "elems" => {
                            elems = Some(
                                v.parse::<u64>()
                                    .map_err(|_| err(line_no, format!("invalid elems `{v}`")))?,
                            )
                        }
                        "elem_bytes" => elem_bytes = parse_bytes(v, line_no)?,
                        "group" => spec = spec.group(v),
                        other => return Err(err(line_no, format!("unknown task key `{other}`"))),
                    }
                }
                let dur = dur.ok_or_else(|| err(line_no, "task needs dur=<seconds>"))?;
                let _ = n_outputs;
                let mut profile = TaskProfile::new(dur)
                    .constraints(constraints)
                    .outputs_bytes(out_bytes)
                    .stream_element_bytes(elem_bytes);
                if let Some(n) = elems {
                    profile = profile.stream_elements(n);
                }
                w.task(spec, profile)
                    .map_err(|e| err(line_no, format!("invalid task: {e}")))?;
            }
            Some(other) => return Err(err(line_no, format!("unknown directive `{other}`"))),
            None => unreachable!("blank lines skipped"),
        }
    }
    Ok(w)
}

/// Serialises a workload back to the textual format. Data are written
/// with their registered names where unique; the output round-trips
/// through [`parse_wdl`] to a structurally identical workload.
pub fn to_wdl(w: &SimWorkload) -> String {
    let mut out = String::from("# continuum workflow description\n");
    // Initial data first.
    let mut initial: Vec<(DataId, u64, Option<NodeId>)> = w.initial_data_entries().collect();
    initial.sort_by_key(|(d, _, _)| *d);
    for (d, bytes, home) in initial {
        out.push_str(&format!("data d{} size={bytes}", d.as_u64()));
        if let Some(h) = home {
            out.push_str(&format!(" home={}", h.index()));
        }
        out.push('\n');
    }
    for node in w.graph().nodes() {
        let spec = node.spec();
        out.push_str(&format!("task {}", spec.name().replace(' ', "_")));
        let fmt_list = |ids: Vec<DataId>| {
            ids.iter()
                .map(|d| format!("d{}", d.as_u64()))
                .collect::<Vec<_>>()
                .join(",")
        };
        // Exhaustive over Direction::ALL with the label as the key: a
        // direction added without a WDL spelling cannot be silently
        // dropped from dumps (and `parse_wdl` accepts any label).
        for dir in Direction::ALL {
            let ids: Vec<DataId> = spec
                .params()
                .iter()
                .filter(|p| p.direction == dir)
                .map(|p| p.data)
                .collect();
            if !ids.is_empty() {
                out.push_str(&format!(" {}={}", dir.as_str(), fmt_list(ids)));
            }
        }
        let profile = w.profile(node.id());
        out.push_str(&format!(" dur={}", profile.duration_s()));
        let c = profile.constraints_ref();
        if c.required_memory_mb() > 0 {
            out.push_str(&format!(" mem={}M", c.required_memory_mb()));
        }
        if c.required_compute_units() > 1 {
            out.push_str(&format!(" cores={}", c.required_compute_units()));
        }
        if c.required_nodes() > 1 {
            out.push_str(&format!(" nodes={}", c.required_nodes()));
        }
        if c.required_gpus() > 0 {
            out.push_str(&format!(" gpus={}", c.required_gpus()));
        }
        if profile.output_size(0) > 0 {
            out.push_str(&format!(" out_bytes={}", profile.output_size(0)));
        }
        if spec.stream_writes().next().is_some() {
            if profile.stream_elements_count() != 1 {
                out.push_str(&format!(" elems={}", profile.stream_elements_count()));
            }
            if profile.stream_element_size() > 0 {
                out.push_str(&format!(" elem_bytes={}", profile.stream_element_size()));
            }
        }
        if let Some(g) = spec.group_label() {
            out.push_str(&format!(" group={}", g.replace(' ', "_")));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_dag::TaskId;

    const PIPELINE: &str = "
# a small pipeline
data raw size=40M home=2
task filter in=raw out=clean dur=12.5 mem=4G out_bytes=20M group=qc
task impute in=clean out=full dur=60 mem=48G out_bytes=40M
task merge in=full inout=summary dur=8 cores=2
task simulate in=summary out=result dur=300 nodes=4
";

    #[test]
    fn parses_structure_and_profiles() {
        let w = parse_wdl(PIPELINE).unwrap();
        let s = w.stats();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(w.initial_size(DataId::from_raw(0)), 40_000_000);
        assert_eq!(
            w.initial_home(DataId::from_raw(0)),
            Some(NodeId::from_raw(2))
        );
        let filter = w.profile(TaskId::from_raw(0));
        assert_eq!(filter.duration_s(), 12.5);
        assert_eq!(filter.constraints_ref().required_memory_mb(), 4_000);
        assert_eq!(filter.output_size(0), 20_000_000);
        let merge = w.profile(TaskId::from_raw(2));
        assert_eq!(merge.constraints_ref().required_compute_units(), 2);
        let sim = w.profile(TaskId::from_raw(3));
        assert_eq!(sim.constraints_ref().required_nodes(), 4);
        assert_eq!(
            w.graph()
                .node(TaskId::from_raw(0))
                .unwrap()
                .spec()
                .group_label(),
            Some("qc")
        );
    }

    #[test]
    fn inout_chains_parse() {
        let text = "
task a out=x dur=1
task b inout=x dur=1
task c inout=x dur=1
";
        let w = parse_wdl(text).unwrap();
        assert_eq!(w.stats().edges, 2);
        assert!((w.stats().critical_path_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("task nodur out=x", 1, "dur"),
            ("data raw size=40M\ndata raw size=1", 2, "already declared"),
            ("bogus directive", 1, "unknown directive"),
            ("task t out=x dur=abc", 1, "invalid duration"),
            ("task t out=x dur=1 wat=1", 1, "unknown task key"),
            ("data d size=4X", 1, "invalid byte quantity"),
            ("task t foo", 1, "key=value"),
        ];
        for (text, line, needle) in cases {
            let e = parse_wdl(text).unwrap_err();
            assert_eq!(e.line, line, "{text}");
            assert!(e.to_string().contains(needle), "{e} !~ {needle}");
        }
    }

    #[test]
    fn byte_suffixes() {
        assert_eq!(parse_bytes("17", 1).unwrap(), 17);
        assert_eq!(parse_bytes("2K", 1).unwrap(), 2_000);
        assert_eq!(parse_bytes("3M", 1).unwrap(), 3_000_000);
        assert_eq!(parse_bytes("4G", 1).unwrap(), 4_000_000_000);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let w = parse_wdl(PIPELINE).unwrap();
        let text = to_wdl(&w);
        let w2 = parse_wdl(&text).unwrap();
        assert_eq!(w.stats(), w2.stats());
        for t in 0..w.stats().tasks {
            let id = TaskId::from_raw(t as u64);
            assert_eq!(w.profile(id), w2.profile(id), "task {t} profile");
            assert_eq!(
                w.graph().predecessors(id),
                w2.graph().predecessors(id),
                "task {t} deps"
            );
        }
        // Initial data metadata survives.
        assert_eq!(w2.initial_size(DataId::from_raw(0)), 40_000_000);
        assert_eq!(
            w2.initial_home(DataId::from_raw(0)),
            Some(NodeId::from_raw(2))
        );
    }

    #[test]
    fn stream_edges_parse_and_round_trip() {
        let text = "
task sensor stream_out=frames dur=30 elems=64 elem_bytes=4K
task featurize stream_in=frames stream_out=feats dur=30 elems=64 elem_bytes=1K
task model stream_in=feats out=preds dur=30 out_bytes=2M
";
        let w = parse_wdl(text).unwrap();
        assert_eq!(w.stats().tasks, 3);
        let g = w.graph();
        assert_eq!(g.stream_edge_count(), 2);
        assert_eq!(
            g.node(TaskId::from_raw(1)).unwrap().stream_predecessors(),
            &[TaskId::from_raw(0)]
        );
        let sensor = w.profile(TaskId::from_raw(0));
        assert_eq!(sensor.stream_elements_count(), 64);
        assert_eq!(sensor.stream_element_size(), 4_000);
        // Round trip: stream accesses and profiles survive the dump.
        let w2 = parse_wdl(&to_wdl(&w)).unwrap();
        assert_eq!(w.stats(), w2.stats());
        assert_eq!(w2.graph().stream_edge_count(), 2);
        for t in 0..3 {
            let id = TaskId::from_raw(t);
            assert_eq!(w.profile(id), w2.profile(id), "task {t} profile");
        }
    }

    #[test]
    fn every_direction_has_a_wdl_spelling() {
        // Exhaustive over Direction::ALL: each label must parse as a
        // task key and come back out of `to_wdl` verbatim. A direction
        // added to the dag without a WDL spelling fails here.
        for dir in Direction::ALL {
            // Versioned accesses target the versioned datum `x`, stream
            // accesses the stream datum `s` (mixing the modalities on
            // one datum is rejected by the access processor).
            let target = if dir.is_stream() { "s" } else { "x" };
            let text = format!(
                "task w out=x stream_out=s dur=1\ntask t {}={target} dur=2",
                dir.as_str()
            );
            let w = parse_wdl(&text).unwrap_or_else(|e| panic!("{}: {e}", dir.as_str()));
            let spec_dirs: Vec<Direction> = w
                .graph()
                .node(TaskId::from_raw(1))
                .unwrap()
                .spec()
                .params()
                .iter()
                .map(|p| p.direction)
                .collect();
            assert_eq!(spec_dirs, vec![dir], "{}", dir.as_str());
            let dumped = to_wdl(&w);
            assert!(
                dumped.contains(&format!(" {}=", dir.as_str())),
                "{}: {dumped}",
                dir.as_str()
            );
        }
    }

    #[test]
    fn generated_workloads_round_trip() {
        let w = crate::GwasWorkload::new()
            .chromosomes(2)
            .chunks_per_chromosome(3)
            .build();
        let w2 = parse_wdl(&to_wdl(&w)).unwrap();
        assert_eq!(w.stats(), w2.stats());
    }
}
