//! Small distribution helpers (lognormal via Box–Muller).

use rand::Rng;

/// A lognormal distribution parameterised by the mean and coefficient
/// of variation of the *underlying* value (not the log), which is how
/// task-duration measurements are usually reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with the given mean and coefficient of
    /// variation (std/mean) of the value.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `cv >= 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean > 0.0 && cv >= 0.0,
            "mean must be positive, cv non-negative"
        );
        let sigma2 = (1.0 + cv * cv).ln();
        LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_statistics_match_parameters() {
        let dist = LogNormal::from_mean_cv(10.0, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
        assert!(
            (var.sqrt() / mean - 0.5).abs() < 0.05,
            "cv {}",
            var.sqrt() / mean
        );
    }

    #[test]
    fn samples_are_positive() {
        let dist = LogNormal::from_mean_cv(1.0, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..1000).all(|_| dist.sample(&mut rng) > 0.0));
    }

    #[test]
    fn zero_cv_is_deterministic() {
        let dist = LogNormal::from_mean_cv(5.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert!((dist.sample(&mut rng) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn invalid_params_rejected() {
        let _ = LogNormal::from_mean_cv(0.0, 1.0);
    }
}
