//! NMMB-Monarch-like multiscale weather pipeline generator.
//!
//! The paper (§VI-A) reports porting NMMB-Monarch — a chemical
//! weather prediction system whose workflow has five steps mixing
//! scripts, binaries and a Fortran/MPI simulation — to PyCOMPSs, and
//! gaining speed-up "thanks to the parallelization of the sequential
//! part of the application, composed of the initialization scripts".
//!
//! The generator reproduces the per-day structure:
//!
//! 1. `N` initialisation scripts (variable-data preparation) —
//!    *sequential* in the original, *parallel* in the PyCOMPSs port;
//! 2. one fixed-data preparation step;
//! 3. a rigid multi-node MPI simulation (consumes the previous day's
//!    restart file);
//! 4. post-processing;
//! 5. archiving.

use continuum_dag::TaskSpec;
use continuum_platform::Constraints;
use continuum_runtime::{SimWorkload, TaskProfile};

/// Builder for NMMB-like forecast workloads.
///
/// # Example
///
/// ```
/// use continuum_workflows::NmmbWorkload;
///
/// let w = NmmbWorkload::new().days(3).init_scripts(6).build();
/// assert_eq!(w.stats().tasks, 3 * (6 + 4));
/// ```
#[derive(Debug, Clone)]
pub struct NmmbWorkload {
    days: usize,
    init_scripts: usize,
    parallel_init: bool,
    init_script_s: f64,
    fixed_prep_s: f64,
    mpi_s: f64,
    mpi_nodes: u32,
    post_s: f64,
    archive_s: f64,
    restart_bytes: u64,
}

impl Default for NmmbWorkload {
    fn default() -> Self {
        NmmbWorkload {
            days: 5,
            init_scripts: 12,
            parallel_init: true,
            init_script_s: 90.0,
            fixed_prep_s: 60.0,
            mpi_s: 1_800.0,
            mpi_nodes: 4,
            post_s: 300.0,
            archive_s: 60.0,
            restart_bytes: 2_000_000_000,
        }
    }
}

impl NmmbWorkload {
    /// Creates the default 5-day forecast.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulated days.
    pub fn days(mut self, n: usize) -> Self {
        self.days = n.max(1);
        self
    }

    /// Initialisation scripts per day.
    pub fn init_scripts(mut self, n: usize) -> Self {
        self.init_scripts = n.max(1);
        self
    }

    /// Parallel (PyCOMPSs port) vs sequential (original) init scripts.
    pub fn parallel_init(mut self, on: bool) -> Self {
        self.parallel_init = on;
        self
    }

    /// Seconds per initialisation script.
    pub fn init_script_s(mut self, s: f64) -> Self {
        self.init_script_s = s;
        self
    }

    /// Seconds of the MPI simulation step.
    pub fn mpi_s(mut self, s: f64) -> Self {
        self.mpi_s = s;
        self
    }

    /// Nodes the rigid MPI step occupies.
    pub fn mpi_nodes(mut self, n: u32) -> Self {
        self.mpi_nodes = n.max(1);
        self
    }

    /// Seconds of post-processing per day.
    pub fn post_s(mut self, s: f64) -> Self {
        self.post_s = s;
        self
    }

    /// Generates the workload.
    pub fn build(&self) -> SimWorkload {
        let mut w = SimWorkload::new();
        let mut prev_restart = None;
        for day in 0..self.days {
            // 1. Variable-data initialisation scripts.
            let mut init_outputs = Vec::with_capacity(self.init_scripts);
            let mut prev_script: Option<continuum_dag::DataId> = None;
            for s in 0..self.init_scripts {
                let out = w.data(format!("init_d{day}_s{s}"));
                let mut spec = TaskSpec::new("init_script").group(format!("day{day}"));
                if !self.parallel_init {
                    // The original driver runs the scripts one after
                    // another: chain them through a control datum.
                    if let Some(prev) = prev_script {
                        spec = spec.input(prev);
                    }
                }
                spec = spec.output(out);
                w.task(
                    spec,
                    TaskProfile::new(self.init_script_s).outputs_bytes(50_000_000),
                )
                .expect("valid nmmb task");
                prev_script = Some(out);
                init_outputs.push(out);
            }
            // 2. Fixed-data preparation.
            let fixed = w.data(format!("fixed_d{day}"));
            w.task(
                TaskSpec::new("fixed_prep")
                    .group(format!("day{day}"))
                    .output(fixed),
                TaskProfile::new(self.fixed_prep_s).outputs_bytes(100_000_000),
            )
            .expect("valid nmmb task");
            // 3. Rigid MPI simulation: all init outputs + fixed data +
            //    the previous day's restart file.
            let sim_out = w.data(format!("sim_d{day}"));
            let mut spec = TaskSpec::new("mpi_simulation")
                .group(format!("day{day}"))
                .inputs(init_outputs)
                .input(fixed);
            if let Some(restart) = prev_restart {
                spec = spec.input(restart);
            }
            spec = spec.output(sim_out);
            w.task(
                spec,
                TaskProfile::new(self.mpi_s)
                    .constraints(Constraints::new().nodes(self.mpi_nodes))
                    .outputs_bytes(self.restart_bytes),
            )
            .expect("valid nmmb task");
            // 4. Post-processing.
            let post = w.data(format!("post_d{day}"));
            w.task(
                TaskSpec::new("postprocess")
                    .group(format!("day{day}"))
                    .input(sim_out)
                    .output(post),
                TaskProfile::new(self.post_s).outputs_bytes(self.restart_bytes / 10),
            )
            .expect("valid nmmb task");
            // 5. Archiving.
            let archive = w.data(format!("archive_d{day}"));
            w.task(
                TaskSpec::new("archive")
                    .group(format!("day{day}"))
                    .input(post)
                    .output(archive),
                TaskProfile::new(self.archive_s).outputs_bytes(0),
            )
            .expect("valid nmmb task");
            prev_restart = Some(sim_out);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_dag::GraphAnalysis;

    #[test]
    fn task_count_matches_structure() {
        let w = NmmbWorkload::new().days(3).init_scripts(5).build();
        assert_eq!(w.stats().tasks, 3 * (5 + 4));
    }

    #[test]
    fn sequential_init_chains_scripts() {
        let seq = NmmbWorkload::new()
            .days(1)
            .init_scripts(6)
            .parallel_init(false)
            .build();
        let par = NmmbWorkload::new()
            .days(1)
            .init_scripts(6)
            .parallel_init(true)
            .build();
        // Critical path difference: 6 chained scripts vs 1 script depth.
        let seq_cp = seq.stats().critical_path_s;
        let par_cp = par.stats().critical_path_s;
        assert!(
            seq_cp - par_cp > 4.0 * 90.0,
            "chained init must lengthen the critical path: {seq_cp} vs {par_cp}"
        );
    }

    #[test]
    fn days_are_serialised_by_restart_files() {
        let w = NmmbWorkload::new().days(3).init_scripts(2).build();
        let g = w.graph();
        // Find the three MPI tasks and check day d+1 depends on day d.
        let mpi: Vec<_> = g
            .nodes()
            .filter(|n| n.spec().name() == "mpi_simulation")
            .map(|n| n.id())
            .collect();
        assert_eq!(mpi.len(), 3);
        assert!(g.predecessors(mpi[1]).contains(&mpi[0]));
        assert!(g.predecessors(mpi[2]).contains(&mpi[1]));
        // Depth grows with days: the MPI chain plus post/archive tail.
        let analysis = GraphAnalysis::new(g);
        assert!(analysis.level_stats().depth >= 3 + 3);
    }

    #[test]
    fn mpi_step_is_rigid_multi_node() {
        let w = NmmbWorkload::new().days(1).mpi_nodes(8).build();
        let mpi = w
            .graph()
            .nodes()
            .find(|n| n.spec().name() == "mpi_simulation")
            .unwrap()
            .id();
        let c = w.profile(mpi).constraints_ref();
        assert!(c.is_multi_node());
        assert_eq!(c.required_nodes(), 8);
    }

    #[test]
    fn five_step_structure_per_day() {
        let w = NmmbWorkload::new().days(1).init_scripts(3).build();
        let names: Vec<&str> = w.graph().nodes().map(|n| n.spec().name()).collect();
        assert_eq!(names.iter().filter(|n| **n == "init_script").count(), 3);
        for step in ["fixed_prep", "mpi_simulation", "postprocess", "archive"] {
            assert_eq!(names.iter().filter(|n| **n == step).count(), 1, "{step}");
        }
    }
}
