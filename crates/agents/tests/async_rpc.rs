//! End-to-end M:N integration: a workflow task that offloads an
//! operation to an agent and then fetches the result from storage —
//! awaiting both round-trips — must *yield its worker* while it waits,
//! so a single-worker runtime keeps executing other tasks during the
//! RPC. This is the serving regime the async runtime exists for: the
//! wait costs a parked task cell, not an OS thread.

use continuum_agents::{AgentNetwork, AppTask, ExecReply, OpRegistry};
use continuum_dag::TaskSpec;
use continuum_platform::{Constraints, DeviceClass, NodeId};
use continuum_runtime::{LocalConfig, LocalRuntime};
use continuum_storage::{AsyncStorage, KvConfig, KvStore, ObjectKey, StorageRuntime, StoredValue};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn task_awaiting_agent_rpc_yields_its_worker() {
    let store = Arc::new(
        KvStore::new(
            (0..2).map(NodeId::from_raw).collect(),
            KvConfig { replication: 1 },
        )
        .unwrap(),
    );
    let ops = OpRegistry::new();
    // Slow on purpose: the offload round-trip must outlive the side
    // task's entire schedule-execute-commit cycle.
    ops.register("slow-double", |ins| {
        std::thread::sleep(Duration::from_millis(150));
        bytes::Bytes::from(ins[0].iter().map(|b| b * 2).collect::<Vec<u8>>())
    });
    let net = AgentNetwork::new(Arc::clone(&store) as Arc<dyn StorageRuntime>, ops);
    let fog = net.deploy("fog-0", DeviceClass::Fog);
    store
        .put(ObjectKey::new("in"), StoredValue::blob(vec![1, 2, 3]), None)
        .unwrap();

    let astore = AsyncStorage::new(Arc::clone(&store) as Arc<dyn StorageRuntime>);
    let pending = net
        .execute_async(
            fog,
            &AppTask::new("slow-double", vec![ObjectKey::new("in")], "out"),
        )
        .unwrap();

    // ONE worker: if awaiting the RPC blocked the thread, the side
    // task could not run until the reply arrived.
    let rt = LocalRuntime::new(LocalConfig::with_workers(1));
    let rpc_sum = rt.data::<u64>("rpc-sum");
    let side_ran = Arc::new(AtomicBool::new(false));
    let side_flag = Arc::clone(&side_ran);

    rt.submit_async(
        TaskSpec::new("offload").output(rpc_sum.id()),
        Constraints::new(),
        move |mut ctx| async move {
            let reply = pending.await;
            assert_eq!(reply, Some(ExecReply::Done));
            // The side task must have used the worker we yielded.
            assert!(
                side_ran.load(Ordering::SeqCst),
                "worker was blocked during the agent round-trip"
            );
            let out = astore
                .get(ObjectKey::new("out"))
                .await
                .expect("storage service alive")
                .expect("output stored");
            let sum: u64 = out.payload.iter().map(|b| u64::from(*b)).sum();
            ctx.set_output(0, sum);
            ctx
        },
    )
    .unwrap();

    let side = rt.data::<u64>("side");
    rt.submit(
        TaskSpec::new("side").output(side.id()),
        Constraints::new(),
        move |ctx| {
            side_flag.store(true, Ordering::SeqCst);
            ctx.set_output(0, 1u64);
        },
    )
    .unwrap();

    assert_eq!(*rt.get(&rpc_sum).unwrap(), 2 + 4 + 6);
    assert_eq!(*rt.get(&side).unwrap(), 1);
    rt.wait_all().unwrap();
}
