//! Property-based end-to-end check of causal cross-agent tracing on
//! *real* multi-agent runs: for random applications offloaded over a
//! random agent fleet — every participant recording into its own
//! telemetry buffer on its own clock — the federated merge is causally
//! consistent and the cross-agent attribution's per-hop buckets sum
//! exactly to the end-to-end makespan.

use bytes::Bytes;
use continuum_agents::{
    AgentNetwork, AppTask, Application, OpRegistry, Orchestrator, RoundRobinOffload,
};
use continuum_platform::{DeviceClass, NodeId};
use continuum_storage::{KvConfig, KvStore};
use continuum_telemetry::{
    cross_agent_report, merge_traces, AgentTrace, Event, SpanContext, TaskPhase, TraceBuffer,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn ops() -> OpRegistry {
    let ops = OpRegistry::new();
    ops.register("work", |ins| {
        std::thread::sleep(std::time::Duration::from_millis(1));
        let sum: u64 = ins.iter().flat_map(|b| b.iter()).map(|b| *b as u64).sum();
        Bytes::from(sum.to_le_bytes().to_vec())
    });
    ops
}

/// Random DAG of `work` tasks: task 0 is a source, every later task
/// depends on one or two random earlier outputs.
fn random_app(seed: u64, ntasks: usize) -> Application {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut app = Application::new("prop-workflow");
    for i in 0..ntasks {
        let mut deps: Vec<String> = Vec::new();
        if i > 0 {
            deps.push(format!("d{}", rng.gen_range(0..i)));
            if i > 1 && rng.gen::<f64>() < 0.5 {
                let extra = rng.gen_range(0..i);
                let name = format!("d{extra}");
                if !deps.contains(&name) {
                    deps.push(name);
                }
            }
        }
        app = app.task(AppTask::new(
            "work",
            deps.into_iter().map(Into::into).collect(),
            format!("d{i}"),
        ));
    }
    app
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole acceptance: on random multi-agent runs, merging the
    /// coordinator's and every agent's independently-clocked trace
    /// yields no happens-before violations, one hop row per dispatch,
    /// a critical path that crosses an offload hop, and buckets that
    /// sum exactly to the makespan.
    #[test]
    fn real_runs_merge_and_attribution_tiles_makespan(
        seed in 0u64..1000,
        ntasks in 3usize..7,
        nagents in 2usize..4,
    ) {
        let store = Arc::new(
            KvStore::new(
                (0..4).map(NodeId::from_raw).collect(),
                KvConfig { replication: 2 },
            )
            .unwrap(),
        );
        let net = AgentNetwork::new(store, ops());
        let mut agent_buffers = Vec::new();
        for i in 0..nagents {
            let (buffer, handle) = TraceBuffer::collector();
            let class = if i % 2 == 0 { DeviceClass::Fog } else { DeviceClass::CloudVm };
            net.deploy_with_telemetry(format!("agent-{i}"), class, handle);
            agent_buffers.push(buffer);
        }

        let (coord_buffer, coord_handle) = TraceBuffer::collector();
        let report = Orchestrator::new(&net)
            .telemetry(coord_handle)
            .run(&random_app(seed, ntasks), &mut RoundRobinOffload::new())
            .unwrap();
        prop_assert_eq!(report.completed, ntasks);

        // One federated trace per participant; agents that never got
        // work recorded nothing and ship no trace home.
        let mut traces = vec![AgentTrace::infer(coord_buffer.events())];
        for buffer in &agent_buffers {
            let events = buffer.events();
            if !events.is_empty() {
                traces.push(AgentTrace::infer(events));
            }
        }
        prop_assert!(traces.len() >= 2, "round robin spreads work to agents");

        let merged = merge_traces(&traces).unwrap();
        prop_assert!(
            merged.violations.is_empty(),
            "happens-before violations on a real run: {:?}",
            merged.violations
        );
        prop_assert_eq!(merged.root.agent_id, SpanContext::COORDINATOR);

        // Every hop span parents directly under the workflow root.
        for event in &merged.events {
            if let Event::Span { phase: TaskPhase::Offloading, ctx: Some(ctx), .. } = event {
                prop_assert_eq!(ctx.trace_id, merged.root.trace_id);
                prop_assert_eq!(ctx.parent_span_id, Some(merged.root.span_id));
            }
        }

        let xa = cross_agent_report(&merged.events).unwrap();
        prop_assert_eq!(xa.hops.len(), ntasks + 1, "root row plus one row per dispatch");
        prop_assert_eq!(xa.attributed_total_us(), xa.makespan_us);
        prop_assert!(xa.critical_offload_hops() >= 1);
    }
}
