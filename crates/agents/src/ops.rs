//! Shared operation registry: the code agents execute.
//!
//! In the paper every agent ships the same instrumented application
//! code; here the equivalent is a registry of named byte-level
//! operations shared by all agents of a network.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An operation body: inputs in, one output out.
pub type OpFn = Arc<dyn Fn(&[Bytes]) -> Bytes + Send + Sync>;

/// A registry of named operations.
///
/// # Example
///
/// ```
/// use continuum_agents::OpRegistry;
/// use bytes::Bytes;
///
/// let ops = OpRegistry::new();
/// ops.register("concat", |inputs| {
///     let mut out = Vec::new();
///     for i in inputs {
///         out.extend_from_slice(i);
///     }
///     Bytes::from(out)
/// });
/// let f = ops.get("concat").unwrap();
/// assert_eq!(&f(&[Bytes::from_static(b"a"), Bytes::from_static(b"b")])[..], b"ab");
/// ```
#[derive(Clone, Default)]
pub struct OpRegistry {
    ops: Arc<RwLock<HashMap<String, OpFn>>>,
}

impl OpRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) an operation.
    pub fn register(
        &self,
        name: impl Into<String>,
        f: impl Fn(&[Bytes]) -> Bytes + Send + Sync + 'static,
    ) {
        self.ops.write().insert(name.into(), Arc::new(f));
    }

    /// Looks up an operation.
    pub fn get(&self, name: &str) -> Option<OpFn> {
        self.ops.read().get(name).cloned()
    }

    /// Returns `true` if the operation exists.
    pub fn contains(&self, name: &str) -> bool {
        self.ops.read().contains_key(name)
    }

    /// Number of registered operations.
    pub fn len(&self) -> usize {
        self.ops.read().len()
    }

    /// Returns `true` if no operations are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for OpRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpRegistry")
            .field("ops", &self.ops.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let ops = OpRegistry::new();
        assert!(ops.is_empty());
        ops.register("id", |inputs| inputs[0].clone());
        assert!(ops.contains("id"));
        assert!(!ops.contains("nope"));
        assert_eq!(ops.len(), 1);
        let f = ops.get("id").unwrap();
        assert_eq!(&f(&[Bytes::from_static(b"x")])[..], b"x");
    }

    #[test]
    fn registry_clones_share_state() {
        let a = OpRegistry::new();
        let b = a.clone();
        a.register("f", |_| Bytes::new());
        assert!(b.contains("f"));
    }
}
