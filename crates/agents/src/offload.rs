//! Offloading policies: which agent runs the next task.
//!
//! The paper frames fog-to-cloud (and cloud-to-fog) offloading as a
//! trade-off between device capability, network cost and energy.
//! Policies here choose among *live* agents; the latency-aware policy
//! keeps data-heavy tasks near the fog (data gravity) and ships
//! compute-heavy, data-light tasks to the cloud.

use crate::agent::{AgentId, AgentInfo, AgentStatus};
use crate::orchestrator::AppTask;
use continuum_platform::DeviceClass;

/// Chooses the agent for a task; `None` means no live candidate.
pub trait OffloadPolicy: Send {
    /// Short policy name used in reports.
    fn name(&self) -> &str;

    /// Picks an agent among `agents` (snapshot, includes dead ones).
    fn choose(&mut self, task: &AppTask, agents: &[AgentInfo]) -> Option<AgentId>;
}

fn alive(agents: &[AgentInfo]) -> impl Iterator<Item = &AgentInfo> {
    agents.iter().filter(|a| a.status == AgentStatus::Alive)
}

/// Rotates over live agents regardless of class.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinOffload {
    cursor: usize,
}

impl RoundRobinOffload {
    /// Creates a round-robin policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl OffloadPolicy for RoundRobinOffload {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn choose(&mut self, _task: &AppTask, agents: &[AgentInfo]) -> Option<AgentId> {
        let live: Vec<&AgentInfo> = alive(agents).collect();
        if live.is_empty() {
            return None;
        }
        let pick = live[self.cursor % live.len()].id;
        self.cursor = self.cursor.wrapping_add(1);
        Some(pick)
    }
}

/// Prefers device classes in the given order (e.g. fog-first for
/// data-local execution, cloud-first for compute offloading); within a
/// class, picks the least-used live agent.
#[derive(Debug, Clone)]
pub struct PreferClass {
    order: Vec<DeviceClass>,
    label: &'static str,
}

impl PreferClass {
    /// Fog devices first, then cloud (fog-to-fog before fog-to-cloud).
    pub fn fog_first() -> Self {
        PreferClass {
            order: vec![
                DeviceClass::Fog,
                DeviceClass::Edge,
                DeviceClass::CloudVm,
                DeviceClass::Hpc,
            ],
            label: "fog-first",
        }
    }

    /// Cloud first (offload everything).
    pub fn cloud_first() -> Self {
        PreferClass {
            order: vec![
                DeviceClass::CloudVm,
                DeviceClass::Hpc,
                DeviceClass::Fog,
                DeviceClass::Edge,
            ],
            label: "cloud-first",
        }
    }

    /// A custom class order.
    pub fn custom(order: Vec<DeviceClass>) -> Self {
        PreferClass {
            order,
            label: "custom-order",
        }
    }
}

impl OffloadPolicy for PreferClass {
    fn name(&self) -> &str {
        self.label
    }

    fn choose(&mut self, task: &AppTask, agents: &[AgentInfo]) -> Option<AgentId> {
        // A task may pin a class (e.g. sensors produce only locally).
        if let Some(pinned) = task.preferred_class {
            return alive(agents)
                .filter(|a| a.class == pinned)
                .min_by_key(|a| (a.executed, a.id))
                .map(|a| a.id);
        }
        for class in &self.order {
            if let Some(agent) = alive(agents)
                .filter(|a| a.class == *class)
                .min_by_key(|a| (a.executed, a.id))
            {
                return Some(agent.id);
            }
        }
        alive(agents).map(|a| a.id).next()
    }
}

/// Latency-aware offloading: tasks whose input volume exceeds the
/// threshold stay on fog/edge devices (shipping the data to the cloud
/// would dominate); lighter tasks are offloaded to the cloud.
#[derive(Debug, Clone)]
pub struct LatencyAwareOffload {
    /// Input-bytes threshold above which the task stays in the fog.
    pub data_gravity_bytes: u64,
}

impl LatencyAwareOffload {
    /// Creates the policy with the given data-gravity threshold.
    pub fn new(data_gravity_bytes: u64) -> Self {
        LatencyAwareOffload { data_gravity_bytes }
    }
}

impl OffloadPolicy for LatencyAwareOffload {
    fn name(&self) -> &str {
        "latency-aware"
    }

    fn choose(&mut self, task: &AppTask, agents: &[AgentInfo]) -> Option<AgentId> {
        let heavy = task.input_bytes_hint > self.data_gravity_bytes;
        let (preferred, fallback): (Vec<DeviceClass>, Vec<DeviceClass>) = if heavy {
            (
                vec![DeviceClass::Fog, DeviceClass::Edge],
                vec![DeviceClass::CloudVm, DeviceClass::Hpc],
            )
        } else {
            (
                vec![DeviceClass::CloudVm, DeviceClass::Hpc],
                vec![DeviceClass::Fog, DeviceClass::Edge],
            )
        };
        for classes in [preferred, fallback] {
            if let Some(agent) = alive(agents)
                .filter(|a| classes.contains(&a.class))
                .min_by_key(|a| (a.executed, a.id))
            {
                return Some(agent.id);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infos() -> Vec<AgentInfo> {
        let mk = |i: u32, class, status, executed| AgentInfo {
            id: AgentId(i),
            name: format!("a{i}"),
            class,
            status,
            executed,
        };
        vec![
            mk(0, DeviceClass::Fog, AgentStatus::Alive, 5),
            mk(1, DeviceClass::Fog, AgentStatus::Alive, 2),
            mk(2, DeviceClass::CloudVm, AgentStatus::Alive, 0),
            mk(3, DeviceClass::CloudVm, AgentStatus::Dead, 0),
        ]
    }

    fn task(bytes: u64) -> AppTask {
        AppTask::new("op", vec![], "out").input_bytes_hint(bytes)
    }

    #[test]
    fn round_robin_skips_dead() {
        let mut p = RoundRobinOffload::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let id = p.choose(&task(0), &infos()).unwrap();
            assert_ne!(id, AgentId(3), "dead agent never chosen");
            seen.insert(id);
        }
        assert_eq!(seen.len(), 3, "rotates over all live agents");
    }

    #[test]
    fn fog_first_prefers_least_used_fog() {
        let mut p = PreferClass::fog_first();
        assert_eq!(p.choose(&task(0), &infos()), Some(AgentId(1)));
    }

    #[test]
    fn cloud_first_prefers_live_cloud() {
        let mut p = PreferClass::cloud_first();
        assert_eq!(p.choose(&task(0), &infos()), Some(AgentId(2)));
    }

    #[test]
    fn pinned_class_wins_over_order() {
        let mut p = PreferClass::cloud_first();
        let pinned = AppTask::new("op", vec![], "out").prefer_class(DeviceClass::Fog);
        assert_eq!(p.choose(&pinned, &infos()), Some(AgentId(1)));
    }

    #[test]
    fn latency_aware_splits_by_data_volume() {
        let mut p = LatencyAwareOffload::new(1_000_000);
        // Light task: cloud.
        assert_eq!(p.choose(&task(10), &infos()), Some(AgentId(2)));
        // Heavy task: fog.
        let heavy = p.choose(&task(10_000_000), &infos()).unwrap();
        assert!(heavy == AgentId(0) || heavy == AgentId(1));
    }

    #[test]
    fn no_live_agents_returns_none() {
        let mut dead = infos();
        for a in &mut dead {
            a.status = AgentStatus::Dead;
        }
        assert_eq!(RoundRobinOffload::new().choose(&task(0), &dead), None);
        assert_eq!(PreferClass::fog_first().choose(&task(0), &dead), None);
        assert_eq!(LatencyAwareOffload::new(0).choose(&task(0), &dead), None);
    }

    #[test]
    fn fallback_to_other_layer_when_preferred_empty() {
        let mut only_cloud = infos();
        only_cloud[0].status = AgentStatus::Dead;
        only_cloud[1].status = AgentStatus::Dead;
        let mut p = LatencyAwareOffload::new(100);
        // Heavy task prefers fog, but only cloud is alive.
        assert_eq!(p.choose(&task(1_000), &only_cloud), Some(AgentId(2)));
    }
}
