//! A network of agents sharing an operation registry and a persistent
//! store (the deployment of paper Fig. 6).

use crate::agent::{Agent, AgentId, AgentInfo, ExecReply};
use crate::error::AgentError;
use crate::offload::OffloadPolicy;
use crate::ops::OpRegistry;
use crate::orchestrator::{AppReport, AppTask, Application};
use continuum_platform::oneshot::OneshotReceiver;
use continuum_platform::DeviceClass;
use continuum_storage::StorageRuntime;
use std::fmt;
use std::sync::Arc;

/// Shared state of a network: what agents, the orchestrator and the
/// REST-style verbs operate on.
pub(crate) struct NetworkInner {
    pub(crate) agents: parking_lot::RwLock<Vec<Agent>>,
    pub(crate) ops: OpRegistry,
    pub(crate) store: Arc<dyn StorageRuntime>,
}

impl NetworkInner {
    pub(crate) fn infos(&self) -> Vec<AgentInfo> {
        self.agents.read().iter().map(Agent::info).collect()
    }

    pub(crate) fn sender_of(
        &self,
        id: AgentId,
    ) -> Result<crossbeam::channel::Sender<crate::agent::Msg>, AgentError> {
        let agents = self.agents.read();
        agents
            .get(id.index())
            .map(Agent::sender)
            .ok_or_else(|| AgentError::UnknownAgent(id.to_string()))
    }
}

/// A pending agent execution reply: the future returned by
/// [`AgentNetwork::execute_async`]. Resolves to `None` only if the
/// agent thread vanished before answering.
pub type ExecFuture = OneshotReceiver<ExecReply>;

/// A set of deployed agents plus the shared store and code registry.
///
/// # Example
///
/// ```
/// use continuum_agents::{AgentNetwork, OpRegistry};
/// use continuum_platform::{DeviceClass, NodeId};
/// use continuum_storage::{KvStore, KvConfig};
/// use std::sync::Arc;
///
/// let store = Arc::new(KvStore::new(
///     (0..2).map(NodeId::from_raw).collect(),
///     KvConfig { replication: 1 },
/// )?);
/// let net = AgentNetwork::new(store, OpRegistry::new());
/// let fog = net.deploy("fog-0", DeviceClass::Fog);
/// let cloud = net.deploy("cloud-0", DeviceClass::CloudVm);
/// assert_eq!(net.infos().len(), 2);
/// assert_ne!(fog, cloud);
/// # Ok::<(), continuum_storage::StorageError>(())
/// ```
pub struct AgentNetwork {
    inner: Arc<NetworkInner>,
}

impl fmt::Debug for AgentNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AgentNetwork")
            .field("agents", &self.inner.agents.read().len())
            .finish()
    }
}

impl AgentNetwork {
    /// Creates an empty network over a shared store and code registry.
    pub fn new(store: Arc<dyn StorageRuntime>, ops: OpRegistry) -> Self {
        AgentNetwork {
            inner: Arc::new(NetworkInner {
                agents: parking_lot::RwLock::new(Vec::new()),
                ops,
                store,
            }),
        }
    }

    /// Deploys a new agent on a device of the given class.
    pub fn deploy(&self, name: impl Into<String>, class: DeviceClass) -> AgentId {
        self.deploy_with_telemetry(name, class, continuum_telemetry::RecorderHandle::noop())
    }

    /// Deploys an agent with its own telemetry sink: the agent records
    /// its local task spans (transfer + execute, parented under the
    /// inbound offload hop's span context) against its own clock.
    /// Export each agent's buffer to a separate trace file and join
    /// them with `continuum_telemetry::merge_traces`.
    pub fn deploy_with_telemetry(
        &self,
        name: impl Into<String>,
        class: DeviceClass,
        telemetry: continuum_telemetry::RecorderHandle,
    ) -> AgentId {
        let mut agents = self.inner.agents.write();
        let id = AgentId(agents.len() as u32);
        agents.push(Agent::spawn(
            id,
            name.into(),
            class,
            self.inner.ops.clone(),
            Arc::clone(&self.inner.store),
            Arc::downgrade(&self.inner),
            telemetry,
        ));
        id
    }

    /// The shared operation registry.
    pub fn ops(&self) -> &OpRegistry {
        &self.inner.ops
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<dyn StorageRuntime> {
        &self.inner.store
    }

    /// Number of deployed agents.
    pub fn len(&self) -> usize {
        self.inner.agents.read().len()
    }

    /// Returns `true` if no agents are deployed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Kills an agent (device churn).
    ///
    /// # Errors
    ///
    /// Returns [`AgentError::UnknownAgent`] for ids not in the network.
    pub fn kill(&self, id: AgentId) -> Result<(), AgentError> {
        let agents = self.inner.agents.read();
        let agent = agents
            .get(id.index())
            .ok_or_else(|| AgentError::UnknownAgent(id.to_string()))?;
        agent.kill();
        Ok(())
    }

    /// Revives a dead agent.
    ///
    /// # Errors
    ///
    /// Returns [`AgentError::UnknownAgent`] for ids not in the network.
    pub fn revive(&self, id: AgentId) -> Result<(), AgentError> {
        let agents = self.inner.agents.read();
        let agent = agents
            .get(id.index())
            .ok_or_else(|| AgentError::UnknownAgent(id.to_string()))?;
        agent.revive();
        Ok(())
    }

    /// Probe snapshots of every agent.
    pub fn infos(&self) -> Vec<AgentInfo> {
        self.inner.infos()
    }

    /// Probes one agent through its message interface (the REST
    /// *probe* verb; unlike [`AgentNetwork::infos`] this round-trips
    /// through the agent's inbox, so it also verifies the agent thread
    /// is responsive).
    ///
    /// # Errors
    ///
    /// Returns [`AgentError::UnknownAgent`] if the id is not deployed
    /// or its thread is gone.
    pub fn probe(&self, id: AgentId) -> Result<AgentInfo, AgentError> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.sender_of(id)?
            .send(crate::agent::Msg::Probe { reply: tx })
            .map_err(|_| AgentError::UnknownAgent(id.to_string()))?;
        rx.recv()
            .map_err(|_| AgentError::UnknownAgent(id.to_string()))
    }

    /// The REST *execute* verb, asynchronously: ships one operation to
    /// agent `on` and returns a future resolving to the outcome. The
    /// awaiting caller parks — one waker clone, no blocked thread —
    /// until the agent replies, which is how a workflow task offloading
    /// to the continuum yields its worker for the round-trip. The
    /// future resolves to `None` if the agent's thread is gone before
    /// it answers (e.g. the network is dropped mid-call); a *dead but
    /// responsive* agent answers [`ExecReply::Lost`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`AgentError::UnknownAgent`] if the id is not deployed
    /// or its inbox is disconnected.
    ///
    /// # Example
    ///
    /// ```no_run
    /// # use continuum_agents::{AgentNetwork, AppTask, OpRegistry};
    /// # use continuum_storage::ObjectKey;
    /// # fn demo(net: &AgentNetwork, fog: continuum_agents::AgentId) {
    /// let task = AppTask::new("double", vec![ObjectKey::new("in")], "out");
    /// let pending = net.execute_async(fog, &task).unwrap();
    /// // ... inside an async task body: `pending.await`
    /// # }
    /// ```
    pub fn execute_async(&self, on: AgentId, task: &AppTask) -> Result<ExecFuture, AgentError> {
        let (reply, rx) = continuum_platform::oneshot::channel();
        self.sender_of(on)?
            .send(crate::agent::Msg::Execute {
                op: task.op.clone(),
                inputs: task.inputs.clone(),
                output: task.output.clone(),
                output_class: task.output_class.clone(),
                ctx: None,
                reply: crate::agent::ReplyTo::Cell(reply),
            })
            .map_err(|_| AgentError::UnknownAgent(on.to_string()))?;
        Ok(rx)
    }

    /// The REST *Start Application* verb (paper Fig. 6): asks the given
    /// agent to orchestrate `app` itself — a fog device deploying and
    /// coordinating an application over its peers (fog-to-fog), or a
    /// cloud agent using fog devices as workers. Blocks until the
    /// application finishes.
    ///
    /// # Errors
    ///
    /// * [`AgentError::UnknownAgent`] if the agent does not exist or
    ///   its thread is gone;
    /// * [`AgentError::NoAgentAvailable`] if the orchestrating agent is
    ///   dead;
    /// * any orchestration error the application run produces.
    pub fn start_application(
        &self,
        on: AgentId,
        app: Application,
        policy: Box<dyn OffloadPolicy>,
    ) -> Result<AppReport, AgentError> {
        self.start_application_traced(on, app, policy, None)
    }

    /// [`AgentNetwork::start_application`] with an inbound span
    /// context: the agent-side orchestration (and every hop it makes)
    /// nests under `ctx` instead of opening a fresh trace, so a
    /// workflow can delegate a sub-application to an agent and keep
    /// one causal trace.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AgentNetwork::start_application`].
    pub fn start_application_traced(
        &self,
        on: AgentId,
        app: Application,
        policy: Box<dyn OffloadPolicy>,
        ctx: Option<continuum_telemetry::SpanContext>,
    ) -> Result<AppReport, AgentError> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.sender_of(on)?
            .send(crate::agent::Msg::StartApplication {
                app,
                policy,
                ctx,
                reply: tx,
            })
            .map_err(|_| AgentError::UnknownAgent(on.to_string()))?;
        rx.recv()
            .map_err(|_| AgentError::UnknownAgent(on.to_string()))?
    }

    pub(crate) fn sender_of(
        &self,
        id: AgentId,
    ) -> Result<crossbeam::channel::Sender<crate::agent::Msg>, AgentError> {
        self.inner.sender_of(id)
    }

    pub(crate) fn inner(&self) -> &Arc<NetworkInner> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentStatus;
    use continuum_platform::NodeId;
    use continuum_storage::{KvConfig, KvStore};

    fn network() -> AgentNetwork {
        let store = Arc::new(
            KvStore::new(
                (0..2).map(NodeId::from_raw).collect(),
                KvConfig { replication: 1 },
            )
            .unwrap(),
        );
        AgentNetwork::new(store, OpRegistry::new())
    }

    #[test]
    fn deploy_and_probe() {
        let net = network();
        assert!(net.is_empty());
        let a = net.deploy("fog-0", DeviceClass::Fog);
        let b = net.deploy("cloud-0", DeviceClass::CloudVm);
        assert_eq!(net.len(), 2);
        let infos = net.infos();
        assert_eq!(infos[a.index()].class, DeviceClass::Fog);
        assert_eq!(infos[b.index()].class, DeviceClass::CloudVm);
    }

    #[test]
    fn probe_round_trips_through_inbox() {
        let net = network();
        let a = net.deploy("fog-0", DeviceClass::Fog);
        let info = net.probe(a).unwrap();
        assert_eq!(info.id, a);
        assert_eq!(info.status, AgentStatus::Alive);
        assert!(net.probe(AgentId(7)).is_err());
    }

    #[test]
    fn kill_and_revive() {
        let net = network();
        let a = net.deploy("fog-0", DeviceClass::Fog);
        net.kill(a).unwrap();
        assert_eq!(net.infos()[0].status, AgentStatus::Dead);
        net.revive(a).unwrap();
        assert_eq!(net.infos()[0].status, AgentStatus::Alive);
        assert!(net.kill(AgentId(9)).is_err());
    }
}
