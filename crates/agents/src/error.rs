//! Agent-layer errors.

use continuum_storage::StorageError;
use std::error::Error;
use std::fmt;

/// Errors produced by the agent layer.
#[derive(Debug)]
pub enum AgentError {
    /// The target agent is not part of the network.
    UnknownAgent(String),
    /// No live agent can run the task (all candidates dead or the
    /// policy returned none).
    NoAgentAvailable {
        /// The operation that could not be placed.
        op: String,
    },
    /// The operation is not registered with the shared registry.
    UnknownOp(String),
    /// A task was lost (agent died mid-execution) more times than the
    /// retry budget allows.
    RetriesExhausted {
        /// The operation that kept failing.
        op: String,
        /// Attempts made.
        attempts: usize,
    },
    /// The application's task list is not a valid DAG (unknown input
    /// key with no producer and not initial).
    InvalidApplication(String),
    /// Error from the shared store.
    Storage(StorageError),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::UnknownAgent(name) => write!(f, "unknown agent `{name}`"),
            AgentError::NoAgentAvailable { op } => {
                write!(f, "no live agent can execute `{op}`")
            }
            AgentError::UnknownOp(op) => write!(f, "operation `{op}` is not registered"),
            AgentError::RetriesExhausted { op, attempts } => {
                write!(f, "task `{op}` lost {attempts} times; retries exhausted")
            }
            AgentError::InvalidApplication(msg) => {
                write!(f, "invalid application: {msg}")
            }
            AgentError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl Error for AgentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AgentError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for AgentError {
    fn from(e: StorageError) -> Self {
        AgentError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(AgentError::UnknownAgent("a1".into())
            .to_string()
            .contains("`a1`"));
        assert!(AgentError::NoAgentAvailable { op: "f".into() }
            .to_string()
            .contains("`f`"));
        let e: AgentError = StorageError::NotFound("k".into()).into();
        assert!(e.source().is_some());
    }
}
