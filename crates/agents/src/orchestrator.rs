//! The orchestrating agent: drives an application's task list over
//! the network, offloading per policy and recovering lost tasks.

use crate::agent::{AgentId, ExecReply, Msg, ReplyTo};
use crate::error::AgentError;
use crate::network::{AgentNetwork, NetworkInner};
use crate::offload::OffloadPolicy;
use continuum_platform::DeviceClass;
use continuum_storage::ObjectKey;
use continuum_telemetry::{
    CounterKey, Event as TelemetryEvent, RecorderHandle, SpanContext, TaskPhase, Track,
};
use crossbeam::channel::{unbounded, Receiver};
use std::collections::{HashMap, HashSet};

/// One task of an agent application: an operation applied to stored
/// inputs, producing one stored output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppTask {
    /// Registered operation name.
    pub op: String,
    /// Input object keys (must exist in the store, or be produced by
    /// an earlier task).
    pub inputs: Vec<ObjectKey>,
    /// Output object key.
    pub output: ObjectKey,
    /// Class name for the stored output (active objects).
    pub output_class: Option<String>,
    /// Pin execution to a device class (e.g. sensor reads).
    pub preferred_class: Option<DeviceClass>,
    /// Rough input volume, consumed by latency-aware policies.
    pub input_bytes_hint: u64,
}

impl AppTask {
    /// Creates a task.
    pub fn new(
        op: impl Into<String>,
        inputs: Vec<ObjectKey>,
        output: impl Into<ObjectKey>,
    ) -> Self {
        AppTask {
            op: op.into(),
            inputs,
            output: output.into(),
            output_class: None,
            preferred_class: None,
            input_bytes_hint: 0,
        }
    }

    /// Tags the output with an active-object class.
    pub fn output_class(mut self, class: impl Into<String>) -> Self {
        self.output_class = Some(class.into());
        self
    }

    /// Pins the task to a device class.
    pub fn prefer_class(mut self, class: DeviceClass) -> Self {
        self.preferred_class = Some(class);
        self
    }

    /// Declares the rough input volume for offload policies.
    pub fn input_bytes_hint(mut self, bytes: u64) -> Self {
        self.input_bytes_hint = bytes;
        self
    }
}

/// A named list of tasks; dependencies are implied by output→input
/// key chains.
#[derive(Debug, Clone, Default)]
pub struct Application {
    name: String,
    tasks: Vec<AppTask>,
}

impl Application {
    /// Creates an empty application.
    pub fn new(name: impl Into<String>) -> Self {
        Application {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// Appends a task.
    pub fn task(mut self, task: AppTask) -> Self {
        self.tasks.push(task);
        self
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task list.
    pub fn tasks(&self) -> &[AppTask] {
        &self.tasks
    }
}

/// Outcome of one application run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppReport {
    /// Tasks completed.
    pub completed: usize,
    /// Executions lost to dead agents and re-submitted elsewhere.
    pub reexecutions: usize,
    /// Successful executions per agent.
    pub executions_per_agent: HashMap<AgentId, usize>,
}

/// The agent that starts and supervises an application (the paper's
/// *Start Application* verb plus monitoring).
#[derive(Debug)]
pub struct Orchestrator<'n> {
    network: &'n AgentNetwork,
    max_attempts: usize,
    telemetry: RecorderHandle,
    trace_context: Option<SpanContext>,
}

impl<'n> Orchestrator<'n> {
    /// Creates an orchestrator over a network; a task is retried on a
    /// different agent up to 10 times before giving up.
    pub fn new(network: &'n AgentNetwork) -> Self {
        Orchestrator {
            network,
            max_attempts: 10,
            telemetry: RecorderHandle::noop(),
            trace_context: None,
        }
    }

    /// Sets the per-task attempt budget.
    pub fn max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Plugs in a telemetry sink: per-task submit/reply spans on the
    /// executing agent's track, stamped with wall-clock microseconds
    /// since the run started.
    pub fn telemetry(mut self, telemetry: RecorderHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Parents the run under an existing span context instead of
    /// opening a fresh distributed trace. Use this to nest the run
    /// inside an enclosing workflow's trace.
    pub fn trace_context(mut self, ctx: SpanContext) -> Self {
        self.trace_context = Some(ctx);
        self
    }

    /// Runs an application to completion: submits tasks whose inputs
    /// exist, in waves, re-submitting tasks lost to agent churn.
    ///
    /// # Errors
    ///
    /// * [`AgentError::InvalidApplication`] if a task reads a key that
    ///   neither pre-exists nor is produced by any task;
    /// * [`AgentError::NoAgentAvailable`] if no live agent can take a
    ///   ready task;
    /// * [`AgentError::RetriesExhausted`] if a task keeps getting
    ///   lost;
    /// * [`AgentError::UnknownOp`] if an agent reports an unknown
    ///   operation.
    pub fn run(
        &self,
        app: &Application,
        policy: &mut dyn OffloadPolicy,
    ) -> Result<AppReport, AgentError> {
        run_application(
            self.network.inner(),
            app,
            policy,
            self.max_attempts,
            &self.telemetry,
            std::time::Instant::now(),
            SpanContext::COORDINATOR,
            self.trace_context,
        )
    }
}

/// Derives a stable trace id for a fresh distributed trace from the
/// application's shape (name + task count). Stable ids keep repeated
/// runs of the same app comparable; uniqueness across a merge set only
/// matters per-merge, where traces come from one run.
fn derive_trace_id(app: &Application) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in app.name().bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^ app.tasks().len() as u64
}

/// Orchestration core, shared by the external [`Orchestrator`] and by
/// agents handling the *Start Application* verb: runs an application to
/// completion over the network's agents, re-submitting tasks lost to
/// churn.
///
/// `origin` is the clock every telemetry timestamp is relative to (the
/// orchestrating agent's own origin for nested runs, so all of one
/// agent's spans share a timebase). `self_agent` identifies the
/// recording side in span contexts ([`SpanContext::COORDINATOR`] for an
/// external driver). `parent_ctx` nests the orchestration under an
/// inbound hop; when `None` and telemetry is on, the run opens a fresh
/// distributed trace and emits its root span.
///
/// # Errors
///
/// Same failure modes as [`Orchestrator::run`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_application(
    network: &NetworkInner,
    app: &Application,
    policy: &mut dyn OffloadPolicy,
    max_attempts: usize,
    telemetry: &RecorderHandle,
    origin: std::time::Instant,
    self_agent: u32,
    parent_ctx: Option<SpanContext>,
) -> Result<AppReport, AgentError> {
    validate(network, app)?;
    let now_us = || origin.elapsed().as_micros() as u64;
    let run_start_us = now_us();
    // The orchestration's own span context: a child of the inbound hop
    // for nested runs, or the root of a fresh distributed trace.
    let run_ctx = if telemetry.enabled() {
        Some(match parent_ctx {
            Some(parent) => parent.child(self_agent, 0),
            None => SpanContext::root(derive_trace_id(app), self_agent),
        })
    } else {
        None
    };
    let mut hop_seq: u64 = 0;
    let total = app.tasks().len();
    let mut done: HashSet<usize> = HashSet::new();
    let mut attempts: Vec<usize> = vec![0; total];
    let mut reexecutions = 0usize;
    let mut per_agent: HashMap<AgentId, usize> = HashMap::new();

    while done.len() < total {
        // A wave: submit every task whose inputs are in the store.
        type InFlight = (
            usize,
            AgentId,
            u64,
            Option<SpanContext>,
            Receiver<ExecReply>,
        );
        let mut in_flight: Vec<InFlight> = Vec::new();
        for (idx, task) in app.tasks().iter().enumerate() {
            if done.contains(&idx) {
                continue;
            }
            let ready = task.inputs.iter().all(|k| network.store.contains(k));
            if !ready {
                continue;
            }
            let infos = network.infos();
            let Some(agent) = policy.choose(task, &infos) else {
                return Err(AgentError::NoAgentAvailable {
                    op: task.op.clone(),
                });
            };
            attempts[idx] += 1;
            if attempts[idx] > max_attempts {
                return Err(AgentError::RetriesExhausted {
                    op: task.op.clone(),
                    attempts: attempts[idx] - 1,
                });
            }
            let (tx, rx) = unbounded();
            // One span context per offload hop, shipped with the
            // message so the executing agent parents its work under
            // this dispatch. `sent_us` is taken *before* the send: the
            // hop interval must bracket everything the remote side
            // records against the hop's clock handshake.
            let hop_ctx = run_ctx.map(|c| {
                hop_seq += 1;
                c.child(self_agent, hop_seq)
            });
            let sent_us = now_us();
            network
                .sender_of(agent)?
                .send(Msg::Execute {
                    op: task.op.clone(),
                    inputs: task.inputs.clone(),
                    output: task.output.clone(),
                    output_class: task.output_class.clone(),
                    ctx: hop_ctx,
                    reply: ReplyTo::Channel(tx),
                })
                .map_err(|_| AgentError::UnknownAgent(agent.to_string()))?;
            if telemetry.enabled() {
                telemetry.record(TelemetryEvent::Instant {
                    track: Track::Agent(agent.index() as u32),
                    name: task.op.clone(),
                    phase: TaskPhase::Submitted,
                    at_us: sent_us,
                });
            }
            in_flight.push((idx, agent, sent_us, hop_ctx, rx));
        }
        if telemetry.enabled() {
            telemetry.record(TelemetryEvent::Counter {
                key: CounterKey::RunningTasks,
                at_us: now_us(),
                value: in_flight.len() as f64,
            });
        }
        if in_flight.is_empty() {
            return Err(AgentError::InvalidApplication(format!(
                "no progress: {} of {total} tasks stuck waiting for inputs",
                total - done.len()
            )));
        }
        for (idx, agent, sent_us, hop_ctx, rx) in in_flight {
            let reply = rx.recv();
            let outcome = match &reply {
                Ok(ExecReply::Done) => TaskPhase::Committed,
                Ok(ExecReply::Lost) | Err(_) => TaskPhase::Replayed,
                Ok(ExecReply::Failed(_)) => TaskPhase::Failed,
            };
            if telemetry.enabled() {
                let op = app.tasks()[idx].op.clone();
                let track = Track::Agent(agent.index() as u32);
                let end_us = now_us();
                // The offload hop as seen from the submitter: the
                // whole submit→reply interval. The executing agent's
                // own Transferring/Executing spans (children of
                // `hop_ctx`) refine it; the clock-alignment pass in
                // `merge_traces` uses the pair as its handshake.
                telemetry.record(TelemetryEvent::Span {
                    track,
                    name: format!("offload:{op}"),
                    phase: TaskPhase::Offloading,
                    start_us: sent_us,
                    dur_us: end_us.saturating_sub(sent_us),
                    ctx: hop_ctx,
                });
                telemetry.record(TelemetryEvent::Instant {
                    track,
                    name: op,
                    phase: outcome,
                    at_us: end_us,
                });
            }
            match reply {
                Ok(ExecReply::Done) => {
                    done.insert(idx);
                    *per_agent.entry(agent).or_insert(0) += 1;
                }
                Ok(ExecReply::Lost) => {
                    reexecutions += 1; // re-submitted next wave
                }
                Ok(ExecReply::Failed(msg)) => {
                    if msg.starts_with("unknown op") {
                        return Err(AgentError::UnknownOp(app.tasks()[idx].op.clone()));
                    }
                    // Input unavailable (e.g. store replica down):
                    // retry next wave counts against the budget.
                    reexecutions += 1;
                }
                Err(_) => {
                    // Agent thread gone: treat as lost.
                    reexecutions += 1;
                }
            }
        }
    }
    if telemetry.enabled() {
        // The orchestration span itself — root of the distributed
        // trace (or child of the inbound hop for nested runs). Every
        // offload hop above is its child.
        let end_us = now_us();
        telemetry.record(TelemetryEvent::Span {
            track: Track::Run,
            name: app.name().to_string(),
            phase: TaskPhase::Executing,
            start_us: run_start_us,
            dur_us: end_us.saturating_sub(run_start_us),
            ctx: run_ctx,
        });
    }
    Ok(AppReport {
        completed: done.len(),
        reexecutions,
        executions_per_agent: per_agent,
    })
}

/// Checks every input key is either pre-stored or produced.
fn validate(network: &NetworkInner, app: &Application) -> Result<(), AgentError> {
    let produced: HashSet<&ObjectKey> = app.tasks().iter().map(|t| &t.output).collect();
    for task in app.tasks() {
        for input in &task.inputs {
            if !produced.contains(input) && !network.store.contains(input) {
                return Err(AgentError::InvalidApplication(format!(
                    "task `{}` reads `{input}`, which nothing produces",
                    task.op
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offload::{PreferClass, RoundRobinOffload};
    use crate::ops::OpRegistry;
    use bytes::Bytes;
    use continuum_platform::NodeId;
    use continuum_storage::{KvConfig, KvStore, StoredValue};
    use std::sync::Arc;

    fn pipeline_ops() -> OpRegistry {
        let ops = OpRegistry::new();
        ops.register("sense", |_| Bytes::from(vec![1u8; 100]));
        ops.register("filter", |ins| {
            Bytes::from(
                ins[0]
                    .iter()
                    .filter(|b| **b > 0)
                    .copied()
                    .collect::<Vec<u8>>(),
            )
        });
        ops.register("aggregate", |ins| {
            let sum: u64 = ins.iter().flat_map(|b| b.iter()).map(|b| *b as u64).sum();
            Bytes::copy_from_slice(&sum.to_le_bytes())
        });
        ops
    }

    fn network(fogs: usize, clouds: usize) -> AgentNetwork {
        let store = Arc::new(
            KvStore::new(
                (0..4).map(NodeId::from_raw).collect(),
                KvConfig { replication: 2 },
            )
            .unwrap(),
        );
        let net = AgentNetwork::new(store, pipeline_ops());
        for i in 0..fogs {
            net.deploy(format!("fog-{i}"), DeviceClass::Fog);
        }
        for i in 0..clouds {
            net.deploy(format!("cloud-{i}"), DeviceClass::CloudVm);
        }
        net
    }

    fn pipeline() -> Application {
        Application::new("sense-filter-aggregate")
            .task(AppTask::new("sense", vec![], "raw"))
            .task(AppTask::new("filter", vec!["raw".into()], "clean"))
            .task(AppTask::new("aggregate", vec!["clean".into()], "result"))
    }

    #[test]
    fn pipeline_completes_and_result_is_correct() {
        let net = network(2, 1);
        let report = Orchestrator::new(&net)
            .run(&pipeline(), &mut RoundRobinOffload::new())
            .unwrap();
        assert_eq!(report.completed, 3);
        assert_eq!(report.reexecutions, 0);
        let result = net.store().get(&"result".into()).unwrap();
        let sum = u64::from_le_bytes(result.payload[..8].try_into().unwrap());
        assert_eq!(sum, 100);
    }

    #[test]
    fn telemetry_captures_message_bus_events() {
        use continuum_telemetry::TraceBuffer;
        let net = network(2, 1);
        let (buffer, handle) = TraceBuffer::collector();
        Orchestrator::new(&net)
            .telemetry(handle)
            .run(&pipeline(), &mut RoundRobinOffload::new())
            .unwrap();
        let events = buffer.events();
        let submits = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TelemetryEvent::Instant {
                        phase: TaskPhase::Submitted,
                        ..
                    }
                )
            })
            .count();
        let commits = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TelemetryEvent::Instant {
                        phase: TaskPhase::Committed,
                        ..
                    }
                )
            })
            .count();
        let hops = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TelemetryEvent::Span {
                        phase: TaskPhase::Offloading,
                        ..
                    }
                )
            })
            .count();
        let roots = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TelemetryEvent::Span {
                        track: Track::Run,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(submits, 3, "one submit marker per task");
        assert_eq!(commits, 3, "every task commits");
        assert_eq!(hops, 3, "one offload-hop span per dispatch");
        assert_eq!(roots, 1, "one orchestration root span per run");
        // Every hop is a distinct child of the run's root context.
        let root_ctx = events
            .iter()
            .find_map(|e| match e {
                TelemetryEvent::Span {
                    track: Track::Run,
                    ctx,
                    ..
                } => *ctx,
                _ => None,
            })
            .expect("root span carries a context");
        let hop_ctxs: Vec<SpanContext> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span {
                    phase: TaskPhase::Offloading,
                    ctx,
                    ..
                } => *ctx,
                _ => None,
            })
            .collect();
        assert_eq!(hop_ctxs.len(), 3, "every hop span carries a context");
        for hop in &hop_ctxs {
            assert_eq!(hop.trace_id, root_ctx.trace_id);
            assert_eq!(hop.parent_span_id, Some(root_ctx.span_id));
        }
        let distinct: std::collections::HashSet<u64> = hop_ctxs.iter().map(|c| c.span_id).collect();
        assert_eq!(distinct.len(), 3, "hop span ids are distinct");
        assert!(
            events.iter().all(|e| !matches!(
                e,
                TelemetryEvent::Span {
                    track: Track::Node(_) | Track::Worker(_),
                    ..
                } | TelemetryEvent::Instant {
                    track: Track::Node(_) | Track::Worker(_),
                    ..
                }
            )),
            "agent runs only touch agent tracks"
        );
    }

    #[test]
    fn fog_first_policy_uses_fog_agents() {
        let net = network(2, 1);
        let report = Orchestrator::new(&net)
            .run(&pipeline(), &mut PreferClass::fog_first())
            .unwrap();
        let infos = net.infos();
        let fog_execs: usize = report
            .executions_per_agent
            .iter()
            .filter(|(id, _)| infos[id.index()].class == DeviceClass::Fog)
            .map(|(_, n)| *n)
            .sum();
        assert_eq!(fog_execs, 3, "everything fits in the fog layer");
    }

    #[test]
    fn churn_recovery_resubmits_elsewhere() {
        let net = network(2, 1);
        // Kill fog-0 before the run: every task it receives is lost
        // once, then the orchestrator routes around it.
        net.kill(AgentId(0)).unwrap();
        let report = Orchestrator::new(&net)
            .run(&pipeline(), &mut RoundRobinOffload::new())
            .unwrap();
        assert_eq!(report.completed, 3);
        assert!(
            !report.executions_per_agent.contains_key(&AgentId(0)),
            "dead agent executed nothing"
        );
        assert!(net.store().contains(&"result".into()));
    }

    #[test]
    fn all_dead_reports_no_agent() {
        let net = network(1, 0);
        net.kill(AgentId(0)).unwrap();
        let err = Orchestrator::new(&net)
            .run(&pipeline(), &mut RoundRobinOffload::new())
            .unwrap_err();
        assert!(matches!(err, AgentError::NoAgentAvailable { .. }), "{err}");
    }

    #[test]
    fn invalid_application_rejected() {
        let net = network(1, 0);
        let app = Application::new("bad").task(AppTask::new("filter", vec!["ghost".into()], "o"));
        let err = Orchestrator::new(&net)
            .run(&app, &mut RoundRobinOffload::new())
            .unwrap_err();
        assert!(matches!(err, AgentError::InvalidApplication(_)), "{err}");
    }

    #[test]
    fn unknown_op_surfaces() {
        let net = network(1, 0);
        let app = Application::new("bad").task(AppTask::new("ghost-op", vec![], "o"));
        let err = Orchestrator::new(&net)
            .run(&app, &mut RoundRobinOffload::new())
            .unwrap_err();
        assert!(matches!(err, AgentError::UnknownOp(_)), "{err}");
    }

    #[test]
    fn start_application_verb_runs_on_an_agent() {
        // A fog device orchestrates the whole application itself — the
        // paper's fog-to-fog deployment (Fig. 6) — while still acting
        // as a worker for its own tasks.
        let net = network(2, 1);
        let fog0 = AgentId(0);
        let report = net
            .start_application(fog0, pipeline(), Box::new(PreferClass::fog_first()))
            .unwrap();
        assert_eq!(report.completed, 3);
        assert!(net.store().contains(&"result".into()));
        // The orchestrating agent also executed work (no deadlock on
        // self-submission).
        assert!(report.executions_per_agent.contains_key(&fog0));
    }

    #[test]
    fn dead_agent_refuses_start_application() {
        let net = network(1, 1);
        net.kill(AgentId(0)).unwrap();
        let err = net
            .start_application(AgentId(0), pipeline(), Box::new(RoundRobinOffload::new()))
            .unwrap_err();
        assert!(matches!(err, AgentError::NoAgentAvailable { .. }), "{err}");
        assert!(net
            .start_application(AgentId(9), pipeline(), Box::new(RoundRobinOffload::new()))
            .is_err());
    }

    #[test]
    fn pre_stored_inputs_satisfy_validation() {
        let net = network(1, 0);
        net.store()
            .put("raw".into(), StoredValue::blob(vec![3u8; 10]), None)
            .unwrap();
        let app = Application::new("from-store").task(AppTask::new(
            "filter",
            vec!["raw".into()],
            "clean",
        ));
        let report = Orchestrator::new(&net)
            .run(&app, &mut RoundRobinOffload::new())
            .unwrap();
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn wide_fan_out_distributes_over_agents() {
        let net = network(3, 0);
        let mut app = Application::new("fan");
        for i in 0..9 {
            app = app.task(AppTask::new("sense", vec![], format!("out{i}")));
        }
        let report = Orchestrator::new(&net)
            .run(&app, &mut RoundRobinOffload::new())
            .unwrap();
        assert_eq!(report.completed, 9);
        assert_eq!(report.executions_per_agent.len(), 3, "all agents used");
    }
}
