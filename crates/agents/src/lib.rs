//! COMPSs-style autonomous agents for fog-to-cloud platforms (§VI-B
//! of the paper).
//!
//! Each [`Agent`] is an independent runtime instance deployed on one
//! device of the continuum (the paper deploys them as Docker
//! microservices; here each agent is a thread with a message inbox
//! carrying the same verbs as the REST interface: start application,
//! submit task, probe resources, add/remove resources). Agents execute
//! operations from a shared [`OpRegistry`] against a shared persistent
//! store (the dataClay role): inputs are fetched from the store and
//! every produced value is made persistent, so the loss of a fog
//! device never loses data — the [`Orchestrator`] simply re-submits
//! the lost task to another agent, exactly the recovery scenario the
//! paper describes.
//!
//! Placement across the fog/cloud layers is delegated to an
//! [`OffloadPolicy`] (local-first, cloud-first, or latency-aware); the
//! same policies are available as [`ContinuumScheduler`] for the
//! simulated engine, which is how the offloading experiments sweep
//! network conditions at scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod error;
mod network;
mod offload;
mod ops;
mod orchestrator;
mod sim_sched;

pub use agent::{Agent, AgentId, AgentInfo, AgentStatus, ExecReply};
pub use error::AgentError;
pub use network::{AgentNetwork, ExecFuture};
pub use offload::{LatencyAwareOffload, OffloadPolicy, PreferClass, RoundRobinOffload};
pub use ops::OpRegistry;
pub use orchestrator::{AppReport, AppTask, Application, Orchestrator};
pub use sim_sched::{ContinuumPolicy, ContinuumScheduler};
