//! One agent: an autonomous runtime instance on one device.

use crate::network::NetworkInner;
use crate::offload::OffloadPolicy;
use crate::ops::OpRegistry;
use crate::orchestrator::{run_application, AppReport, Application};
use bytes::Bytes;
use continuum_platform::DeviceClass;
use continuum_storage::{ObjectKey, StorageRuntime, StoredValue};
use continuum_telemetry::{Event as TelemetryEvent, RecorderHandle, SpanContext, TaskPhase, Track};
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Identifier of an agent within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(pub(crate) u32);

impl AgentId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// Liveness of an agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentStatus {
    /// Processing messages.
    Alive,
    /// Disappeared (battery, mobility): messages are answered with
    /// *lost* until revived.
    Dead,
}

/// Snapshot of an agent, as returned by the probe verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentInfo {
    /// The agent's id.
    pub id: AgentId,
    /// Human-readable name.
    pub name: String,
    /// Device layer the agent runs on.
    pub class: DeviceClass,
    /// Current liveness.
    pub status: AgentStatus,
    /// Tasks executed successfully so far.
    pub executed: u64,
}

/// Result of one task execution request (the reply of the REST
/// *execute* verb).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecReply {
    /// Output stored under the task's output key.
    Done,
    /// The agent died before the result could be committed.
    Lost,
    /// The operation is unknown or an input could not be read.
    Failed(String),
}

/// Where an execution reply goes: a blocking channel (the orchestrator
/// waiting for a wave) or a waker-aware reply cell (an async caller
/// parked on the RPC).
pub(crate) enum ReplyTo {
    Channel(Sender<ExecReply>),
    Cell(continuum_platform::oneshot::OneshotSender<ExecReply>),
}

impl ReplyTo {
    pub(crate) fn send(&self, reply: ExecReply) -> bool {
        match self {
            ReplyTo::Channel(tx) => tx.send(reply).is_ok(),
            ReplyTo::Cell(cell) => cell.send(reply),
        }
    }
}

pub(crate) enum Msg {
    Execute {
        op: String,
        inputs: Vec<ObjectKey>,
        output: ObjectKey,
        output_class: Option<String>,
        /// Causal context of the offload hop this execution serves; the
        /// agent parents its own transfer/execute spans under it.
        ctx: Option<SpanContext>,
        reply: ReplyTo,
    },
    Probe {
        reply: Sender<AgentInfo>,
    },
    StartApplication {
        app: Application,
        policy: Box<dyn OffloadPolicy>,
        /// Inbound causal context when the application is itself a
        /// remote dispatch (nested orchestration).
        ctx: Option<SpanContext>,
        reply: Sender<Result<AppReport, crate::error::AgentError>>,
    },
    Shutdown,
}

/// An agent: a device-resident runtime with a message inbox, the
/// in-process equivalent of the paper's Docker-deployed agent with a
/// REST interface.
pub struct Agent {
    id: AgentId,
    name: String,
    class: DeviceClass,
    sender: Sender<Msg>,
    alive: Arc<AtomicBool>,
    executed: Arc<AtomicU64>,
    handle: Option<thread::JoinHandle<()>>,
}

impl fmt::Debug for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Agent")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("class", &self.class)
            .field("alive", &self.alive.load(Ordering::SeqCst))
            .finish()
    }
}

impl Agent {
    pub(crate) fn spawn(
        id: AgentId,
        name: String,
        class: DeviceClass,
        ops: OpRegistry,
        store: Arc<dyn StorageRuntime>,
        network: std::sync::Weak<NetworkInner>,
        telemetry: RecorderHandle,
    ) -> Self {
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
        let alive = Arc::new(AtomicBool::new(true));
        let executed = Arc::new(AtomicU64::new(0));
        let thread_alive = Arc::clone(&alive);
        let thread_executed = Arc::clone(&executed);
        let thread_name = name.clone();
        let handle = thread::Builder::new()
            .name(format!("agent-{id}"))
            .spawn(move || {
                agent_loop(
                    id,
                    thread_name,
                    class,
                    &rx,
                    &ops,
                    store.as_ref(),
                    &thread_alive,
                    &thread_executed,
                    &network,
                    &telemetry,
                );
            })
            .expect("spawn agent thread");
        Agent {
            id,
            name,
            class,
            sender: tx,
            alive,
            executed,
            handle: Some(handle),
        }
    }

    /// The agent's id.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// The agent's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device class the agent runs on.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Current liveness.
    pub fn status(&self) -> AgentStatus {
        if self.alive.load(Ordering::SeqCst) {
            AgentStatus::Alive
        } else {
            AgentStatus::Dead
        }
    }

    /// Tasks executed successfully.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::SeqCst)
    }

    /// Simulates the device disappearing (low battery / out of range):
    /// in-flight and queued work is answered with *lost*.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Brings the device back.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }

    /// Snapshot of the agent (the probe verb).
    pub fn info(&self) -> AgentInfo {
        AgentInfo {
            id: self.id,
            name: self.name.clone(),
            class: self.class,
            status: self.status(),
            executed: self.executed(),
        }
    }

    pub(crate) fn sender(&self) -> Sender<Msg> {
        self.sender.clone()
    }
}

impl Drop for Agent {
    fn drop(&mut self) {
        let _ = self.sender.send(Msg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn agent_loop(
    id: AgentId,
    name: String,
    class: DeviceClass,
    rx: &Receiver<Msg>,
    ops: &OpRegistry,
    store: &dyn StorageRuntime,
    alive: &AtomicBool,
    executed: &AtomicU64,
    network: &std::sync::Weak<NetworkInner>,
    telemetry: &RecorderHandle,
) {
    // The agent's own clock origin: every span this agent records is
    // stamped relative to its spawn instant, deliberately independent
    // of every other agent's origin — the federated merge re-aligns
    // the clocks from the offload handshakes.
    let origin = std::time::Instant::now();
    let now_us = || origin.elapsed().as_micros() as u64;
    // Monotone per-agent sequence for derived child span ids.
    let mut span_seq: u64 = 0;
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Shutdown => break,
            Msg::StartApplication {
                app,
                mut policy,
                ctx,
                reply,
            } => {
                // The agent becomes the application's orchestrator
                // (fog-to-fog / cloud-to-fog, paper Fig. 6). The run is
                // handled on a separate thread so the agent can keep
                // executing tasks — including those of the application
                // it is orchestrating.
                if !alive.load(Ordering::SeqCst) {
                    let _ = reply.send(Err(crate::error::AgentError::NoAgentAvailable {
                        op: app.name().to_string(),
                    }));
                    continue;
                }
                let network = network.clone();
                let telemetry = telemetry.clone();
                thread::Builder::new()
                    .name(format!("agent-{id}-orchestrator"))
                    .spawn(move || {
                        let result = match network.upgrade() {
                            // The nested orchestration records into the
                            // agent's own trace with the agent's clock,
                            // parented under the inbound hop context.
                            Some(inner) => run_application(
                                &inner,
                                &app,
                                policy.as_mut(),
                                10,
                                &telemetry,
                                origin,
                                id.0,
                                ctx,
                            ),
                            None => Err(crate::error::AgentError::NoAgentAvailable {
                                op: app.name().to_string(),
                            }),
                        };
                        let _ = reply.send(result);
                    })
                    .expect("spawn orchestration thread");
            }
            Msg::Probe { reply } => {
                let _ = reply.send(AgentInfo {
                    id,
                    name: name.clone(),
                    class,
                    status: if alive.load(Ordering::SeqCst) {
                        AgentStatus::Alive
                    } else {
                        AgentStatus::Dead
                    },
                    executed: executed.load(Ordering::SeqCst),
                });
            }
            Msg::Execute {
                op,
                inputs,
                output,
                output_class,
                ctx,
                reply,
            } => {
                let dequeued_us = now_us();
                if !alive.load(Ordering::SeqCst) {
                    // A dead device leaves no trace — the hop shows up
                    // as pure network time on the submitter's side.
                    let _ = reply.send(ExecReply::Lost);
                    continue;
                }
                // The hop context parents everything this execution
                // records, so the task chains back to the submitting
                // workflow however many hops away it started.
                let exec_ctx = ctx.map(|c| {
                    span_seq += 1;
                    c.child(id.0, span_seq)
                });
                let fail = |reason: String, at_us: u64| {
                    if telemetry.enabled() {
                        telemetry.record(TelemetryEvent::Instant {
                            track: Track::Agent(id.0),
                            name: op.clone(),
                            phase: TaskPhase::Failed,
                            at_us,
                        });
                    }
                    let _ = reply.send(ExecReply::Failed(reason));
                };
                let Some(f) = ops.get(&op) else {
                    fail(format!("unknown op `{op}`"), now_us());
                    continue;
                };
                let mut in_values: Vec<Bytes> = Vec::with_capacity(inputs.len());
                let mut failed = None;
                for key in &inputs {
                    match store.get(key) {
                        Ok(v) => in_values.push(v.payload),
                        Err(e) => {
                            failed = Some(format!("input `{key}`: {e}"));
                            break;
                        }
                    }
                }
                if let Some(msg) = failed {
                    fail(msg, now_us());
                    continue;
                }
                let fetched_us = now_us();
                let result = f(&in_values);
                // The paper's recovery hinge: if the device died while
                // computing, the produced value never reaches the
                // store and the orchestrator re-submits elsewhere.
                if !alive.load(Ordering::SeqCst) {
                    let _ = reply.send(ExecReply::Lost);
                    continue;
                }
                let value = match output_class {
                    Some(c) => StoredValue::object(result, c),
                    None => StoredValue::blob(result),
                };
                match store.put(output.clone(), value, None) {
                    Ok(_) => {
                        executed.fetch_add(1, Ordering::SeqCst);
                        let done_us = now_us();
                        if telemetry.enabled() {
                            // Transfer = dequeue → inputs staged;
                            // execute = staged → output committed. Both
                            // carry the derived child context and sit
                            // strictly inside the submitter's
                            // [send, reply] hop interval.
                            telemetry.record(TelemetryEvent::Span {
                                track: Track::Agent(id.0),
                                name: op.clone(),
                                phase: TaskPhase::Transferring,
                                start_us: dequeued_us,
                                dur_us: fetched_us - dequeued_us,
                                ctx: exec_ctx,
                            });
                            telemetry.record(TelemetryEvent::Span {
                                track: Track::Agent(id.0),
                                name: op.clone(),
                                phase: TaskPhase::Executing,
                                start_us: fetched_us,
                                dur_us: done_us - fetched_us,
                                ctx: exec_ctx,
                            });
                            telemetry.record(TelemetryEvent::Instant {
                                track: Track::Agent(id.0),
                                name: op.clone(),
                                phase: TaskPhase::Committed,
                                at_us: done_us,
                            });
                        }
                        let _ = reply.send(ExecReply::Done);
                    }
                    Err(e) => {
                        fail(format!("store put: {e}"), now_us());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_platform::NodeId;
    use continuum_storage::{KvConfig, KvStore};

    fn store() -> Arc<dyn StorageRuntime> {
        Arc::new(
            KvStore::new(
                (0..2).map(NodeId::from_raw).collect(),
                KvConfig { replication: 1 },
            )
            .unwrap(),
        )
    }

    fn exec(agent: &Agent, op: &str, inputs: Vec<ObjectKey>, output: ObjectKey) -> ExecReply {
        exec_traced(agent, op, inputs, output, None)
    }

    fn exec_traced(
        agent: &Agent,
        op: &str,
        inputs: Vec<ObjectKey>,
        output: ObjectKey,
        ctx: Option<SpanContext>,
    ) -> ExecReply {
        let (tx, rx) = unbounded();
        agent
            .sender()
            .send(Msg::Execute {
                op: op.to_string(),
                inputs,
                output,
                output_class: None,
                ctx,
                reply: ReplyTo::Channel(tx),
            })
            .unwrap();
        rx.recv().unwrap()
    }

    #[test]
    fn agent_executes_and_persists() {
        let ops = OpRegistry::new();
        ops.register("double", |ins| {
            Bytes::from(ins[0].iter().map(|b| b * 2).collect::<Vec<u8>>())
        });
        let st = store();
        st.put("in".into(), StoredValue::blob(vec![1, 2, 3]), None)
            .unwrap();
        let agent = Agent::spawn(
            AgentId(0),
            "fog-0".into(),
            DeviceClass::Fog,
            ops,
            Arc::clone(&st),
            std::sync::Weak::new(),
            RecorderHandle::noop(),
        );
        let reply = exec(&agent, "double", vec!["in".into()], "out".into());
        assert_eq!(reply, ExecReply::Done);
        assert_eq!(&st.get(&"out".into()).unwrap().payload[..], &[2, 4, 6]);
        assert_eq!(agent.executed(), 1);
    }

    #[test]
    fn traced_execution_parents_spans_under_inbound_hop() {
        use continuum_telemetry::TraceBuffer;
        let ops = OpRegistry::new();
        ops.register("double", |ins| {
            Bytes::from(ins[0].iter().map(|b| b * 2).collect::<Vec<u8>>())
        });
        let st = store();
        st.put("in".into(), StoredValue::blob(vec![1, 2, 3]), None)
            .unwrap();
        let (buffer, handle) = TraceBuffer::collector();
        let agent = Agent::spawn(
            AgentId(4),
            "fog-4".into(),
            DeviceClass::Fog,
            ops,
            Arc::clone(&st),
            std::sync::Weak::new(),
            handle,
        );
        let hop = SpanContext::root(77, 0).child(0, 1);
        let reply = exec_traced(&agent, "double", vec!["in".into()], "out".into(), Some(hop));
        assert_eq!(reply, ExecReply::Done);
        let spans: Vec<(TaskPhase, SpanContext)> = buffer
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span { phase, ctx, .. } => ctx.map(|c| (*phase, c)),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2, "transfer + execute spans");
        assert_eq!(spans[0].0, TaskPhase::Transferring);
        assert_eq!(spans[1].0, TaskPhase::Executing);
        for (_, ctx) in &spans {
            assert_eq!(ctx.trace_id, hop.trace_id);
            assert_eq!(ctx.parent_span_id, Some(hop.span_id));
            assert_eq!(ctx.agent_id, 4);
        }
        assert_eq!(
            spans[0].1, spans[1].1,
            "both phases belong to one logical execution"
        );
    }

    #[test]
    fn dead_agent_loses_tasks() {
        let ops = OpRegistry::new();
        ops.register("nop", |_| Bytes::new());
        let st = store();
        let agent = Agent::spawn(
            AgentId(0),
            "fog-0".into(),
            DeviceClass::Fog,
            ops,
            Arc::clone(&st),
            std::sync::Weak::new(),
            RecorderHandle::noop(),
        );
        agent.kill();
        assert_eq!(agent.status(), AgentStatus::Dead);
        let reply = exec(&agent, "nop", vec![], "out".into());
        assert_eq!(reply, ExecReply::Lost);
        assert!(!st.contains(&"out".into()), "lost task must not commit");
        agent.revive();
        let reply = exec(&agent, "nop", vec![], "out".into());
        assert_eq!(reply, ExecReply::Done);
    }

    #[test]
    fn unknown_op_and_missing_input_fail() {
        let ops = OpRegistry::new();
        ops.register("use", |ins| ins[0].clone());
        let st = store();
        let agent = Agent::spawn(
            AgentId(0),
            "a".into(),
            DeviceClass::CloudVm,
            ops,
            st,
            std::sync::Weak::new(),
            RecorderHandle::noop(),
        );
        assert!(matches!(
            exec(&agent, "ghost", vec![], "o".into()),
            ExecReply::Failed(_)
        ));
        assert!(matches!(
            exec(&agent, "use", vec!["missing".into()], "o".into()),
            ExecReply::Failed(_)
        ));
    }

    #[test]
    fn probe_returns_info() {
        let ops = OpRegistry::new();
        let agent = Agent::spawn(
            AgentId(3),
            "edge-3".into(),
            DeviceClass::Edge,
            ops,
            store(),
            std::sync::Weak::new(),
            RecorderHandle::noop(),
        );
        let (tx, rx) = unbounded();
        agent.sender().send(Msg::Probe { reply: tx }).unwrap();
        let info = rx.recv().unwrap();
        assert_eq!(info.id, AgentId(3));
        assert_eq!(info.class, DeviceClass::Edge);
        assert_eq!(info.status, AgentStatus::Alive);
        assert_eq!(info.executed, 0);
        assert_eq!(agent.info(), info);
    }

    #[test]
    fn drop_shuts_agent_down() {
        let ops = OpRegistry::new();
        let agent = Agent::spawn(
            AgentId(0),
            "a".into(),
            DeviceClass::Fog,
            ops,
            store(),
            std::sync::Weak::new(),
            RecorderHandle::noop(),
        );
        drop(agent); // must join without hanging
    }
}
