//! Continuum-aware scheduler for the simulated engine: the offloading
//! policies of §VI-B expressed as a [`Scheduler`], used by the
//! paper-scale fog-to-cloud experiments.

use continuum_dag::TaskId;
use continuum_platform::{DeviceClass, NodeId};
use continuum_runtime::{PlacementView, Scheduler};
use std::collections::HashMap;

/// Placement policy over the continuum layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContinuumPolicy {
    /// Use only fog/edge devices (no offloading).
    FogOnly,
    /// Offload everything to cloud/HPC nodes.
    CloudOnly,
    /// Per task, pick the node minimising estimated transfer time plus
    /// execution time — offloads compute-heavy work when the network
    /// is fast, keeps data-heavy work local when it is slow.
    LatencyAware,
}

impl ContinuumPolicy {
    fn allows(self, class: DeviceClass) -> bool {
        match self {
            ContinuumPolicy::FogOnly => {
                matches!(
                    class,
                    DeviceClass::Fog | DeviceClass::Edge | DeviceClass::Sensor
                )
            }
            ContinuumPolicy::CloudOnly => {
                matches!(class, DeviceClass::CloudVm | DeviceClass::Hpc)
            }
            ContinuumPolicy::LatencyAware => true,
        }
    }
}

/// A [`Scheduler`] that places tasks across fog and cloud layers
/// according to a [`ContinuumPolicy`].
#[derive(Debug, Clone)]
pub struct ContinuumScheduler {
    policy: ContinuumPolicy,
}

impl ContinuumScheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: ContinuumPolicy) -> Self {
        ContinuumScheduler { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> ContinuumPolicy {
        self.policy
    }
}

impl Scheduler for ContinuumScheduler {
    fn name(&self) -> &str {
        match self.policy {
            ContinuumPolicy::FogOnly => "fog-only",
            ContinuumPolicy::CloudOnly => "cloud-only",
            ContinuumPolicy::LatencyAware => "latency-aware",
        }
    }

    fn place(&mut self, view: &PlacementView<'_>, ready: &[TaskId]) -> Vec<(TaskId, NodeId)> {
        // Virtual queue per node: every task *commits* to its best
        // node, even beyond current capacity (deferring execution to a
        // later round), so later tasks see realistic queue depths
        // instead of spilling to the next-best layer the moment a node
        // fills up.
        let mut committed: HashMap<NodeId, u32> = HashMap::new();
        // Accepted this round (bounded by free capacity).
        let mut accepted: HashMap<NodeId, u32> = HashMap::new();
        // Estimated seconds of cross-zone transfer already accepted
        // toward each destination zone: the shared uplink serialises,
        // so later offloads queue behind earlier ones.
        let mut uplink_backlog: HashMap<u16, f64> = HashMap::new();
        let mut out = Vec::new();
        for &task in ready {
            let req = view.workload().profile(task).constraints_ref();
            let cu = req.required_compute_units().max(1);
            let duration = view.workload().profile(task).duration_s();
            let mut best: Option<(f64, NodeId, f64)> = None;
            for st in view.nodes() {
                let node = st.id();
                let spec = view.platform().node(node).expect("node in platform").spec();
                if !self.policy.allows(spec.device_class()) {
                    continue;
                }
                if !st.is_alive() || !st.total_capacity().satisfies(req) {
                    continue;
                }
                let queue = *committed.get(&node).unwrap_or(&0);
                let (score, transfer) = match self.policy {
                    ContinuumPolicy::LatencyAware => {
                        // Queueing penalty in *waves*: a node with S
                        // slots absorbs S queued tasks per round of
                        // completions.
                        let slots = (st.total_capacity().cores() / cu).max(1);
                        let waves = (queue / slots) as f64;
                        let transfer = view.estimated_transfer_seconds(task, node);
                        let zone = view.platform().node(node).expect("node in platform").zone();
                        let backlog = if transfer > 0.0 {
                            // In-flight occupancy of the uplink plus
                            // what this round already committed to it.
                            view.pending_uplink_seconds_to(zone)
                                + *uplink_backlog.get(&(zone.index() as u16)).unwrap_or(&0.0)
                        } else {
                            0.0
                        };
                        (
                            backlog + transfer + (waves + 1.0) * duration / st.speed(),
                            transfer,
                        )
                    }
                    // Class-restricted policies balance by load.
                    _ => (st.running_count() as f64 + queue as f64, 0.0),
                };
                if best.is_none_or(|(s, _, _)| score < s) {
                    best = Some((score, node, transfer));
                }
            }
            if let Some((_, node, transfer)) = best {
                *committed.entry(node).or_insert(0) += 1;
                // Emit only what actually fits right now; the rest of
                // the queue stays ready and is re-offered next round.
                let used = *accepted.get(&node).unwrap_or(&0);
                let st = &view.nodes()[node.index()];
                if st.can_host(req) && st.free_capacity().cores() >= used * cu + cu {
                    *accepted.entry(node).or_insert(0) += 1;
                    if transfer > 0.0 {
                        let zone = view.platform().node(node).expect("node").zone();
                        *uplink_backlog.entry(zone.index() as u16).or_insert(0.0) += transfer;
                    }
                    out.push((task, node));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_dag::TaskSpec;
    use continuum_platform::{NodeSpec, PlatformBuilder};
    use continuum_runtime::{SimOptions, SimRuntime, SimWorkload, TaskProfile};
    use continuum_sim::FaultPlan;

    /// Edge sensors produce data in the fog zone; tasks process it.
    fn fog_cloud_platform() -> continuum_platform::Platform {
        PlatformBuilder::new()
            .fog_area("campus", 2, NodeSpec::fog(2, 4_000))
            .cloud("dc", 2, NodeSpec::cloud_vm(8, 16_000).with_speed(4.0))
            .link_zones(0, 1, continuum_platform::LinkSpec::wireless())
            .build()
    }

    fn sensor_workload(tasks: usize, input_mb: u64) -> SimWorkload {
        let mut w = SimWorkload::new();
        for i in 0..tasks {
            // Sensor data homed on fog node 0/1.
            let raw = w.initial_data(
                format!("raw{i}"),
                input_mb * 1_000_000,
                Some(NodeId::from_raw((i % 2) as u32)),
            );
            let out = w.data(format!("out{i}"));
            w.task(
                TaskSpec::new("analyze").input(raw).output(out),
                TaskProfile::new(20.0),
            )
            .unwrap();
        }
        w
    }

    fn run(policy: ContinuumPolicy, input_mb: u64) -> continuum_sim::RunReport {
        let rt = SimRuntime::new(fog_cloud_platform(), SimOptions::default());
        rt.run(
            &sensor_workload(4, input_mb),
            &mut ContinuumScheduler::new(policy),
            &FaultPlan::new(),
        )
        .unwrap()
    }

    #[test]
    fn fog_only_never_transfers() {
        let r = run(ContinuumPolicy::FogOnly, 50);
        assert_eq!(r.transfer_count, 0, "data and compute co-located in fog");
    }

    #[test]
    fn cloud_only_ships_all_input_data() {
        let r = run(ContinuumPolicy::CloudOnly, 50);
        assert_eq!(r.transfer_count, 4);
        assert_eq!(r.transfer_bytes, 4 * 50_000_000);
    }

    #[test]
    fn cloud_wins_on_light_data_fog_wins_on_heavy_data() {
        // Light inputs: 4× faster cloud cores dominate.
        let cloud_light = run(ContinuumPolicy::CloudOnly, 1);
        let fog_light = run(ContinuumPolicy::FogOnly, 1);
        assert!(cloud_light.makespan_s < fog_light.makespan_s);
        // Heavy inputs over the fog↔cloud WAN: shipping dominates.
        let cloud_heavy = run(ContinuumPolicy::CloudOnly, 500);
        let fog_heavy = run(ContinuumPolicy::FogOnly, 500);
        assert!(fog_heavy.makespan_s < cloud_heavy.makespan_s);
    }

    #[test]
    fn latency_aware_tracks_the_better_side() {
        for mb in [1u64, 500] {
            let adaptive = run(ContinuumPolicy::LatencyAware, mb);
            let fog = run(ContinuumPolicy::FogOnly, mb);
            let cloud = run(ContinuumPolicy::CloudOnly, mb);
            let best = fog.makespan_s.min(cloud.makespan_s);
            assert!(
                adaptive.makespan_s <= best * 1.05 + 1.0,
                "{mb} MB: adaptive {} vs best {best}",
                adaptive.makespan_s
            );
        }
    }

    #[test]
    fn policy_allows_classes() {
        assert!(ContinuumPolicy::FogOnly.allows(DeviceClass::Fog));
        assert!(!ContinuumPolicy::FogOnly.allows(DeviceClass::CloudVm));
        assert!(ContinuumPolicy::CloudOnly.allows(DeviceClass::Hpc));
        assert!(!ContinuumPolicy::CloudOnly.allows(DeviceClass::Edge));
        assert!(ContinuumPolicy::LatencyAware.allows(DeviceClass::Sensor));
    }
}
