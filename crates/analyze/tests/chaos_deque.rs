//! Chaos stress test for the work-stealing deque shim: with
//! `crossbeam::hooks::set_chaos(true)` every deque operation yields at
//! the entry of its critical section (and in the steal-batch window
//! between draining the source and publishing to the destination),
//! forcing the preemptions the model checker explores symbolically.
//! The invariant is the same item conservation the `DequeModel`
//! checks: every pushed item is consumed exactly once.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

const ITEMS: usize = 20_000;
const THIEVES: usize = 3;

#[test]
fn chaos_preemption_preserves_item_conservation() {
    crossbeam::hooks::set_chaos(true);
    // Every consumed item increments its slot exactly once; duplication
    // or loss shows up as a slot != 1.
    let seen: Arc<Vec<AtomicUsize>> = Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
    let consumed = Arc::new(AtomicUsize::new(0));
    let injector: Arc<Injector<usize>> = Arc::new(Injector::new());

    let owner_queue: Worker<usize> = Worker::new_lifo();
    let stealer: Stealer<usize> = owner_queue.stealer();

    let mut handles = Vec::new();
    for _ in 0..THIEVES {
        let stealer = stealer.clone();
        let injector = Arc::clone(&injector);
        let seen = Arc::clone(&seen);
        let consumed = Arc::clone(&consumed);
        handles.push(thread::spawn(move || {
            let local: Worker<usize> = Worker::new_lifo();
            while consumed.load(Ordering::SeqCst) < ITEMS {
                let mut progress = false;
                for got in [
                    injector.steal_batch_and_pop(&local),
                    stealer.steal_batch_and_pop(&local),
                    stealer.steal(),
                ] {
                    if let Steal::Success(i) = got {
                        seen[i].fetch_add(1, Ordering::SeqCst);
                        consumed.fetch_add(1, Ordering::SeqCst);
                        progress = true;
                    }
                }
                while let Some(i) = local.pop() {
                    seen[i].fetch_add(1, Ordering::SeqCst);
                    consumed.fetch_add(1, Ordering::SeqCst);
                    progress = true;
                }
                if !progress {
                    thread::yield_now();
                }
            }
        }));
    }

    // The owner interleaves pushes (alternating between its own deque
    // and the injector) with pops, racing the thieves throughout.
    for i in 0..ITEMS {
        if i % 2 == 0 {
            owner_queue.push(i);
        } else {
            injector.push(i);
        }
        if i % 3 == 0 {
            if let Some(j) = owner_queue.pop() {
                seen[j].fetch_add(1, Ordering::SeqCst);
                consumed.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    // Drain whatever the thieves left behind.
    while consumed.load(Ordering::SeqCst) < ITEMS {
        match owner_queue.pop() {
            Some(j) => {
                seen[j].fetch_add(1, Ordering::SeqCst);
                consumed.fetch_add(1, Ordering::SeqCst);
            }
            None => thread::yield_now(),
        }
    }

    for h in handles {
        h.join().unwrap();
    }
    crossbeam::hooks::set_chaos(false);

    for (i, slot) in seen.iter().enumerate() {
        let n = slot.load(Ordering::SeqCst);
        assert_eq!(n, 1, "item {i} consumed {n} times (must be exactly once)");
    }
}
