//! Soundness of the lint catalogue: on any *valid* workflow — a graph
//! the access processor accepted, run on a platform that can host every
//! task, with every datum's initial version declared as externally
//! provided — the verifier must report **zero error-severity**
//! diagnostics. Warnings (dead outputs, unordered double writes) and
//! info (schedulability bounds) are allowed; errors are not, because an
//! error means "this workflow cannot run", and these workflows do run.

use continuum_analyze::{LintBundle, LintNode, Severity};
use continuum_dag::{AccessProcessor, DataId, Direction, TaskSpec};
use continuum_platform::NodeCapacity;
use proptest::prelude::*;

const NUM_DATA: usize = 10;

#[derive(Debug, Clone)]
struct TraceOp {
    accesses: Vec<(usize, Direction)>,
}

fn direction_strategy() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::In),
        Just(Direction::Out),
        Just(Direction::InOut),
    ]
}

fn trace_strategy(max_tasks: usize) -> impl Strategy<Value = Vec<TraceOp>> {
    let op = proptest::collection::vec((0..NUM_DATA, direction_strategy()), 1..4).prop_map(
        |mut accesses| {
            accesses.sort_by_key(|(d, _)| *d);
            accesses.dedup_by_key(|(d, _)| *d);
            TraceOp { accesses }
        },
    );
    proptest::collection::vec(op, 1..max_tasks)
}

/// Builds the bundle the verifier sees for a random valid trace: the
/// registered graph, a single node big enough for the default
/// constraints, and all data declared externally provided.
fn bundle_of(trace: &[TraceOp]) -> LintBundle {
    let mut ap = AccessProcessor::new();
    let data = ap.new_data_batch("d", NUM_DATA);
    for (i, op) in trace.iter().enumerate() {
        let mut spec = TaskSpec::new(format!("t{i}"));
        for (d, dir) in &op.accesses {
            spec = spec.param(data[*d], *dir);
        }
        ap.register(spec).expect("valid traces");
    }
    let (catalog, graph) = ap.into_parts();
    let names = (0..catalog.len())
        .map(|i| {
            catalog
                .name(DataId::from_raw(i as u64))
                .unwrap_or("?")
                .to_string()
        })
        .collect();
    LintBundle::new(graph)
        .with_data_names(names)
        .with_nodes(vec![LintNode {
            name: "n0".to_string(),
            capacity: NodeCapacity::new(8, 32_768),
        }])
        .with_initial_data(data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// No false positives at error severity on valid workflows.
    #[test]
    fn valid_workflows_have_no_error_diagnostics(trace in trace_strategy(40)) {
        let report = bundle_of(&trace).verify();
        for d in &report {
            prop_assert!(
                d.severity != Severity::Error,
                "false positive on a valid workflow: {d}"
            );
        }
    }

    /// The verifier is deterministic: same bundle, same report.
    #[test]
    fn verify_is_deterministic(trace in trace_strategy(25)) {
        let bundle = bundle_of(&trace);
        prop_assert_eq!(bundle.verify(), bundle.verify());
    }

    /// Removing the initial-data declarations can only add diagnostics
    /// (read-without-producer errors), never remove any.
    #[test]
    fn undeclaring_initials_is_monotone(trace in trace_strategy(25)) {
        let declared = bundle_of(&trace);
        let mut undeclared = declared.clone();
        undeclared.initial_data.clear();
        let with = declared.verify();
        let without = undeclared.verify();
        prop_assert!(without.len() >= with.len());
        for d in &with {
            prop_assert!(without.contains(d), "declaring initials removed {d}");
        }
    }
}
