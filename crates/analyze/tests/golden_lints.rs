//! Golden fixtures: one minimal workflow per lint that must trigger
//! exactly that finding, plus a JSON round-trip through the bundle
//! format the `continuum-lint` CLI reads.

use continuum_analyze::{Lint, LintBundle, LintNode, Severity, StreamInfo};
use continuum_dag::{AccessProcessor, DataId, TaskSpec};
use continuum_platform::{Constraints, NodeCapacity};
use serde::json::Value;
use serde::{Deserialize, Serialize};

fn small_node() -> LintNode {
    LintNode {
        name: "n0".to_string(),
        capacity: NodeCapacity::new(4, 8_192),
    }
}

fn names_of(ap: &AccessProcessor) -> Vec<String> {
    (0..ap.catalog().len())
        .map(|i| {
            ap.catalog()
                .name(DataId::from_raw(i as u64))
                .unwrap_or("?")
                .to_string()
        })
        .collect()
}

fn bundle_of(ap: AccessProcessor) -> LintBundle {
    let names = names_of(&ap);
    let (_, graph) = ap.into_parts();
    LintBundle::new(graph)
        .with_data_names(names)
        .with_nodes(vec![small_node()])
}

fn findings_of(report: &[continuum_analyze::Diagnostic], lint: Lint) -> usize {
    report.iter().filter(|d| d.lint == lint).count()
}

#[test]
fn golden_unsatisfiable_constraints() {
    let mut ap = AccessProcessor::new();
    let d = ap.new_data("d");
    let t = ap.register(TaskSpec::new("wants-gpu").output(d)).unwrap();
    let bundle = bundle_of(ap).with_constraints(vec![Constraints::new().gpus(2)]);
    let report = bundle.verify();
    let finding = report
        .iter()
        .find(|x| x.lint == Lint::UnsatisfiableConstraints)
        .expect("gpu task on a gpu-less node must be flagged");
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.task, Some(t));
    assert!(
        finding.witness.iter().any(|w| w.contains("gpus")),
        "nearest-miss witness names the failing dimension: {:?}",
        finding.witness
    );
}

#[test]
fn golden_read_without_producer() {
    let mut ap = AccessProcessor::new();
    let ghost = ap.new_data("ghost");
    let out = ap.new_data("out");
    let t = ap
        .register(TaskSpec::new("reader").input(ghost).output(out))
        .unwrap();
    let report = bundle_of(ap).verify();
    let finding = report
        .iter()
        .find(|x| x.lint == Lint::ReadWithoutProducer)
        .expect("undeclared initial read must be flagged");
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.task, Some(t));
    assert_eq!(finding.data, Some(ghost));
    assert!(finding.message.contains("ghost"));
}

/// Looks up a mutable field of a JSON object value.
fn field_mut<'a>(value: &'a mut Value, key: &str) -> &'a mut Value {
    match value {
        Value::Obj(pairs) => pairs
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no field {key:?}")),
        other => panic!("expected object, got {other:?}"),
    }
}

/// The access processor cannot build a cyclic graph, so the fixture is
/// forged the way a corrupted dump would arrive: serialize a valid
/// 2-task chain, splice a back edge into the JSON, deserialize.
#[test]
fn golden_cycle() {
    let mut ap = AccessProcessor::new();
    let x = ap.new_data("x");
    ap.register(TaskSpec::new("first").output(x)).unwrap();
    ap.register(TaskSpec::new("second").inout(x)).unwrap();
    let bundle = bundle_of(ap);

    let mut value = bundle.to_json_value();
    {
        let graph = field_mut(&mut value, "graph");
        let Value::Arr(nodes) = field_mut(graph, "nodes") else {
            panic!("nodes must be an array");
        };
        // Back edge second -> first (successor direction) and the
        // matching predecessor entry.
        let Value::Arr(succs) = field_mut(&mut nodes[1], "succs") else {
            panic!("succs must be an array");
        };
        succs.push(Value::U64(0));
        let Value::Arr(preds) = field_mut(&mut nodes[0], "preds") else {
            panic!("preds must be an array");
        };
        preds.push(Value::U64(1));
        *field_mut(&mut nodes[0], "unfinished_preds") = Value::U64(1);
        *field_mut(graph, "ready") = Value::Arr(Vec::new());
    }
    let forged = LintBundle::from_json_value(&value).expect("forged bundle deserializes");

    let report = forged.verify();
    let finding = report
        .iter()
        .find(|d| d.lint == Lint::Cycle)
        .expect("spliced back edge must be reported");
    assert_eq!(finding.severity, Severity::Error);
    let witness = finding.witness.join(" ");
    assert!(
        witness.contains("first") && witness.contains("second"),
        "cycle witness names every task on the path: {witness}"
    );
}

#[test]
fn golden_dead_output_and_write_write_hazard() {
    // Two independent Out-writers of the same datum: data renaming
    // keeps them legal (no edge), which is exactly the hazard, and the
    // first version is dead (superseded, never read).
    let mut ap = AccessProcessor::new();
    let x = ap.new_data("x");
    let w1 = ap.register(TaskSpec::new("w1").output(x)).unwrap();
    let w2 = ap.register(TaskSpec::new("w2").output(x)).unwrap();
    let report = bundle_of(ap).verify();

    let dead = report
        .iter()
        .find(|d| d.lint == Lint::DeadOutput)
        .expect("superseded unread version must be flagged");
    assert_eq!(dead.severity, Severity::Warning);
    assert_eq!(dead.task, Some(w1), "the dead version is w1's");

    let hazard = report
        .iter()
        .find(|d| d.lint == Lint::WriteWriteHazard)
        .expect("unordered double write must be flagged");
    assert_eq!(hazard.severity, Severity::Warning);
    assert_eq!(hazard.task, Some(w2));
    let witness = hazard.witness.join(" ");
    assert!(
        witness.contains("w1") && witness.contains("w2"),
        "{witness}"
    );
}

#[test]
fn golden_ordered_double_write_is_clean() {
    // Same two writes, but the second reads the first (InOut): ordered,
    // so no hazard — and the first version is consumed, so not dead.
    let mut ap = AccessProcessor::new();
    let x = ap.new_data("x");
    ap.register(TaskSpec::new("w1").output(x)).unwrap();
    ap.register(TaskSpec::new("w2").inout(x)).unwrap();
    let report = bundle_of(ap).verify();
    assert_eq!(findings_of(&report, Lint::WriteWriteHazard), 0);
    assert_eq!(findings_of(&report, Lint::DeadOutput), 0);
}

#[test]
fn golden_unclosed_stream() {
    // Planted bug: a sink consumes a stream nothing ever writes. No
    // writer will ever register on — let alone close — the channel, so
    // the sink can neither be released nor observe end-of-stream.
    let mut ap = AccessProcessor::new();
    let frames = ap.new_data("frames");
    let out = ap.new_data("out");
    let sink = ap
        .register(TaskSpec::new("sink").stream_in(frames).output(out))
        .unwrap();
    let report = bundle_of(ap).verify();
    let finding = report
        .iter()
        .find(|d| d.lint == Lint::UnclosedStream)
        .expect("writer-less stream read must be flagged");
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.task, Some(sink));
    assert_eq!(finding.data, Some(frames));
    assert!(
        finding.suggestion.contains("Stream-out"),
        "{}",
        finding.suggestion
    );
}

#[test]
fn golden_reader_before_writer() {
    // Planted bug: the consumer is declared before its producer. It
    // carries no first-element gate (no producer was registered when it
    // arrived), so it can run immediately and see a premature
    // end-of-stream.
    let mut ap = AccessProcessor::new();
    let frames = ap.new_data("frames");
    let sink = ap
        .register(TaskSpec::new("sink").stream_in(frames))
        .unwrap();
    ap.register(TaskSpec::new("sensor").stream_out(frames))
        .unwrap();
    let report = bundle_of(ap).verify();
    let finding = report
        .iter()
        .find(|d| d.lint == Lint::ReaderBeforeWriter)
        .expect("consumer declared before any producer must be flagged");
    assert_eq!(finding.severity, Severity::Warning);
    assert_eq!(finding.task, Some(sink));
    let witness = finding.witness.join(" ");
    assert!(
        witness.contains("sink") && witness.contains("sensor"),
        "{witness}"
    );
}

#[test]
fn golden_stream_capacity_deadlock() {
    // Planted bug: a feedback loop of two bounded streams, each
    // expected to carry more elements than its channel holds. Once
    // both channels fill, each task is parked sending to the other.
    let mut ap = AccessProcessor::new();
    let fwd = ap.new_data("fwd");
    let back = ap.new_data("back");
    ap.register(TaskSpec::new("up").stream_out(fwd).stream_in(back))
        .unwrap();
    ap.register(TaskSpec::new("down").stream_in(fwd).stream_out(back))
        .unwrap();
    let report = bundle_of(ap)
        .with_streams(vec![
            StreamInfo {
                data: fwd,
                capacity: 1,
                expected_elements: 4,
            },
            StreamInfo {
                data: back,
                capacity: 1,
                expected_elements: 4,
            },
        ])
        .verify();
    let finding = report
        .iter()
        .find(|d| d.lint == Lint::StreamCapacityDeadlock)
        .expect("a fillable stream cycle must be flagged");
    assert_eq!(finding.severity, Severity::Error);
    let witness = finding.witness.join(" ");
    assert!(
        witness.contains("up") && witness.contains("down") && witness.contains("cap 1"),
        "cycle witness names both tasks and the capacities: {witness}"
    );
    assert_eq!(
        witness.matches("-->").count(),
        2,
        "two-edge cycle witness: {witness}"
    );
}

#[test]
fn golden_stream_capacity_deadlock_negative_ample_capacity() {
    // Same feedback loop, but the back-channel's capacity covers its
    // whole expected traffic: that edge can never fill, `up` can always
    // finish its sends, and the cycle cannot wedge.
    let mut ap = AccessProcessor::new();
    let fwd = ap.new_data("fwd");
    let back = ap.new_data("back");
    ap.register(TaskSpec::new("up").stream_out(fwd).stream_in(back))
        .unwrap();
    ap.register(TaskSpec::new("down").stream_in(fwd).stream_out(back))
        .unwrap();
    let report = bundle_of(ap)
        .with_streams(vec![
            StreamInfo {
                data: fwd,
                capacity: 1,
                expected_elements: 4,
            },
            StreamInfo {
                data: back,
                capacity: 4,
                expected_elements: 4,
            },
        ])
        .verify();
    assert_eq!(
        findings_of(&report, Lint::StreamCapacityDeadlock),
        0,
        "an edge that can never fill breaks the cycle: {report:?}"
    );
}

#[test]
fn golden_streamed_pipeline_is_clean() {
    // The continuous-inference shape in proper order: producer first,
    // each stage streaming into the next. Streams are exempt from the
    // versioned-data lints (no dead-output/hazard noise) and introduce
    // none of their own.
    let mut ap = AccessProcessor::new();
    let frames = ap.new_data("frames");
    let feats = ap.new_data("feats");
    let preds = ap.new_data("preds");
    ap.register(TaskSpec::new("sensor").stream_out(frames))
        .unwrap();
    ap.register(
        TaskSpec::new("featurize")
            .stream_in(frames)
            .stream_out(feats),
    )
    .unwrap();
    ap.register(TaskSpec::new("model").stream_in(feats).output(preds))
        .unwrap();
    let report = bundle_of(ap).verify();
    assert!(
        report.iter().all(|d| d.lint == Lint::SchedulabilityBound),
        "{report:?}"
    );
}

#[test]
fn golden_stream_bundle_json_round_trip() {
    // Stream accesses survive the CLI's JSON round trip: the exact
    // Direction::Stream serialization path `--dump-lint` exercises.
    let mut ap = AccessProcessor::new();
    let frames = ap.new_data("frames");
    let sink = ap
        .register(TaskSpec::new("sink").stream_in(frames))
        .unwrap();
    let bundle = bundle_of(ap);
    let before = bundle.verify();
    assert!(
        before
            .iter()
            .any(|d| d.lint == Lint::UnclosedStream && d.task == Some(sink)),
        "{before:?}"
    );
    let json = serde::to_string(&bundle);
    let reloaded: LintBundle = serde::from_str(&json).expect("bundle round-trips");
    assert_eq!(reloaded.verify(), before);
}

#[test]
fn golden_schedulability_bound() {
    let mut ap = AccessProcessor::new();
    let x = ap.new_data("x");
    ap.register(TaskSpec::new("a").output(x)).unwrap();
    ap.register(TaskSpec::new("b").inout(x)).unwrap();
    let bundle = bundle_of(ap).with_weights(vec![10.0, 5.0]);
    let report = bundle.verify();
    let finding = report
        .iter()
        .find(|d| d.lint == Lint::SchedulabilityBound)
        .expect("platform present: bound must be reported");
    assert_eq!(finding.severity, Severity::Info);
    assert!(
        finding.message.contains("15.000"),
        "chain of 10s + 5s has a 15s critical path: {}",
        finding.message
    );
    let witness = finding.witness.join(" ");
    assert!(witness.contains("a -> b"), "{witness}");
}

#[test]
fn bundle_json_round_trip_preserves_the_report() {
    // The exact path the CLI takes: bundle -> JSON -> bundle -> verify.
    let mut ap = AccessProcessor::new();
    let ghost = ap.new_data("ghost");
    let out = ap.new_data("out");
    ap.register(TaskSpec::new("reader").input(ghost).output(out))
        .unwrap();
    let bundle = bundle_of(ap).with_constraints(vec![Constraints::new().compute_units(64)]);
    let before = bundle.verify();
    assert!(before.iter().any(|d| d.severity == Severity::Error));

    let json = serde::to_string(&bundle);
    let reloaded: LintBundle = serde::from_str(&json).expect("bundle round-trips");
    assert_eq!(reloaded.verify(), before);
}
