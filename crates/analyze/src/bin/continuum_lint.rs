//! `continuum-lint` — verify a workflow before running it.
//!
//! Input is a serialized [`continuum_analyze::LintBundle`]: a task
//! graph plus the platform it should run on, as dumped by
//! `experiments --dump-lint DIR` or any program serializing a bundle.
//!
//! ```text
//! continuum-lint check <bundle.lint.json> [--json]
//! continuum-lint lints
//! ```
//!
//! Exit codes: 0 no error-severity findings, 1 usage error, 2
//! unreadable/unparseable bundle, 3 error-severity findings present.

use continuum_analyze::{has_errors, Diagnostic, Lint, LintBundle, Severity};
use continuum_telemetry::{render_table, Align};

const USAGE: &str = "continuum-lint — ahead-of-run workflow verification

USAGE:
  continuum-lint check <bundle.lint.json> [--json]
  continuum-lint lints

Bundles are JSON LintBundle dumps, e.g. from
`cargo run --release -p continuum-bench --bin experiments -- --quick e1 --dump-lint target/lint`.

Exit codes: 0 clean (warnings allowed), 1 usage, 2 unreadable bundle,
3 error-severity findings.";

fn load_bundle(path: &str) -> LintBundle {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("continuum-lint: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match serde::from_str::<LintBundle>(&text) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("continuum-lint: {path} is not a valid lint bundle: {e}");
            std::process::exit(2);
        }
    }
}

fn print_human(path: &str, bundle: &LintBundle, report: &[Diagnostic]) {
    let (errors, warnings, infos) =
        report
            .iter()
            .fold((0, 0, 0), |(e, w, i), d| match d.severity {
                Severity::Error => (e + 1, w, i),
                Severity::Warning => (e, w + 1, i),
                Severity::Info => (e, w, i + 1),
            });
    println!(
        "{path}: {} tasks, {} nodes — {errors} error(s), {warnings} warning(s), {infos} info",
        bundle.graph.len(),
        bundle.nodes.len()
    );
    if report.is_empty() {
        return;
    }
    println!();
    for d in report {
        println!("{d}");
    }
    // Per-lint summary table (shared renderer with continuum-trace).
    let mut rows: Vec<Vec<String>> = Vec::new();
    for lint in Lint::all() {
        let n = report.iter().filter(|d| d.lint == lint).count();
        if n > 0 {
            rows.push(vec![
                lint.name().to_string(),
                lint.severity().to_string(),
                n.to_string(),
            ]);
        }
    }
    println!();
    print!(
        "{}",
        render_table(
            &["lint", "severity", "count"],
            &[Align::Left, Align::Left, Align::Right],
            &rows,
        )
    );
}

fn cmd_check(path: &str, json: bool) {
    let bundle = load_bundle(path);
    let report = bundle.verify();
    if json {
        println!("{}", serde::to_string(&report));
    } else {
        print_human(path, &bundle, &report);
    }
    if has_errors(&report) {
        std::process::exit(3);
    }
}

fn cmd_lints() {
    let rows: Vec<Vec<String>> = Lint::all()
        .iter()
        .map(|l| vec![l.name().to_string(), l.severity().to_string()])
        .collect();
    print!(
        "{}",
        render_table(&["lint", "severity"], &[Align::Left, Align::Left], &rows)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    match (positional.first().map(|s| s.as_str()), &positional[1..]) {
        (Some("check"), [path]) => cmd_check(path, args.iter().any(|a| a == "--json")),
        (Some("lints"), []) => cmd_lints(),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(1);
        }
    }
}
