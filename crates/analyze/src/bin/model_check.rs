//! `model_check` — exhaustively explore the runtime's concurrency
//! protocol models (see `continuum_analyze::conc`).
//!
//! ```text
//! model_check [--smoke]
//! ```
//!
//! Runs the counted-sleeper, deque and task-cell park/wake models at
//! their stated bounds and prints the explored state counts; `--smoke`
//! uses the smaller CI bounds. Exits non-zero on any violation (lost
//! wakeup, conservation failure, or a state space exceeding its bound
//! — bounds must be raised explicitly, never silently).

use continuum_analyze::conc::{
    explore, DequeModel, DequeVariant, Exploration, Model, ParkWakeModel, ParkWakeVariant,
    SleeperModel, SleeperVariant, Violation,
};

fn run<M: Model>(name: &str, model: &M, max_states: usize) -> Result<Exploration, Violation> {
    match explore(model, max_states) {
        Ok(r) => {
            println!(
                "{name}: OK — {} states, {} terminal(s), depth {}",
                r.states, r.terminals, r.max_depth
            );
            Ok(r)
        }
        Err(v) => {
            eprintln!("{name}: FAILED — {v}");
            Err(v)
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (workers, items, deque_items, thieves) = if smoke { (2, 2, 3, 2) } else { (3, 2, 4, 2) };
    let (pw_workers, pw_polls) = if smoke { (2, 2) } else { (2, 4) };
    let mut failed = false;

    let sleeper = SleeperModel {
        workers,
        items,
        variant: SleeperVariant::Correct,
    };
    failed |= run(
        &format!("sleeper[w={workers},items={items}]"),
        &sleeper,
        10_000_000,
    )
    .is_err();

    let deque = DequeModel {
        items: deque_items,
        thieves,
        attempts: 2,
        variant: DequeVariant::Correct,
    };
    failed |= run(
        &format!("deque[items={deque_items},thieves={thieves},attempts=2]"),
        &deque,
        10_000_000,
    )
    .is_err();

    let parkwake = ParkWakeModel {
        workers: pw_workers,
        polls: pw_polls,
        variant: ParkWakeVariant::Correct,
    };
    failed |= run(
        &format!("parkwake[w={pw_workers},polls={pw_polls}]"),
        &parkwake,
        10_000_000,
    )
    .is_err();

    // Sanity: the harness must still detect the planted bugs, otherwise
    // a green run proves nothing.
    let planted_sleeper = SleeperModel {
        workers: 2,
        items: 2,
        variant: SleeperVariant::NoRecheck,
    };
    match explore(&planted_sleeper, 10_000_000) {
        Err(Violation::Deadlock { .. }) => {
            println!("sleeper[no-recheck]: OK — planted lost wakeup detected");
        }
        other => {
            eprintln!("sleeper[no-recheck]: FAILED — planted bug not detected: {other:?}");
            failed = true;
        }
    }
    let planted_deque = DequeModel {
        items: 2,
        thieves: 1,
        attempts: 1,
        variant: DequeVariant::ForgetRemove,
    };
    match explore(&planted_deque, 10_000_000) {
        Err(Violation::Invariant { .. }) => {
            println!("deque[forget-remove]: OK — planted duplication detected");
        }
        other => {
            eprintln!("deque[forget-remove]: FAILED — planted bug not detected: {other:?}");
            failed = true;
        }
    }
    let planted_parkwake = ParkWakeModel {
        workers: 1,
        polls: 1,
        variant: ParkWakeVariant::DropRunningWake,
    };
    match explore(&planted_parkwake, 10_000_000) {
        Err(Violation::Deadlock { .. }) => {
            println!("parkwake[drop-running-wake]: OK — planted lost wakeup detected");
        }
        other => {
            eprintln!("parkwake[drop-running-wake]: FAILED — planted bug not detected: {other:?}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
}
