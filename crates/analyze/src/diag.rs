//! Structured diagnostics produced by the workflow verifier.

use continuum_dag::{DataId, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
///
/// `Error`-severity diagnostics describe workflows that cannot run
/// correctly on the given platform; strict-reject mode refuses them.
/// `Warning` marks suspicious-but-runnable declarations and `Info`
/// carries advisory analysis results (e.g. schedulability bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// The workflow cannot execute correctly as declared.
    Error,
    /// Suspicious declaration; execution is still possible.
    Warning,
    /// Advisory analysis output, never a defect by itself.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// The catalogue of workflow lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Lint {
    /// No node in the platform can ever host the task.
    UnsatisfiableConstraints,
    /// A task reads a datum version that no task produces and no
    /// initial value provides.
    ReadWithoutProducer,
    /// The graph contains a dependency cycle (only possible in
    /// hand-crafted or corrupted graphs; the access processor builds
    /// acyclic graphs by construction).
    Cycle,
    /// A stream datum with at least one consumer but no producer on any
    /// path. No writer ever registers on — let alone closes — the
    /// channel, so the consumer is never released by a first element
    /// and its first receive can never observe end-of-stream.
    UnclosedStream,
    /// An `Out`/`InOut` version that no task consumes and that is not
    /// the datum's final version (the final version is presumed to be
    /// retrieved by the client).
    DeadOutput,
    /// Two writes to the same datum with no ordering edge between the
    /// writers (data renaming makes this legal, but the intermediate
    /// value is unobservable and the write order is arbitrary).
    WriteWriteHazard,
    /// A stream consumer declared before any of its producers: under
    /// in-order admission the reader is enqueued ahead of the writer
    /// that must release it, so it sits released-pending (and, on a
    /// saturated pool, can starve the producer of its slot).
    ReaderBeforeWriter,
    /// A cycle of stream edges whose bounded channels can all fill:
    /// once every channel in the cycle is at capacity, each producer is
    /// parked on its full downstream channel waiting for a consumer
    /// that is itself parked — a classic feedback-loop deadlock. An
    /// edge whose declared capacity covers its expected element count
    /// (or is unbounded) can never fill and breaks the cycle.
    StreamCapacityDeadlock,
    /// Advisory makespan lower bound: critical path vs. aggregate
    /// platform throughput.
    SchedulabilityBound,
}

impl Lint {
    /// Stable kebab-case lint name used in CLI output and docs.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnsatisfiableConstraints => "unsatisfiable-constraints",
            Lint::ReadWithoutProducer => "read-without-producer",
            Lint::Cycle => "cycle",
            Lint::UnclosedStream => "unclosed-stream",
            Lint::DeadOutput => "dead-output",
            Lint::WriteWriteHazard => "write-write-hazard",
            Lint::ReaderBeforeWriter => "reader-before-writer",
            Lint::StreamCapacityDeadlock => "stream-capacity-deadlock",
            Lint::SchedulabilityBound => "schedulability-bound",
        }
    }

    /// The severity this lint always reports at.
    pub fn severity(self) -> Severity {
        match self {
            Lint::UnsatisfiableConstraints => Severity::Error,
            Lint::ReadWithoutProducer => Severity::Error,
            Lint::Cycle => Severity::Error,
            Lint::UnclosedStream => Severity::Error,
            Lint::DeadOutput => Severity::Warning,
            Lint::WriteWriteHazard => Severity::Warning,
            Lint::ReaderBeforeWriter => Severity::Warning,
            Lint::StreamCapacityDeadlock => Severity::Error,
            Lint::SchedulabilityBound => Severity::Info,
        }
    }

    /// All lints, in report order.
    pub fn all() -> [Lint; 9] {
        [
            Lint::UnsatisfiableConstraints,
            Lint::ReadWithoutProducer,
            Lint::Cycle,
            Lint::UnclosedStream,
            Lint::DeadOutput,
            Lint::WriteWriteHazard,
            Lint::ReaderBeforeWriter,
            Lint::StreamCapacityDeadlock,
            Lint::SchedulabilityBound,
        ]
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of the workflow verifier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Severity (always `lint.severity()`; stored so serialized reports
    /// are self-describing).
    pub severity: Severity,
    /// The task the finding is anchored to, if any.
    pub task: Option<TaskId>,
    /// The datum the finding is anchored to, if any.
    pub data: Option<DataId>,
    /// Human-readable explanation of the finding.
    pub message: String,
    /// Supporting evidence: e.g. the full cycle path in task names, or
    /// the unmet constraint dimensions of the nearest-miss node.
    pub witness: Vec<String>,
    /// What to change to silence the lint.
    pub suggestion: String,
}

impl Diagnostic {
    /// Creates a diagnostic for `lint` with its canonical severity.
    pub fn new(lint: Lint, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            severity: lint.severity(),
            task: None,
            data: None,
            message: message.into(),
            witness: Vec::new(),
            suggestion: String::new(),
        }
    }

    /// Anchors the diagnostic to a task.
    pub fn with_task(mut self, task: TaskId) -> Self {
        self.task = Some(task);
        self
    }

    /// Anchors the diagnostic to a datum.
    pub fn with_data(mut self, data: DataId) -> Self {
        self.data = Some(data);
        self
    }

    /// Attaches a witness line.
    pub fn with_witness(mut self, line: impl Into<String>) -> Self {
        self.witness.push(line.into());
        self
    }

    /// Attaches the fix suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = s.into();
        self
    }

    /// `true` for `Error`-severity findings.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.lint)?;
        if let Some(t) = self.task {
            write!(f, " {t}")?;
        }
        if let Some(d) = self.data {
            write!(f, " {d}")?;
        }
        write!(f, ": {}", self.message)?;
        for w in &self.witness {
            write!(f, "\n    witness: {w}")?;
        }
        if !self.suggestion.is_empty() {
            write!(f, "\n    suggestion: {}", self.suggestion)?;
        }
        Ok(())
    }
}

/// Sorts a report into its canonical order: severity first (errors on
/// top), then lint, then anchor ids.
pub fn sort_report(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.severity, a.lint, a.task, a.data, &a.message)
            .cmp(&(b.severity, b.lint, b.task, b.data, &b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_anchors_and_witness() {
        let d = Diagnostic::new(Lint::Cycle, "cycle through 2 tasks")
            .with_task(TaskId::from_raw(3))
            .with_witness("a -> b -> a")
            .with_suggestion("break the cycle");
        let s = d.to_string();
        assert!(s.starts_with("error[cycle] t3: cycle through 2 tasks"));
        assert!(s.contains("witness: a -> b -> a"));
        assert!(s.contains("suggestion: break the cycle"));
    }

    #[test]
    fn severities_are_fixed_per_lint() {
        for lint in Lint::all() {
            let d = Diagnostic::new(lint, "x");
            assert_eq!(d.severity, lint.severity());
        }
        assert_eq!(Lint::Cycle.severity(), Severity::Error);
        assert_eq!(Lint::DeadOutput.severity(), Severity::Warning);
        assert_eq!(Lint::SchedulabilityBound.severity(), Severity::Info);
    }

    #[test]
    fn report_sorts_errors_first() {
        let mut v = vec![
            Diagnostic::new(Lint::SchedulabilityBound, "b"),
            Diagnostic::new(Lint::DeadOutput, "w"),
            Diagnostic::new(Lint::Cycle, "e"),
        ];
        sort_report(&mut v);
        assert_eq!(v[0].lint, Lint::Cycle);
        assert_eq!(v[2].lint, Lint::SchedulabilityBound);
    }

    #[test]
    fn diagnostic_json_round_trip() {
        let d = Diagnostic::new(Lint::WriteWriteHazard, "two writers")
            .with_task(TaskId::from_raw(7))
            .with_data(DataId::from_raw(2))
            .with_witness("t1 -> t7")
            .with_suggestion("add an ordering read");
        let json = serde::to_string(&d);
        let back: Diagnostic = serde::from_str(&json).expect("round trip");
        assert_eq!(back, d);
    }
}
