//! The workflow verifier: a pass framework over a task graph plus a
//! platform description, producing structured [`Diagnostic`]s.
//!
//! Each pass is a pure function over a [`LintBundle`]; `verify` runs the
//! whole catalogue and returns the findings in canonical order. The
//! per-task helpers ([`check_task_constraints`],
//! [`read_without_producer`]) are shared with the runtimes' strict mode
//! so a rejection at submit time carries exactly the diagnostic the CLI
//! would print for the same graph.

use crate::diag::{sort_report, Diagnostic, Lint};
use continuum_dag::{DataId, GraphAnalysis, TaskGraph, TaskId, VersionedData};
use continuum_platform::{Constraints, NodeCapacity, Platform};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One lintable node: a name plus its total capacity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintNode {
    /// Node name used in nearest-miss reporting.
    pub name: String,
    /// The node's total capacity.
    pub capacity: NodeCapacity,
}

/// Declared sizing of one stream channel, the input of the
/// `stream-capacity-deadlock` pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamInfo {
    /// The stream datum this sizing describes.
    pub data: DataId,
    /// Bounded channel capacity in elements; `0` declares the channel
    /// unbounded (it can never fill, so it never parks a producer).
    pub capacity: u64,
    /// Expected total elements sent over the stream; `0` means unknown.
    /// A channel whose capacity covers the expected element count can
    /// never fill.
    pub expected_elements: u64,
}

impl StreamInfo {
    /// Whether this channel can ever reach capacity and park a
    /// producer: it is bounded, and its expected traffic is unknown or
    /// exceeds the bound.
    pub fn can_fill(&self) -> bool {
        self.capacity != 0
            && (self.expected_elements == 0 || self.expected_elements > self.capacity)
    }
}

/// Everything the verifier needs about one workflow: the graph, the
/// platform it should run on, and the per-task execution metadata the
/// graph itself does not carry.
///
/// The bundle is serializable; its JSON form is the input format of the
/// `continuum-lint` CLI and the dump format of `experiments
/// --dump-lint`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LintBundle {
    /// The task graph to verify.
    pub graph: TaskGraph,
    /// Data names indexed by `DataId`; missing entries render as `dN`.
    pub data_names: Vec<String>,
    /// The platform's nodes (name + capacity).
    pub nodes: Vec<LintNode>,
    /// Per-task constraints indexed by `TaskId`; missing entries use
    /// `Constraints::default()`.
    pub constraints: Vec<Constraints>,
    /// Per-task weights (estimated seconds) indexed by `TaskId`;
    /// missing entries use 1.0.
    pub weights: Vec<f64>,
    /// Data whose initial (v0) value is provided externally, so reading
    /// it without a producing task is fine.
    pub initial_data: Vec<DataId>,
    /// Declared stream channel sizings; streams without an entry use
    /// the runtime's default bounded capacity with unknown traffic.
    pub streams: Vec<StreamInfo>,
}

impl LintBundle {
    /// Creates a bundle for `graph` with no platform, default
    /// constraints/weights and no initial data.
    pub fn new(graph: TaskGraph) -> Self {
        LintBundle {
            graph,
            data_names: Vec::new(),
            nodes: Vec::new(),
            constraints: Vec::new(),
            weights: Vec::new(),
            initial_data: Vec::new(),
            streams: Vec::new(),
        }
    }

    /// Populates `nodes` from a platform description.
    pub fn with_platform(mut self, platform: &Platform) -> Self {
        self.nodes = lint_nodes(platform);
        self
    }

    /// Sets the platform nodes explicitly.
    pub fn with_nodes(mut self, nodes: Vec<LintNode>) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets per-task constraints (indexed by task id).
    pub fn with_constraints(mut self, constraints: Vec<Constraints>) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets per-task weights (indexed by task id).
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = weights;
        self
    }

    /// Sets data names (indexed by data id).
    pub fn with_data_names(mut self, names: Vec<String>) -> Self {
        self.data_names = names;
        self
    }

    /// Declares data whose initial version is provided externally.
    pub fn with_initial_data(mut self, initial: Vec<DataId>) -> Self {
        self.initial_data = initial;
        self
    }

    /// Declares stream channel sizings (capacity + expected traffic).
    pub fn with_streams(mut self, streams: Vec<StreamInfo>) -> Self {
        self.streams = streams;
        self
    }

    /// Constraints of a task (default when not provided).
    pub fn constraints_of(&self, task: TaskId) -> Constraints {
        self.constraints
            .get(task.index())
            .cloned()
            .unwrap_or_default()
    }

    /// Weight of a task (1.0 when not provided).
    pub fn weight_of(&self, task: TaskId) -> f64 {
        self.weights.get(task.index()).copied().unwrap_or(1.0)
    }

    /// Display name of a datum.
    pub fn data_name(&self, data: DataId) -> String {
        self.data_names
            .get(data.index())
            .cloned()
            .unwrap_or_else(|| data.to_string())
    }

    /// Display name of a task (`"?"` for ids outside the graph).
    fn task_name(&self, task: TaskId) -> &str {
        self.graph
            .node(task)
            .map(|n| n.spec().name())
            .unwrap_or("?")
    }

    /// Runs the full lint catalogue and returns the report in canonical
    /// order (errors first).
    pub fn verify(&self) -> Vec<Diagnostic> {
        let mut report = Vec::new();
        self.pass_constraints(&mut report);
        self.pass_read_without_producer(&mut report);
        let cyclic = self.pass_cycle(&mut report);
        self.pass_streams(&mut report);
        self.pass_stream_capacity(&mut report);
        self.pass_dead_outputs(&mut report);
        self.pass_write_write_hazards(&mut report);
        if !cyclic {
            // The schedulability pass walks a topological order, which
            // does not exist for cyclic graphs.
            self.pass_schedulability(&mut report);
        }
        sort_report(&mut report);
        report
    }

    /// Unsatisfiable-constraints pass: every task must have at least
    /// one (or, for multi-node tasks, enough) hosting node.
    fn pass_constraints(&self, report: &mut Vec<Diagnostic>) {
        for node in self.graph.nodes() {
            let req = self.constraints_of(node.id());
            if let Some(d) =
                check_task_constraints(node.id(), node.spec().name(), &req, &self.nodes)
            {
                report.push(d);
            }
        }
    }

    /// Read-without-producer pass: every consumed version must be
    /// produced by some task, or be an externally-provided initial
    /// value.
    fn pass_read_without_producer(&self, report: &mut Vec<Diagnostic>) {
        let produced: HashSet<VersionedData> = self
            .graph
            .nodes()
            .flat_map(|n| n.produced().iter().copied())
            .collect();
        let initial: HashSet<DataId> = self.initial_data.iter().copied().collect();
        for node in self.graph.nodes() {
            for vd in node.consumed() {
                if produced.contains(vd) {
                    continue;
                }
                if vd.version.is_initial() && initial.contains(&vd.data) {
                    continue;
                }
                report.push(read_without_producer(
                    node.id(),
                    node.spec().name(),
                    vd.data,
                    &self.data_name(vd.data),
                ));
            }
        }
    }

    /// Cycle pass. Returns `true` if a cycle was found.
    fn pass_cycle(&self, report: &mut Vec<Diagnostic>) -> bool {
        let Some(cycle) = GraphAnalysis::new(&self.graph).find_cycle() else {
            return false;
        };
        let mut names: Vec<String> = cycle
            .iter()
            .map(|t| format!("{t} '{}'", self.task_name(*t)))
            .collect();
        names.push(names[0].clone());
        let d = Diagnostic::new(
            Lint::Cycle,
            format!("dependency cycle through {} tasks", cycle.len()),
        )
        .with_task(cycle[0])
        .with_witness(names.join(" -> "))
        .with_suggestion(
            "graphs built through the access processor are acyclic; \
             this graph was hand-crafted or corrupted — remove one of the \
             witnessed edges",
        );
        report.push(d);
        true
    }

    /// Stream pass: `unclosed-stream` (a stream datum with a reader but
    /// no writer — the reader is never released and its first receive
    /// can never observe end-of-stream) and `reader-before-writer` (a
    /// stream consumer declared before any of its producers, so
    /// in-order admission enqueues the reader ahead of the writer that
    /// must release it).
    fn pass_streams(&self, report: &mut Vec<Diagnostic>) {
        let mut producers: HashMap<DataId, Vec<TaskId>> = HashMap::new();
        let mut consumers: HashMap<DataId, Vec<TaskId>> = HashMap::new();
        for node in self.graph.nodes() {
            for d in node.spec().stream_writes() {
                producers.entry(d).or_default().push(node.id());
            }
            for d in node.spec().stream_reads() {
                consumers.entry(d).or_default().push(node.id());
            }
        }
        let mut data: Vec<DataId> = consumers.keys().copied().collect();
        data.sort();
        for d in data {
            let readers = &consumers[&d];
            let first_reader = *readers.iter().min().expect("non-empty reader list");
            let name = self.data_name(d);
            let Some(writers) = producers.get(&d) else {
                report.push(
                    Diagnostic::new(
                        Lint::UnclosedStream,
                        format!(
                            "stream {name} has {} reader(s) but no task writes or closes \
                             it on any path",
                            readers.len()
                        ),
                    )
                    .with_task(first_reader)
                    .with_data(d)
                    .with_witness(format!(
                        "{first_reader} '{}' reads stream {name}; no producer exists",
                        self.task_name(first_reader)
                    ))
                    .with_suggestion(format!(
                        "add a task with a Stream-out access to {name} (even a producer \
                         sending zero elements closes the stream), or drop the read",
                    )),
                );
                continue;
            };
            let first_writer = *writers.iter().min().expect("non-empty writer list");
            if first_reader < first_writer {
                report.push(
                    Diagnostic::new(
                        Lint::ReaderBeforeWriter,
                        format!(
                            "stream {name} is consumed by task '{}' declared before any \
                             of its producers is admissible",
                            self.task_name(first_reader)
                        ),
                    )
                    .with_task(first_reader)
                    .with_data(d)
                    .with_witness(format!(
                        "{first_reader} '{}' reads {name}; earliest producer is \
                         {first_writer} '{}'",
                        self.task_name(first_reader),
                        self.task_name(first_writer)
                    ))
                    .with_suggestion(format!(
                        "declare a producer of {name} before its consumers so admission \
                         order matches dataflow order",
                    )),
                );
            }
        }
    }

    /// Declared sizing of a stream (runtime default when not declared:
    /// bounded at 16 elements — `local.rs`'s `DEFAULT_STREAM_CAPACITY`
    /// — with unknown traffic).
    fn stream_info_of(&self, d: DataId) -> StreamInfo {
        self.streams
            .iter()
            .find(|s| s.data == d)
            .cloned()
            .unwrap_or(StreamInfo {
                data: d,
                capacity: 16,
                expected_elements: 0,
            })
    }

    /// Stream-capacity-deadlock pass: finds a cycle of stream edges
    /// (producer task → consumer task) in which every channel can fill.
    /// With all channels in the cycle at capacity, every producer is
    /// parked on its full downstream channel waiting for a consumer
    /// that is itself parked upstream — no task in the cycle can make
    /// progress. One edge that can never fill (unbounded, or capacity ≥
    /// expected elements) guarantees its producer always runs to
    /// completion and breaks the cycle.
    fn pass_stream_capacity(&self, report: &mut Vec<Diagnostic>) {
        // Adjacency over tasks via can-fill stream edges, in id order
        // for deterministic cycle witnesses.
        let mut producers: HashMap<DataId, Vec<TaskId>> = HashMap::new();
        let mut consumers: HashMap<DataId, Vec<TaskId>> = HashMap::new();
        for node in self.graph.nodes() {
            for d in node.spec().stream_writes() {
                producers.entry(d).or_default().push(node.id());
            }
            for d in node.spec().stream_reads() {
                consumers.entry(d).or_default().push(node.id());
            }
        }
        let mut adj: HashMap<TaskId, Vec<(DataId, TaskId)>> = HashMap::new();
        let mut data: Vec<DataId> = producers.keys().copied().collect();
        data.sort();
        for d in data {
            if !self.stream_info_of(d).can_fill() {
                continue;
            }
            let Some(readers) = consumers.get(&d) else {
                continue;
            };
            for &p in &producers[&d] {
                for &c in readers {
                    adj.entry(p).or_default().push((d, c));
                }
            }
        }

        // Iterative coloured DFS; the first back edge yields the cycle.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.graph.len();
        let mut color = vec![Color::White; n];
        let mut roots: Vec<TaskId> = adj.keys().copied().collect();
        roots.sort();
        for root in roots {
            if color[root.index()] != Color::White {
                continue;
            }
            // Path of (task, edge-to-next) pairs currently on the stack.
            let mut path: Vec<(TaskId, usize)> = vec![(root, 0)];
            color[root.index()] = Color::Grey;
            while let Some(&mut (task, ref mut next)) = path.last_mut() {
                let edges = adj.get(&task).map(Vec::as_slice).unwrap_or(&[]);
                let Some(&(via, succ)) = edges.get(*next) else {
                    color[task.index()] = Color::Black;
                    path.pop();
                    continue;
                };
                *next += 1;
                match color[succ.index()] {
                    Color::White => {
                        color[succ.index()] = Color::Grey;
                        path.push((succ, 0));
                    }
                    Color::Grey => {
                        // Cycle: from `succ`'s position in the path
                        // through `task`, closed by edge `via`.
                        let start = path
                            .iter()
                            .position(|&(t, _)| t == succ)
                            .expect("grey tasks are on the path");
                        let mut witness = String::new();
                        let mut cycle_tasks = Vec::new();
                        for window in path[start..].windows(2) {
                            let (t, taken) = window[0];
                            let (d, _) = adj[&t][taken - 1];
                            cycle_tasks.push(t);
                            witness.push_str(&self.stream_edge_witness(t, d));
                        }
                        let (last, _) = *path.last().expect("non-empty path");
                        cycle_tasks.push(last);
                        witness.push_str(&self.stream_edge_witness(last, via));
                        witness.push_str(&format!("{succ} '{}'", self.task_name(succ)));
                        report.push(
                            Diagnostic::new(
                                Lint::StreamCapacityDeadlock,
                                format!(
                                    "cycle of {} bounded stream edge(s) can fill and park \
                                     every task in it",
                                    cycle_tasks.len()
                                ),
                            )
                            .with_task(succ)
                            .with_data(via)
                            .with_witness(witness)
                            .with_suggestion(
                                "raise one cycle stream's capacity to at least its expected \
                                 element count (or declare it unbounded with capacity 0 in \
                                 the bundle's streams table) so that edge can never fill",
                            ),
                        );
                        return;
                    }
                    Color::Black => {}
                }
            }
        }
    }

    /// One `task --stream(cap…)-->` witness segment.
    fn stream_edge_witness(&self, task: TaskId, d: DataId) -> String {
        let info = self.stream_info_of(d);
        let expects = if info.expected_elements == 0 {
            "?".to_string()
        } else {
            info.expected_elements.to_string()
        };
        format!(
            "{task} '{}' --{}(cap {}, expects {})--> ",
            self.task_name(task),
            self.data_name(d),
            info.capacity,
            expects
        )
    }

    /// Dead-output pass: a produced version nothing consumes and that
    /// is not the datum's final version (the final version is presumed
    /// to be retrieved by the client).
    fn pass_dead_outputs(&self, report: &mut Vec<Diagnostic>) {
        let consumed: HashSet<VersionedData> = self
            .graph
            .nodes()
            .flat_map(|n| n.consumed().iter().copied())
            .collect();
        let mut final_version: HashMap<DataId, u32> = HashMap::new();
        for node in self.graph.nodes() {
            for vd in node.produced() {
                let e = final_version.entry(vd.data).or_insert(0);
                *e = (*e).max(vd.version.as_u32());
            }
        }
        for node in self.graph.nodes() {
            for vd in node.produced() {
                if consumed.contains(vd) {
                    continue;
                }
                if final_version.get(&vd.data).copied() == Some(vd.version.as_u32()) {
                    continue;
                }
                let name = self.data_name(vd.data);
                report.push(
                    Diagnostic::new(
                        Lint::DeadOutput,
                        format!(
                            "task '{}' writes {name} ({vd}) but no task reads it and a \
                             later write supersedes it",
                            node.spec().name()
                        ),
                    )
                    .with_task(node.id())
                    .with_data(vd.data)
                    .with_witness(format!("{} produces {vd}; no consumer", node.id()))
                    .with_suggestion(format!(
                        "drop the Out parameter on '{}' or add a reader before the next write",
                        node.spec().name()
                    )),
                );
            }
        }
    }

    /// Write-write-hazard pass: consecutive writers of the same datum
    /// with no ordering path between them.
    fn pass_write_write_hazards(&self, report: &mut Vec<Diagnostic>) {
        let mut writers: HashMap<DataId, Vec<(u32, TaskId)>> = HashMap::new();
        for node in self.graph.nodes() {
            for vd in node.produced() {
                writers
                    .entry(vd.data)
                    .or_default()
                    .push((vd.version.as_u32(), node.id()));
            }
        }
        let mut data: Vec<DataId> = writers.keys().copied().collect();
        data.sort();
        for d in data {
            let list = writers.get_mut(&d).expect("key from map");
            list.sort();
            for pair in list.windows(2) {
                let (va, ta) = pair[0];
                let (vb, tb) = pair[1];
                if ta == tb || self.reaches(ta, tb) {
                    continue;
                }
                let name = self.data_name(d);
                report.push(
                    Diagnostic::new(
                        Lint::WriteWriteHazard,
                        format!(
                            "tasks '{}' and '{}' both write {name} with no ordering \
                             edge between them",
                            self.task_name(ta),
                            self.task_name(tb)
                        ),
                    )
                    .with_task(tb)
                    .with_data(d)
                    .with_witness(format!(
                        "{ta} '{}' writes {name}@v{va}; {tb} '{}' writes {name}@v{vb}; \
                         no path {ta} -> {tb}",
                        self.task_name(ta),
                        self.task_name(tb)
                    ))
                    .with_suggestion(format!(
                        "make '{}' access {name} as InOut (or read it) so the writes \
                         are ordered, or write distinct data",
                        self.task_name(tb)
                    )),
                );
            }
        }
    }

    /// Schedulability pass: advisory makespan lower bound from the
    /// critical path and the platform's aggregate throughput.
    fn pass_schedulability(&self, report: &mut Vec<Diagnostic>) {
        if self.graph.is_empty() || self.nodes.is_empty() {
            return;
        }
        let analysis = GraphAnalysis::new(&self.graph);
        let weight = |t: TaskId| self.weight_of(t);
        let cp = analysis.critical_path(weight);
        let total = analysis.total_weight(weight);
        let cores: u64 = self
            .nodes
            .iter()
            .map(|n| u64::from(n.capacity.cores()))
            .sum();
        let throughput_bound = if cores > 0 { total / cores as f64 } else { 0.0 };
        let bound = cp.length.max(throughput_bound);
        let path_names: Vec<String> = cp
            .tasks
            .iter()
            .take(8)
            .map(|t| self.task_name(*t).to_string())
            .collect();
        let mut witness = format!(
            "critical path ({} tasks): {}",
            cp.tasks.len(),
            path_names.join(" -> ")
        );
        if cp.tasks.len() > 8 {
            witness.push_str(" -> ...");
        }
        let suggestion = if cp.length >= throughput_bound {
            "the critical path dominates: adding nodes cannot improve the bound; \
             shorten the longest chain"
                .to_string()
        } else {
            "aggregate throughput dominates: adding cores/nodes lowers the bound".to_string()
        };
        report.push(
            Diagnostic::new(
                Lint::SchedulabilityBound,
                format!(
                    "makespan lower bound {bound:.3}s (critical path {:.3}s, total work \
                     {total:.3}s over {cores} cores = {throughput_bound:.3}s)",
                    cp.length
                ),
            )
            .with_witness(witness)
            .with_suggestion(suggestion),
        );
    }

    /// Is there a directed path `from -> ... -> to`?
    fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        let mut seen: HashSet<TaskId> = HashSet::new();
        let mut stack = vec![from];
        while let Some(t) = stack.pop() {
            for &s in self.graph.successors(t) {
                if s == to {
                    return true;
                }
                // In access-processor graphs edges point forward, so
                // anything past `to` cannot reach it; keep the check
                // conservative for crafted graphs by only pruning when
                // acyclicity is plausible (seen-set still bounds us).
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        false
    }
}

/// Builds the verifier's node list from a platform description.
pub fn lint_nodes(platform: &Platform) -> Vec<LintNode> {
    platform
        .nodes()
        .iter()
        .map(|n| LintNode {
            name: n.name().to_string(),
            capacity: n.capacity().clone(),
        })
        .collect()
}

/// Per-task unsatisfiable-constraints check, shared by the whole-graph
/// pass and the runtimes' strict submit-time mode.
///
/// Returns `None` when some node (or enough nodes, for multi-node
/// tasks) can host the task.
pub fn check_task_constraints(
    task: TaskId,
    task_name: &str,
    req: &Constraints,
    nodes: &[LintNode],
) -> Option<Diagnostic> {
    let satisfying = nodes.iter().filter(|n| n.capacity.satisfies(req)).count() as u32;
    if satisfying >= req.required_nodes() {
        return None;
    }
    let mut d = if nodes.is_empty() {
        Diagnostic::new(
            Lint::UnsatisfiableConstraints,
            format!("task '{task_name}' cannot run: the platform has no nodes"),
        )
        .with_suggestion("add nodes to the platform")
    } else if req.is_multi_node() && satisfying > 0 {
        Diagnostic::new(
            Lint::UnsatisfiableConstraints,
            format!(
                "task '{task_name}' needs {} whole nodes but only {satisfying} of {} \
                 satisfy its per-node constraints",
                req.required_nodes(),
                nodes.len()
            ),
        )
        .with_suggestion(format!(
            "add satisfying nodes or lower the node count below {}",
            req.required_nodes() + 1
        ))
    } else {
        // Nearest miss: the node failing the fewest dimensions.
        let (best, misses) = nodes
            .iter()
            .map(|n| (n, unmet_dimensions(&n.capacity, req)))
            .min_by_key(|(_, m)| m.len())
            .expect("nodes is non-empty");
        let mut diag = Diagnostic::new(
            Lint::UnsatisfiableConstraints,
            format!(
                "no node can host task '{task_name}'; nearest miss is '{}' failing {} \
                 requirement(s)",
                best.name,
                misses.len()
            ),
        )
        .with_suggestion(format!(
            "relax the task's constraints or upgrade node '{}' ({})",
            best.name,
            misses
                .iter()
                .map(|m| m.split(':').next().unwrap_or(m))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for m in misses {
            diag = diag.with_witness(format!("'{}': {m}", best.name));
        }
        diag
    };
    d = d.with_task(task);
    Some(d)
}

/// The constraint dimensions `cap` fails to meet, as human-readable
/// `need X, node has Y` lines.
fn unmet_dimensions(cap: &NodeCapacity, req: &Constraints) -> Vec<String> {
    let mut out = Vec::new();
    if cap.cores() < req.required_compute_units() {
        out.push(format!(
            "compute_units: need {}, node has {}",
            req.required_compute_units(),
            cap.cores()
        ));
    }
    if cap.memory_mb() < req.required_memory_mb() {
        out.push(format!(
            "memory_mb: need {}, node has {}",
            req.required_memory_mb(),
            cap.memory_mb()
        ));
    }
    if cap.disk_mb() < req.required_disk_mb() {
        out.push(format!(
            "disk_mb: need {}, node has {}",
            req.required_disk_mb(),
            cap.disk_mb()
        ));
    }
    if cap.gpus() < req.required_gpus() {
        out.push(format!(
            "gpus: need {}, node has {}",
            req.required_gpus(),
            cap.gpus()
        ));
    }
    let missing: Vec<&str> = req
        .required_software()
        .iter()
        .filter(|p| !cap.software().contains(*p))
        .map(|p| p.as_str())
        .collect();
    if !missing.is_empty() {
        out.push(format!("software: missing {}", missing.join(", ")));
    }
    if let Some(a) = req.required_arch() {
        if a != cap.arch() {
            out.push(format!("arch: need {a}, node is {}", cap.arch()));
        }
    }
    out
}

/// Builds the read-without-producer diagnostic, shared by the
/// whole-graph pass and `LocalRuntime`'s strict submit-time mode.
pub fn read_without_producer(
    task: TaskId,
    task_name: &str,
    data: DataId,
    data_name: &str,
) -> Diagnostic {
    Diagnostic::new(
        Lint::ReadWithoutProducer,
        format!(
            "task '{task_name}' reads {data_name} ({data}@v0) but no task produces it \
             and no initial value is provided"
        ),
    )
    .with_task(task)
    .with_data(data)
    .with_witness(format!("{task} consumes {data}@v0"))
    .with_suggestion(format!(
        "provide an initial value for {data_name} (set_initial) or submit a producer first"
    ))
}

/// Returns `true` if the report contains any `Error`-severity finding.
pub fn has_errors(report: &[Diagnostic]) -> bool {
    report.iter().any(Diagnostic::is_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use continuum_dag::{AccessProcessor, TaskSpec};

    fn bundle_of(ap: AccessProcessor) -> LintBundle {
        let n = ap.catalog().len();
        let names = (0..n)
            .map(|i| {
                ap.catalog()
                    .name(DataId::from_raw(i as u64))
                    .unwrap_or("?")
                    .to_string()
            })
            .collect();
        let (_, graph) = ap.into_parts();
        LintBundle::new(graph)
            .with_data_names(names)
            .with_nodes(vec![LintNode {
                name: "n0".into(),
                capacity: NodeCapacity::new(4, 8_192),
            }])
    }

    #[test]
    fn clean_pipeline_yields_only_info() {
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        let y = ap.new_data("y");
        ap.register(TaskSpec::new("a").output(x)).unwrap();
        ap.register(TaskSpec::new("b").input(x).output(y)).unwrap();
        let report = bundle_of(ap).verify();
        assert!(!has_errors(&report), "{report:?}");
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].lint, Lint::SchedulabilityBound);
        assert_eq!(report[0].severity, Severity::Info);
    }

    #[test]
    fn unsatisfiable_constraints_names_nearest_miss() {
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        ap.register(TaskSpec::new("big").output(x)).unwrap();
        let bundle = bundle_of(ap).with_constraints(vec![Constraints::new()
            .compute_units(2)
            .memory_mb(1_000_000)
            .software("cuda")]);
        let report = bundle.verify();
        let d = report
            .iter()
            .find(|d| d.lint == Lint::UnsatisfiableConstraints)
            .expect("lint fires");
        assert!(d.is_error());
        assert_eq!(d.task, Some(TaskId::from_raw(0)));
        assert!(d.message.contains("nearest miss is 'n0'"), "{}", d.message);
        // Cores are enough (4 >= 2): only memory + software fail.
        assert_eq!(d.witness.len(), 2, "{:?}", d.witness);
        assert!(d.witness[0].contains("memory_mb: need 1000000"));
        assert!(d.witness[1].contains("software: missing cuda"));
    }

    #[test]
    fn multi_node_counts_satisfying_nodes() {
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        ap.register(TaskSpec::new("mpi").output(x)).unwrap();
        let bundle = bundle_of(ap).with_constraints(vec![Constraints::new().nodes(3)]);
        let report = bundle.verify();
        let d = report
            .iter()
            .find(|d| d.lint == Lint::UnsatisfiableConstraints)
            .expect("lint fires");
        assert!(d.message.contains("needs 3 whole nodes"), "{}", d.message);
    }

    #[test]
    fn read_without_producer_unless_initial() {
        let mut ap = AccessProcessor::new();
        let raw = ap.new_data("raw");
        let out = ap.new_data("out");
        ap.register(TaskSpec::new("t").input(raw).output(out))
            .unwrap();
        let bundle = bundle_of(ap);
        let report = bundle.verify();
        let d = report
            .iter()
            .find(|d| d.lint == Lint::ReadWithoutProducer)
            .expect("lint fires");
        assert!(d.is_error());
        assert_eq!(d.data, Some(raw));
        assert!(d.message.contains("'t' reads raw"), "{}", d.message);
        // Declaring the initial value silences it.
        let report = bundle.with_initial_data(vec![raw]).verify();
        assert!(!has_errors(&report), "{report:?}");
    }

    #[test]
    fn dead_output_flags_superseded_unread_version() {
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        ap.register(TaskSpec::new("w1").output(x)).unwrap();
        ap.register(TaskSpec::new("w2").output(x)).unwrap();
        let report = bundle_of(ap).verify();
        let d = report
            .iter()
            .find(|d| d.lint == Lint::DeadOutput)
            .expect("lint fires");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.task, Some(TaskId::from_raw(0)), "w1's version is dead");
        assert!(d.message.contains("'w1' writes x"), "{}", d.message);
        // The final version (w2's) is presumed client-read: only one
        // dead-output finding.
        assert_eq!(
            report.iter().filter(|d| d.lint == Lint::DeadOutput).count(),
            1
        );
    }

    #[test]
    fn write_write_hazard_on_unordered_writers() {
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        ap.register(TaskSpec::new("w1").output(x)).unwrap();
        ap.register(TaskSpec::new("w2").output(x)).unwrap();
        let report = bundle_of(ap).verify();
        let d = report
            .iter()
            .find(|d| d.lint == Lint::WriteWriteHazard)
            .expect("lint fires");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.task, Some(TaskId::from_raw(1)));
        assert_eq!(d.data, Some(x));
        assert!(d.witness[0].contains("no path t0 -> t1"), "{:?}", d.witness);
    }

    #[test]
    fn ordered_writers_are_clean() {
        // InOut chains order every write: no hazard, no dead output.
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        ap.register(TaskSpec::new("w1").output(x)).unwrap();
        ap.register(TaskSpec::new("w2").inout(x)).unwrap();
        let report = bundle_of(ap).verify();
        assert!(
            report.iter().all(|d| d.lint == Lint::SchedulabilityBound),
            "{report:?}"
        );
    }

    #[test]
    fn unclosed_stream_reader_is_an_error() {
        let mut ap = AccessProcessor::new();
        let s = ap.new_data("frames");
        let sink = ap.register(TaskSpec::new("sink").stream_in(s)).unwrap();
        let report = bundle_of(ap).verify();
        let d = report
            .iter()
            .find(|d| d.lint == Lint::UnclosedStream)
            .expect("lint fires");
        assert!(d.is_error());
        assert_eq!(d.task, Some(sink));
        assert_eq!(d.data, Some(s));
        assert!(d.message.contains("frames"), "{}", d.message);
    }

    #[test]
    fn reader_before_writer_is_a_warning() {
        let mut ap = AccessProcessor::new();
        let s = ap.new_data("frames");
        let sink = ap.register(TaskSpec::new("sink").stream_in(s)).unwrap();
        ap.register(TaskSpec::new("sensor").stream_out(s)).unwrap();
        let report = bundle_of(ap).verify();
        let d = report
            .iter()
            .find(|d| d.lint == Lint::ReaderBeforeWriter)
            .expect("lint fires");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.task, Some(sink));
        assert_eq!(d.data, Some(s));
        assert!(
            d.witness[0].contains("'sensor'"),
            "witness names the late producer: {:?}",
            d.witness
        );
        // No unclosed-stream finding: the stream does have a writer.
        assert_eq!(
            report
                .iter()
                .filter(|d| d.lint == Lint::UnclosedStream)
                .count(),
            0
        );
    }

    #[test]
    fn well_ordered_stream_pipeline_is_clean() {
        let mut ap = AccessProcessor::new();
        let s = ap.new_data("frames");
        ap.register(TaskSpec::new("sensor").stream_out(s)).unwrap();
        ap.register(TaskSpec::new("sink").stream_in(s)).unwrap();
        let report = bundle_of(ap).verify();
        assert!(
            report.iter().all(|d| d.lint == Lint::SchedulabilityBound),
            "{report:?}"
        );
    }

    #[test]
    fn schedulability_reports_both_bounds() {
        let mut ap = AccessProcessor::new();
        let x = ap.new_data("x");
        ap.register(TaskSpec::new("a").output(x)).unwrap();
        ap.register(TaskSpec::new("b").inout(x)).unwrap();
        let bundle = bundle_of(ap).with_weights(vec![2.0, 3.0]);
        let report = bundle.verify();
        let d = &report[0];
        assert_eq!(d.lint, Lint::SchedulabilityBound);
        // Chain of 2+3s on 4 cores: CP bound 5s dominates 5/4s.
        assert!(d.message.contains("lower bound 5.000s"), "{}", d.message);
        assert!(d.witness[0].contains("a -> b"), "{:?}", d.witness);
    }

    #[test]
    fn empty_graph_or_platform_yields_nothing() {
        let ap = AccessProcessor::new();
        let (_, graph) = ap.into_parts();
        assert!(LintBundle::new(graph).verify().is_empty());
    }
}
