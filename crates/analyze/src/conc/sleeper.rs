//! Model of the executor's counted-sleeper wake/sleep protocol.
//!
//! Mirrors `continuum-runtime`'s `LocalRuntime` worker loop at the
//! granularity of its atomic operations:
//!
//! * Workers advertise themselves in an atomic `searching` counter
//!   while scanning for work; a scan that finds a pending item takes
//!   it, otherwise the worker stops searching and goes to sleep:
//!   lock the sleep mutex, `count += 1`, publish `sleepers = count`
//!   (a separate atomic store — the stale-read window is modeled),
//!   **re-check `pending` under the lock**, and only then wait on the
//!   condvar (which atomically releases the mutex).
//! * The producer raises `pending` *before* reading `searching` /
//!   `sleepers`; it skips the notification only when a worker is
//!   already searching (that worker is guaranteed to either take the
//!   item or re-check under the lock) or when nobody sleeps.
//!
//! The safety theorem is lost-wakeup freedom: in every reachable
//! quiescent state all produced items have been taken. The
//! [`SleeperVariant::NoRecheck`] variant drops the re-check — the
//! classic bug — and the explorer finds the resulting deadlock.

use super::explore::Model;

/// Which worker body to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleeperVariant {
    /// The shipped protocol: re-check `pending` after registering as a
    /// sleeper, before waiting.
    Correct,
    /// Deliberately broken: register and wait without re-checking.
    /// Exists to prove the harness detects lost wakeups.
    NoRecheck,
}

/// Program counter of one worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Wpc {
    /// About to start a scan.
    Idle,
    /// `searching` incremented; about to observe `pending`.
    Scanning,
    /// Observed no work; about to decrement `searching`.
    StopSearch,
    /// Wants the sleep mutex.
    SleepLock,
    /// Holds the mutex; about to `count += 1`.
    SleepInc,
    /// Holds the mutex; about to publish `sleepers = count`.
    SleepStore,
    /// Holds the mutex; about to re-check `pending` (skipped by
    /// [`SleeperVariant::NoRecheck`]).
    SleepCheck,
    /// Waiting on the condvar; mutex released.
    Waiting,
    /// Notified; must re-acquire the mutex to return from `wait`.
    Reacquire,
    /// Holds the mutex; about to deregister and resume scanning.
    WakeDone,
}

/// Program counter of the producer thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ppc {
    /// About to raise `pending` for the next item.
    Add,
    /// About to read `searching`/`sleepers` and decide whether to wake.
    Wake,
    /// Decided to wake; wants the sleep mutex.
    Lock,
    /// Holds the mutex; about to `notify_one`.
    Notify,
    /// All items produced.
    Done,
}

/// Who holds the sleep mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Lock {
    Free,
    Worker(u8),
    Producer,
}

/// One snapshot of the protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SleeperState {
    workers: Vec<Wpc>,
    producer: Ppc,
    lock: Lock,
    /// Items produced but not yet taken (the executor's `pending`).
    pending: u8,
    produced: u8,
    taken: u8,
    /// Mutex-guarded sleeper count.
    count: u8,
    /// Atomic mirror of `count` read by the producer without the lock.
    sleepers: u8,
    /// Atomic count of workers currently scanning.
    searching: u8,
}

/// The counted-sleeper model: `workers` worker threads, one producer
/// submitting `items` work items.
#[derive(Debug, Clone, Copy)]
pub struct SleeperModel {
    /// Number of worker threads.
    pub workers: u8,
    /// Number of items the producer submits.
    pub items: u8,
    /// Worker-body variant.
    pub variant: SleeperVariant,
}

impl SleeperModel {
    /// The producer's next pc after finishing a wake decision.
    fn producer_next(&self, produced: u8) -> Ppc {
        if produced < self.items {
            Ppc::Add
        } else {
            Ppc::Done
        }
    }
}

impl Model for SleeperModel {
    type State = SleeperState;

    fn initial(&self) -> SleeperState {
        SleeperState {
            workers: vec![Wpc::Idle; self.workers as usize],
            producer: if self.items > 0 { Ppc::Add } else { Ppc::Done },
            lock: Lock::Free,
            pending: 0,
            produced: 0,
            taken: 0,
            count: 0,
            sleepers: 0,
            searching: 0,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn successors(&self, s: &SleeperState, out: &mut Vec<SleeperState>) {
        // Worker steps.
        for (i, pc) in s.workers.iter().copied().enumerate() {
            let me = Lock::Worker(i as u8);
            let mut n = s.clone();
            match pc {
                Wpc::Idle => {
                    n.searching += 1;
                    n.workers[i] = Wpc::Scanning;
                }
                Wpc::Scanning => {
                    if s.pending > 0 {
                        // Found work: take it, run it, scan again.
                        n.pending -= 1;
                        n.taken += 1;
                        n.searching -= 1;
                        n.workers[i] = Wpc::Idle;
                    } else {
                        n.workers[i] = Wpc::StopSearch;
                    }
                }
                Wpc::StopSearch => {
                    n.searching -= 1;
                    n.workers[i] = Wpc::SleepLock;
                }
                Wpc::SleepLock => {
                    if s.lock != Lock::Free {
                        continue; // blocked
                    }
                    n.lock = me;
                    n.workers[i] = Wpc::SleepInc;
                }
                Wpc::SleepInc => {
                    n.count += 1;
                    n.workers[i] = Wpc::SleepStore;
                }
                Wpc::SleepStore => {
                    n.sleepers = n.count;
                    n.workers[i] = match self.variant {
                        SleeperVariant::Correct => Wpc::SleepCheck,
                        // Broken: wait without re-checking pending.
                        SleeperVariant::NoRecheck => {
                            n.lock = Lock::Free;
                            Wpc::Waiting
                        }
                    };
                }
                Wpc::SleepCheck => {
                    if s.pending == 0 {
                        // wait() atomically releases the mutex.
                        n.lock = Lock::Free;
                        n.workers[i] = Wpc::Waiting;
                    } else {
                        // Work arrived between the scan and the
                        // registration: bail out and rescan.
                        n.count -= 1;
                        n.sleepers = n.count;
                        n.lock = Lock::Free;
                        n.workers[i] = Wpc::Idle;
                    }
                }
                Wpc::Waiting => continue, // only the producer's notify moves us
                Wpc::Reacquire => {
                    if s.lock != Lock::Free {
                        continue; // blocked re-acquiring inside wait()
                    }
                    n.lock = me;
                    n.workers[i] = Wpc::WakeDone;
                }
                Wpc::WakeDone => {
                    n.count -= 1;
                    n.sleepers = n.count;
                    n.lock = Lock::Free;
                    n.workers[i] = Wpc::Idle;
                }
            }
            out.push(n);
        }
        // Producer steps.
        match s.producer {
            Ppc::Add => {
                let mut n = s.clone();
                n.pending += 1;
                n.produced += 1;
                n.producer = Ppc::Wake;
                out.push(n);
            }
            Ppc::Wake => {
                let mut n = s.clone();
                // Deficit-based skip: a searching worker is guaranteed
                // to take the item or re-check under the lock; with no
                // registered sleeper there is nobody to notify.
                n.producer = if s.searching > 0 || s.sleepers == 0 {
                    self.producer_next(s.produced)
                } else {
                    Ppc::Lock
                };
                out.push(n);
            }
            Ppc::Lock => {
                if s.lock == Lock::Free {
                    let mut n = s.clone();
                    n.lock = Lock::Producer;
                    n.producer = Ppc::Notify;
                    out.push(n);
                }
            }
            Ppc::Notify => {
                // notify_one wakes a nondeterministically-chosen waiter
                // (or nobody, when registered sleepers have not reached
                // the condvar yet).
                let waiting: Vec<usize> = s
                    .workers
                    .iter()
                    .enumerate()
                    .filter(|(_, pc)| **pc == Wpc::Waiting)
                    .map(|(i, _)| i)
                    .collect();
                if waiting.is_empty() {
                    let mut n = s.clone();
                    n.lock = Lock::Free;
                    n.producer = self.producer_next(s.produced);
                    out.push(n);
                } else {
                    for i in waiting {
                        let mut n = s.clone();
                        n.workers[i] = Wpc::Reacquire;
                        n.lock = Lock::Free;
                        n.producer = self.producer_next(s.produced);
                        out.push(n);
                    }
                }
            }
            Ppc::Done => {}
        }
    }

    fn is_terminal(&self, s: &SleeperState) -> bool {
        s.producer == Ppc::Done
            && s.pending == 0
            && s.taken == self.items
            && s.workers.iter().all(|pc| *pc == Wpc::Waiting)
    }

    fn check(&self, s: &SleeperState) -> Result<(), String> {
        if s.produced != s.pending + s.taken {
            return Err(format!(
                "item conservation broken: produced {} != pending {} + taken {}",
                s.produced, s.pending, s.taken
            ));
        }
        if s.count > self.workers || s.searching > self.workers {
            return Err(format!(
                "counter out of range: count {} searching {}",
                s.count, s.searching
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conc::explore::{explore, Violation};

    #[test]
    fn correct_protocol_is_lost_wakeup_free_2x2() {
        let m = SleeperModel {
            workers: 2,
            items: 2,
            variant: SleeperVariant::Correct,
        };
        let r = explore(&m, 2_000_000).expect("no lost wakeups");
        assert!(r.states > 100, "exploration is non-trivial: {r:?}");
        assert!(r.terminals >= 1, "quiescence is reachable: {r:?}");
    }

    #[test]
    fn correct_protocol_is_lost_wakeup_free_3_workers() {
        let m = SleeperModel {
            workers: 3,
            items: 2,
            variant: SleeperVariant::Correct,
        };
        explore(&m, 5_000_000).expect("no lost wakeups");
    }

    #[test]
    fn missing_recheck_loses_a_wakeup() {
        let m = SleeperModel {
            workers: 2,
            items: 2,
            variant: SleeperVariant::NoRecheck,
        };
        let e = explore(&m, 2_000_000).unwrap_err();
        match e {
            Violation::Deadlock { ref state, .. } => {
                assert!(state.contains("pending: "), "{e}");
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn zero_items_is_trivially_quiescent() {
        let m = SleeperModel {
            workers: 1,
            items: 0,
            variant: SleeperVariant::Correct,
        };
        let r = explore(&m, 10_000).expect("trivial");
        assert!(r.terminals >= 1);
    }
}
