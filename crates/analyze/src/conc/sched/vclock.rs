//! Vector clocks for the schedule explorer.
//!
//! Two *separate* clock systems are layered over each execution (see
//! `DESIGN.md` §15): the happens-before clocks of the race detector,
//! which join only on real synchronization edges (mutex release →
//! acquire, atomic store → load, notify → resume, unpark → park), and
//! the DPOR clocks, which join on every *dependent* operation pair and
//! exist only to decide which earlier step a new step could have been
//! reordered with. Conflating the two either misses races (HB too
//! coarse) or prunes unsoundly (DPOR too coarse), so both use this one
//! `VClock` type but are updated by disjoint code paths.

/// A fixed-width vector clock over the scenario's thread ids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock for `n` threads.
    pub fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Component for thread `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.0[tid]
    }

    /// Advances `tid`'s own component by one local step.
    pub fn tick(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    /// Componentwise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise `self ≤ other` — i.e. everything `self` has seen,
    /// `other` has seen too (the happens-before test).
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

impl std::fmt::Display for VClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_componentwise_max_and_le_is_pointwise() {
        let mut a = VClock::new(3);
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new(3);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert_eq!(j.get(2), 0);
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b) && !b.le(&a), "neither dominates: {a} vs {b}");
    }
}
