//! Schedule exploration over **real code**: a dynamic partial-order
//! reduction (DPOR) model checker that runs actual runtime protocols —
//! the task-cell handshake, the oneshot channel, the bounded stream
//! channel, the counted sleeper, the work-stealing deque — under a
//! deterministic scheduler and enumerates their thread interleavings.
//!
//! Where the sibling explicit-state models ([`super::explore`]) check
//! a hand-written *abstraction* of each protocol, this module checks
//! the protocol's *implementation*: scenario threads execute the real
//! `continuum-runtime` / `continuum-platform` code, whose sync
//! primitives (built with the `conc-instrument` feature) report every
//! operation to an installed controller. The scheduler sequences the
//! threads one operation at a time, backtracks, and re-runs the
//! scenario under a different interleaving until the reduced schedule
//! space is exhausted.
//!
//! Three layers (see `DESIGN.md` §15):
//!
//! * [`controller`] — the rendezvous protocol that stops every thread
//!   at its next sync operation and releases exactly one per decision;
//! * [`explore`] — the DFS driver with sleep sets and DPOR backtracking
//!   ([`explore_sched`]), plus witness replay ([`replay_schedule`]);
//! * [`vclock`] — vector clocks, used separately for DPOR dependence
//!   tracking and for the happens-before data-race detector that flags
//!   unsynchronized conflicting accesses to
//!   [`RaceCell`](continuum_platform::sync::RaceCell) payloads.
//!
//! Every violation carries a **witness schedule**: the exact sequence
//! of thread choices that reproduces it, replayable with
//! [`replay_schedule`] or `model_check --replay`.

pub mod controller;
pub mod explore;
pub mod vclock;

pub use explore::{explore_sched, replay_schedule, ReplayReport};
pub use vclock::VClock;

/// One concrete multi-threaded scenario instance: the thread bodies to
/// run under the controller plus an optional final-state invariant.
pub struct Scenario {
    /// Thread bodies, indexed by tid. Each runs real (instrumented)
    /// code; panics are caught and reported as violations.
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Checked after all threads complete cleanly; `Err` is an
    /// invariant violation with the run's schedule as witness.
    pub check: Option<Box<dyn FnOnce() -> Result<(), String> + Send>>,
}

/// A named, repeatable exploration target (a scenario factory): `make`
/// must build a structurally identical scenario every call, since the
/// explorer re-runs it once per schedule.
pub struct SchedTarget {
    /// Target name as shown by `model_check` (e.g. `sched::oneshot`).
    pub name: &'static str,
    /// One-line description of the protocol and property.
    pub about: &'static str,
    /// Whether the target is expected to verify clean or to contain a
    /// planted bug the explorer must find.
    pub expect: Expect,
    /// Scenario factory.
    pub make: Box<dyn Fn() -> Scenario + Send + Sync>,
}

/// Expected exploration outcome for a [`SchedTarget`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// All schedules must complete with no violation.
    Clean,
    /// A planted data race must be detected (CI asserts it stays
    /// detected).
    Race,
}

/// Exploration options.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOpts {
    /// Hard cap on executed runs (explored + pruned-redundant); hitting
    /// it yields [`SchedViolation::Budget`], so an "exhausted" result
    /// is always an honest one.
    pub max_schedules: u64,
    /// Schedule-space pruning algorithm.
    pub pruning: Pruning,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            max_schedules: 100_000,
            pruning: Pruning::Dpor,
        }
    }
}

/// Pruning algorithm for the DFS over schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pruning {
    /// Sleep sets + dynamic partial-order reduction (the default).
    Dpor,
    /// Every enabled thread is tried at every choice point. Only used
    /// to measure the DPOR pruning ratio.
    Naive,
}

/// Counters from one exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Complete schedules executed to termination.
    pub schedules: u64,
    /// Runs cut short by sleep sets (provably redundant prefixes).
    pub redundant: u64,
    /// Total scheduling decisions across all runs.
    pub steps: u64,
    /// Longest run, in decisions.
    pub max_depth: usize,
}

/// A witness: the sequence of tids chosen at each scheduling decision.
pub type Schedule = Vec<usize>;

/// Renders a schedule as the comma-joined seed string accepted by
/// [`replay_schedule`] and `model_check --replay`.
pub fn format_schedule(s: &[usize]) -> String {
    s.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a comma-joined seed string back into a schedule.
///
/// # Errors
///
/// A description of the first non-numeric component.
pub fn parse_schedule(s: &str) -> Result<Schedule, String> {
    s.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|e| format!("bad schedule component {part:?}: {e}"))
        })
        .collect()
}

/// A property violation found by exploration, with its witness.
#[derive(Clone, Debug)]
pub enum SchedViolation {
    /// The happens-before detector flagged an unsynchronized
    /// conflicting access pair.
    Race {
        /// Human-readable description of the conflicting accesses.
        detail: String,
        /// Schedule reproducing the race.
        witness: Schedule,
    },
    /// Quiescence with live threads: no enabled operation but not all
    /// threads done (for wait/wake protocols this is a lost wakeup).
    Deadlock {
        /// Schedule reproducing the deadlock.
        witness: Schedule,
    },
    /// A scenario thread panicked.
    Panic {
        /// The panic message, prefixed with the thread id.
        detail: String,
        /// Schedule reproducing the panic.
        witness: Schedule,
    },
    /// The scenario's final-state check failed.
    Invariant {
        /// The check's error message.
        detail: String,
        /// Schedule reproducing the bad final state.
        witness: Schedule,
    },
    /// The run budget was exhausted before the schedule space was.
    Budget {
        /// The configured [`ExploreOpts::max_schedules`].
        limit: u64,
    },
}

impl SchedViolation {
    /// The witness schedule, if this violation kind carries one.
    pub fn witness(&self) -> Option<&Schedule> {
        match self {
            SchedViolation::Race { witness, .. }
            | SchedViolation::Deadlock { witness }
            | SchedViolation::Panic { witness, .. }
            | SchedViolation::Invariant { witness, .. } => Some(witness),
            SchedViolation::Budget { .. } => None,
        }
    }
}

impl std::fmt::Display for SchedViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedViolation::Race { detail, witness } => {
                write!(
                    f,
                    "data race: {detail} [witness {}]",
                    format_schedule(witness)
                )
            }
            SchedViolation::Deadlock { witness } => {
                write!(
                    f,
                    "deadlock (lost wakeup) [witness {}]",
                    format_schedule(witness)
                )
            }
            SchedViolation::Panic { detail, witness } => {
                write!(f, "panic: {detail} [witness {}]", format_schedule(witness))
            }
            SchedViolation::Invariant { detail, witness } => {
                write!(
                    f,
                    "invariant failed: {detail} [witness {}]",
                    format_schedule(witness)
                )
            }
            SchedViolation::Budget { limit } => {
                write!(
                    f,
                    "schedule budget of {limit} runs exhausted before the space was"
                )
            }
        }
    }
}

/// Result of one exploration: counters plus the first violation found
/// (exploration stops at the first).
#[derive(Debug)]
pub struct SchedOutcome {
    /// Counters up to the stopping point.
    pub stats: SchedStats,
    /// `None` means the reduced schedule space was exhausted clean.
    pub violation: Option<SchedViolation>,
}
