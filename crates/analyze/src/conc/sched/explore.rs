//! The DFS schedule explorer: runs a [`Scenario`] repeatedly under the
//! [`Ctl`] controller, enumerating thread interleavings with sleep-set
//! and DPOR pruning and checking each run with a happens-before race
//! detector.
//!
//! ## How one run works
//!
//! The scenario's threads are spawned fresh; each blocks at its first
//! instrumented operation. The explorer waits for stability, computes
//! the *pending* operation of every thread (real reported ops, plus
//! the synthetic `Relock` of a notified condvar waiter and `Resume` of
//! an unparked thread), filters to the *enabled* ones (a mutex
//! acquisition is disabled while the model says the mutex is held),
//! and releases exactly one. Repeat until every thread is done
//! (complete run), or no operation is enabled (deadlock — for the
//! wait/wake protocols under test this is precisely a lost wakeup).
//!
//! ## How the tree is pruned
//!
//! A persistent DFS stack records, per decision depth: the enabled
//! set, each thread's pending op, the chosen thread, and two sets —
//! `backtrack` (threads that must still be tried here, per the DPOR
//! backtracking rule of Flanagan & Godefroid) and `sleep` (threads
//! provably redundant here, per Godefroid's sleep sets). After a run,
//! the deepest node with an untried backtrack candidate becomes the
//! divergence point of the next run, which replays the prefix and
//! picks the new candidate. When every enabled thread at a fresh node
//! is asleep, the run is *redundant*: it is finished without creating
//! nodes and counted separately.
//!
//! DPOR dependence is tracked with vector clocks per dependency object
//! (mutex, condvar, atomic, park token, plain cell, deque critical
//! section); the race detector keeps a **separate** clock system that
//! joins only on real synchronization edges — see [`super::vclock`].

use super::controller::{Ctl, TStatus};
use super::vclock::VClock;
use super::{
    ExploreOpts, Pruning, SchedOutcome, SchedStats, SchedTarget, SchedViolation, Schedule,
};
use crossbeam::hooks::sched::{self, Grant, OpEvent, SyncOp, KILL_MSG};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex, Once, PoisonError};

/// Serializes explorations process-wide: the controller is installed
/// through a process-global hook, so only one may run at a time.
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

/// Per-run step ceiling — a scenario that makes this many decisions is
/// wedged (e.g. an unbounded retry loop) and aborted as a harness
/// error rather than explored forever.
const MAX_RUN_STEPS: usize = 100_000;

static KILL_FILTER: Once = Once::new();

/// Suppresses the default "thread panicked" stderr report for
/// controller kill-unwinds (they are routine during aborts), chaining
/// every other panic to the previously installed hook. Installed once
/// per process, under the exploration lock.
fn install_kill_filter() {
    KILL_FILTER.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == KILL_MSG)
            {
                return;
            }
            prev(info);
        }));
    });
}

/// Uninstalls the process-global controller when the exploration
/// scope exits, even by panic.
struct InstallGuard;

impl Drop for InstallGuard {
    fn drop(&mut self) {
        sched::uninstall();
    }
}

// ---------------------------------------------------------------------
// Operations and dependence
// ---------------------------------------------------------------------

/// A thread's next step as the scheduler models it: its reported real
/// operation, or a synthetic continuation of an earlier blocking one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StepOp {
    /// The operation the thread reported at its sched point.
    Real(OpEvent),
    /// Reacquisition of `mutex` by a condvar waiter that has been
    /// notified (the second half of its wait).
    Relock { mutex: usize },
    /// Wakeup of a parked thread whose unpark has been delivered.
    Resume { token: usize },
}

/// Dependency-object identity: two steps can only be dependent if they
/// touch the same object in the same role.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum DepKey {
    Mutex(usize),
    Cv(usize),
    Atomic(usize),
    Token(usize),
    Plain(usize),
    Cs(usize),
}

/// One entry of a step's dependency footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Touch {
    key: DepKey,
    /// Write-like: two touches of the same key are dependent iff at
    /// least one side is write-like.
    write: bool,
    /// For `Mutex` keys only: `Some(true)` if the op needs the mutex
    /// free (lock/relock), `Some(false)` if it needs it held
    /// (unlock, condvar wait). Ops with opposite or identical *held*
    /// requirements can never be co-enabled, which matters for DPOR
    /// backtracking: only acquire/acquire pairs race on a mutex.
    acq: Option<bool>,
}

impl Touch {
    fn plain(key: DepKey, write: bool) -> Self {
        Touch {
            key,
            write,
            acq: None,
        }
    }

    fn mutex(obj: usize, acquire: bool) -> Self {
        Touch {
            key: DepKey::Mutex(obj),
            write: true,
            acq: Some(acquire),
        }
    }
}

/// The dependency footprint of a step: the objects it touches.
fn footprint(op: StepOp) -> Vec<Touch> {
    match op {
        StepOp::Real(ev) => match ev.op {
            SyncOp::MutexLock => vec![Touch::mutex(ev.obj, true)],
            SyncOp::MutexUnlock => vec![Touch::mutex(ev.obj, false)],
            // A condvar wait atomically releases its mutex and joins
            // the wait set: it conflicts through both objects.
            SyncOp::CondvarWait { mutex } => vec![
                Touch::plain(DepKey::Cv(ev.obj), true),
                Touch::mutex(mutex, false),
            ],
            SyncOp::CondvarNotifyOne | SyncOp::CondvarNotifyAll => {
                vec![Touch::plain(DepKey::Cv(ev.obj), true)]
            }
            SyncOp::AtomicLoad => vec![Touch::plain(DepKey::Atomic(ev.obj), false)],
            SyncOp::AtomicStore | SyncOp::AtomicRmw => {
                vec![Touch::plain(DepKey::Atomic(ev.obj), true)]
            }
            SyncOp::Park => vec![Touch::plain(DepKey::Token(ev.obj), true)],
            SyncOp::Unpark { thread } => vec![Touch::plain(DepKey::Token(thread), true)],
            SyncOp::RaceRead => vec![Touch::plain(DepKey::Plain(ev.obj), false)],
            SyncOp::RaceWrite => vec![Touch::plain(DepKey::Plain(ev.obj), true)],
            SyncOp::Yield => vec![Touch::plain(DepKey::Cs(ev.obj), true)],
        },
        StepOp::Relock { mutex } => vec![Touch::mutex(mutex, true)],
        StepOp::Resume { token } => vec![Touch::plain(DepKey::Token(token), true)],
    }
}

/// Dependence: same object, at least one write-like side. (Used for
/// DPOR clock joins and sleep-set filtering.)
fn dependent(a: StepOp, b: StepOp) -> bool {
    let fa = footprint(a);
    footprint(b).iter().any(|tb| {
        fa.iter()
            .any(|ta| ta.key == tb.key && (ta.write || tb.write))
    })
}

/// May the two touches ever be simultaneously enabled? Mutex touches
/// with a *held* requirement on either side exclude each other
/// (unlock/wait needs the holder; lock needs it free), so only
/// acquire/acquire pairs can race. Everything else may be co-enabled.
fn co_enabled(a: &Touch, b: &Touch) -> bool {
    match (a.acq, b.acq) {
        (Some(x), Some(y)) => x && y,
        _ => true,
    }
}

fn describe(op: StepOp) -> String {
    match op {
        StepOp::Real(ev) => format!("{:?} on {:#x}", ev.op, ev.obj),
        StepOp::Relock { mutex } => format!("Relock on {mutex:#x}"),
        StepOp::Resume { token } => format!("Resume of T{token}"),
    }
}

// ---------------------------------------------------------------------
// The per-run model
// ---------------------------------------------------------------------

/// One recorded access to a dependency object (for DPOR backtracking).
struct ObjAccess {
    step: usize,
    tid: usize,
    write: bool,
    /// Mutex acquire/release classification (see [`Touch::acq`]).
    acq: Option<bool>,
    /// The accessing step's DPOR clock (post-update).
    dc: VClock,
}

#[derive(Default)]
struct CellState {
    last_write: Option<(usize, VClock)>,
    /// Latest read per reading thread.
    reads: Vec<(usize, VClock)>,
}

/// What the scheduler must do to release the chosen thread.
enum GrantAction {
    Grant(Grant),
    Resume,
}

/// The scheduler-side model of one run: protocol state (who owns which
/// mutex, who waits where, which park tokens are pending), the
/// happens-before clocks of the race detector, and the DPOR clocks.
struct RunModel {
    n: usize,
    step: usize,
    // Protocol state.
    mutex_owner: HashMap<usize, usize>,
    cv_waiters: HashMap<usize, VecDeque<(usize, usize)>>,
    relock_pending: Vec<Option<usize>>,
    resume_pending: Vec<bool>,
    blocked_park: Vec<bool>,
    park_token: Vec<bool>,
    // Happens-before (race detector) clocks: joined only on real sync
    // edges.
    hb: Vec<VClock>,
    mutex_vc: HashMap<usize, VClock>,
    atomic_vc: HashMap<usize, VClock>,
    cs_vc: HashMap<usize, VClock>,
    /// Clock a blocked thread acquires when it resumes (notify →
    /// relock, unpark → resume edges).
    pending_acquire: Vec<VClock>,
    /// Clock carried by a pending (pre-park) unpark token.
    token_vc: Vec<VClock>,
    cells: HashMap<usize, CellState>,
    // DPOR clocks and access history: joined on every dependent pair.
    dc: Vec<VClock>,
    accesses: HashMap<DepKey, Vec<ObjAccess>>,
}

impl RunModel {
    fn new(n: usize) -> Self {
        RunModel {
            n,
            step: 0,
            mutex_owner: HashMap::new(),
            cv_waiters: HashMap::new(),
            relock_pending: vec![None; n],
            resume_pending: vec![false; n],
            blocked_park: vec![false; n],
            park_token: vec![false; n],
            hb: vec![VClock::new(n); n],
            mutex_vc: HashMap::new(),
            atomic_vc: HashMap::new(),
            cs_vc: HashMap::new(),
            pending_acquire: vec![VClock::new(n); n],
            token_vc: vec![VClock::new(n); n],
            cells: HashMap::new(),
            dc: vec![VClock::new(n); n],
            accesses: HashMap::new(),
        }
    }

    /// Each thread's pending step, given the controller's stable
    /// statuses.
    fn pending(&self, statuses: &[TStatus]) -> Vec<Option<StepOp>> {
        (0..self.n)
            .map(|tid| match &statuses[tid] {
                TStatus::AtOp(ev) => Some(StepOp::Real(*ev)),
                TStatus::Blocked => {
                    if let Some(mutex) = self.relock_pending[tid] {
                        Some(StepOp::Relock { mutex })
                    } else if self.resume_pending[tid] {
                        Some(StepOp::Resume { token: tid })
                    } else {
                        None
                    }
                }
                TStatus::Done => None,
                s => unreachable!("unstable status {s:?} after await_stable"),
            })
            .collect()
    }

    /// Threads whose pending step can execute now, in tid order.
    fn enabled(&self, pending: &[Option<StepOp>]) -> Vec<usize> {
        pending
            .iter()
            .enumerate()
            .filter_map(|(tid, op)| match op {
                Some(StepOp::Real(ev)) if ev.op == SyncOp::MutexLock => {
                    (!self.mutex_owner.contains_key(&ev.obj)).then_some(tid)
                }
                Some(StepOp::Relock { mutex }) => {
                    (!self.mutex_owner.contains_key(mutex)).then_some(tid)
                }
                Some(_) => Some(tid),
                None => None,
            })
            .collect()
    }

    /// DPOR bookkeeping for the step `tid` is about to take: registers
    /// backtrack points at earlier nodes whose step could have been
    /// reordered with this one, and updates the DPOR clocks.
    fn dpor_step(&mut self, tid: usize, op: StepOp, stack: &mut [Node]) {
        let touches = footprint(op);
        self.dc[tid].tick(tid);
        // Backtrack registration first, against the pre-join clock: the
        // last access per object that is dependent, *may be co-enabled*
        // with this one, and is not already ordered before us. The
        // co-enabledness filter matters: a mutex release is dependent
        // with the next acquire but can never race it, and letting it
        // shadow the acquire/acquire pair would hide the real choice.
        for t in &touches {
            if let Some(list) = self.accesses.get(&t.key) {
                if let Some(acc) = list.iter().rev().find(|a| {
                    a.tid != tid
                        && (a.write || t.write)
                        && co_enabled(
                            &Touch {
                                key: t.key,
                                write: a.write,
                                acq: a.acq,
                            },
                            t,
                        )
                        && !a.dc.le(&self.dc[tid])
                }) {
                    let node = &mut stack[acc.step];
                    if node.enabled.contains(&tid) {
                        node.backtrack.insert(tid);
                    } else {
                        node.backtrack.extend(node.enabled.iter().copied());
                    }
                }
            }
        }
        // Then join every dependent predecessor into this step's clock
        // (plain dependence here — co-enabledness gates only which
        // choices are worth backtracking to, not the trace ordering).
        for t in &touches {
            if let Some(list) = self.accesses.get(&t.key) {
                let joins: Vec<VClock> = list
                    .iter()
                    .filter(|a| a.write || t.write)
                    .map(|a| a.dc.clone())
                    .collect();
                for j in &joins {
                    self.dc[tid].join(j);
                }
            }
        }
        for t in touches {
            self.accesses.entry(t.key).or_default().push(ObjAccess {
                step: self.step,
                tid,
                write: t.write,
                acq: t.acq,
                dc: self.dc[tid].clone(),
            });
        }
    }

    /// Executes `op` in the model: protocol-state transitions, HB
    /// clock updates, race checks. Returns what to tell the thread and
    /// the first race found (if any).
    fn apply(&mut self, tid: usize, op: StepOp) -> (GrantAction, Option<String>) {
        self.hb[tid].tick(tid);
        let mut race = None;
        let action = match op {
            StepOp::Real(ev) => match ev.op {
                SyncOp::MutexLock => {
                    let prev = self.mutex_owner.insert(ev.obj, tid);
                    debug_assert!(prev.is_none(), "lock granted on held mutex");
                    if let Some(vc) = self.mutex_vc.get(&ev.obj) {
                        self.hb[tid].join(vc);
                    }
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::MutexUnlock => {
                    let prev = self.mutex_owner.remove(&ev.obj);
                    debug_assert_eq!(prev, Some(tid), "unlock by non-owner");
                    self.mutex_vc
                        .entry(ev.obj)
                        .or_insert_with(|| VClock::new(self.n))
                        .join(&self.hb[tid]);
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::CondvarWait { mutex } => {
                    let prev = self.mutex_owner.remove(&mutex);
                    debug_assert_eq!(prev, Some(tid), "wait releases a mutex it holds");
                    self.mutex_vc
                        .entry(mutex)
                        .or_insert_with(|| VClock::new(self.n))
                        .join(&self.hb[tid]);
                    self.cv_waiters
                        .entry(ev.obj)
                        .or_default()
                        .push_back((tid, mutex));
                    GrantAction::Grant(Grant::Block)
                }
                SyncOp::CondvarNotifyOne => {
                    if let Some((w, m)) = self
                        .cv_waiters
                        .get_mut(&ev.obj)
                        .and_then(VecDeque::pop_front)
                    {
                        self.relock_pending[w] = Some(m);
                        let hb = self.hb[tid].clone();
                        self.pending_acquire[w].join(&hb);
                    }
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::CondvarNotifyAll => {
                    let hb = self.hb[tid].clone();
                    for (w, m) in self.cv_waiters.entry(ev.obj).or_default().drain(..) {
                        self.relock_pending[w] = Some(m);
                        self.pending_acquire[w].join(&hb);
                    }
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::AtomicLoad => {
                    if let Some(vc) = self.atomic_vc.get(&ev.obj) {
                        self.hb[tid].join(vc);
                    }
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::AtomicStore => {
                    self.atomic_vc
                        .entry(ev.obj)
                        .or_insert_with(|| VClock::new(self.n))
                        .join(&self.hb[tid]);
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::AtomicRmw => {
                    let entry = self
                        .atomic_vc
                        .entry(ev.obj)
                        .or_insert_with(|| VClock::new(self.n));
                    self.hb[tid].join(entry);
                    entry.join(&self.hb[tid]);
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::Park => {
                    if self.park_token[tid] {
                        self.park_token[tid] = false;
                        let vc = std::mem::replace(&mut self.token_vc[tid], VClock::new(self.n));
                        self.hb[tid].join(&vc);
                        GrantAction::Grant(Grant::Proceed)
                    } else {
                        self.blocked_park[tid] = true;
                        GrantAction::Grant(Grant::Block)
                    }
                }
                SyncOp::Unpark { thread } => {
                    let hb = self.hb[tid].clone();
                    if thread < self.n && self.blocked_park[thread] {
                        self.blocked_park[thread] = false;
                        self.resume_pending[thread] = true;
                        self.pending_acquire[thread].join(&hb);
                    } else if thread < self.n {
                        self.park_token[thread] = true;
                        self.token_vc[thread].join(&hb);
                    }
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::Yield => {
                    // A serialized critical section: its real lock
                    // orders entries, so model it acquire + release.
                    let entry = self
                        .cs_vc
                        .entry(ev.obj)
                        .or_insert_with(|| VClock::new(self.n));
                    self.hb[tid].join(entry);
                    entry.join(&self.hb[tid]);
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::RaceRead => {
                    let cell = self.cells.entry(ev.obj).or_default();
                    if let Some((wt, wvc)) = &cell.last_write {
                        if *wt != tid && !wvc.le(&self.hb[tid]) {
                            race = Some(format!(
                                "plain read of cell {:#x} by T{tid} is concurrent with the \
                                 write by T{wt} (write clock {wvc}, reader clock {})",
                                ev.obj, self.hb[tid]
                            ));
                        }
                    }
                    let hb = self.hb[tid].clone();
                    match cell.reads.iter_mut().find(|(rt, _)| *rt == tid) {
                        Some(slot) => slot.1 = hb,
                        None => cell.reads.push((tid, hb)),
                    }
                    GrantAction::Grant(Grant::Proceed)
                }
                SyncOp::RaceWrite => {
                    let cell = self.cells.entry(ev.obj).or_default();
                    if let Some((wt, wvc)) = &cell.last_write {
                        if *wt != tid && !wvc.le(&self.hb[tid]) {
                            race = Some(format!(
                                "plain write to cell {:#x} by T{tid} is concurrent with the \
                                 write by T{wt} (prior clock {wvc}, writer clock {})",
                                ev.obj, self.hb[tid]
                            ));
                        }
                    }
                    if race.is_none() {
                        if let Some((rt, rvc)) = cell
                            .reads
                            .iter()
                            .find(|(rt, rvc)| *rt != tid && !rvc.le(&self.hb[tid]))
                        {
                            race = Some(format!(
                                "plain write to cell {:#x} by T{tid} is concurrent with the \
                                 read by T{rt} (read clock {rvc}, writer clock {})",
                                ev.obj, self.hb[tid]
                            ));
                        }
                    }
                    cell.last_write = Some((tid, self.hb[tid].clone()));
                    cell.reads.retain(|(rt, _)| *rt == tid);
                    GrantAction::Grant(Grant::Proceed)
                }
            },
            StepOp::Relock { mutex } => {
                let prev = self.mutex_owner.insert(mutex, tid);
                debug_assert!(prev.is_none(), "relock granted on held mutex");
                self.relock_pending[tid] = None;
                if let Some(vc) = self.mutex_vc.get(&mutex) {
                    self.hb[tid].join(vc);
                }
                let vc = std::mem::replace(&mut self.pending_acquire[tid], VClock::new(self.n));
                self.hb[tid].join(&vc);
                GrantAction::Resume
            }
            StepOp::Resume { .. } => {
                self.resume_pending[tid] = false;
                let vc = std::mem::replace(&mut self.pending_acquire[tid], VClock::new(self.n));
                self.hb[tid].join(&vc);
                GrantAction::Resume
            }
        };
        self.step += 1;
        (action, race)
    }
}

// ---------------------------------------------------------------------
// The DFS driver
// ---------------------------------------------------------------------

/// One decision point of the persistent DFS stack.
struct Node {
    enabled: Vec<usize>,
    pending: Vec<Option<StepOp>>,
    chosen: usize,
    backtrack: BTreeSet<usize>,
    done: BTreeSet<usize>,
    sleep: BTreeSet<usize>,
}

impl Node {
    fn chosen_op(&self) -> StepOp {
        self.pending[self.chosen].expect("chosen thread has a pending op")
    }
}

enum RunKind {
    Complete,
    Deadlock,
    Panic(String),
}

struct RunEnd {
    violation: Option<SchedViolation>,
    /// The run was cut short by sleep sets (counted as redundant).
    redundant: bool,
    depth: usize,
}

/// Explores `target`'s schedule space and reports the outcome.
///
/// Serialized process-wide (the instrumentation hook is global);
/// threads not registered with the controller are unaffected, so this
/// can run inside an ordinary `cargo test` process.
///
/// # Panics
///
/// On harness-level failures: instrumentation bugs that wedge the
/// rendezvous (never caused by scenario behaviour — scenario panics
/// and deadlocks are reported as violations, not panics).
pub fn explore_sched(target: &SchedTarget, opts: &ExploreOpts) -> SchedOutcome {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    install_kill_filter();
    let ctl = Arc::new(Ctl::new());
    sched::install(ctl.clone());
    let _uninstall = InstallGuard;

    let mut stats = SchedStats::default();
    let mut stack: Vec<Node> = Vec::new();
    loop {
        if stats.schedules + stats.redundant >= opts.max_schedules {
            return SchedOutcome {
                stats,
                violation: Some(SchedViolation::Budget {
                    limit: opts.max_schedules,
                }),
            };
        }
        let end = run_once(
            target,
            &ctl,
            Driver::Explore(&mut stack, opts.pruning),
            &mut stats,
        )
        .unwrap_or_else(|e| panic!("sched harness error on {}: {e}", target.name));
        stats.max_depth = stats.max_depth.max(end.depth);
        if end.violation.is_some() {
            return SchedOutcome {
                stats,
                violation: end.violation,
            };
        }
        if end.redundant {
            stats.redundant += 1;
        } else {
            stats.schedules += 1;
        }
        // Pop to the deepest node with an untried backtrack candidate.
        loop {
            let Some(top) = stack.last_mut() else {
                return SchedOutcome {
                    stats,
                    violation: None,
                };
            };
            top.done.insert(top.chosen);
            let next = top
                .backtrack
                .iter()
                .copied()
                .find(|q| !top.done.contains(q) && !top.sleep.contains(q));
            match next {
                Some(q) => {
                    top.chosen = q;
                    break;
                }
                None => {
                    stack.pop();
                }
            }
        }
    }
}

/// A step-by-step record of one replayed schedule.
#[derive(Debug)]
pub struct ReplayReport {
    /// One line per decision: which thread ran which operation.
    pub steps: Vec<String>,
    /// The violation the schedule reproduces, if any.
    pub violation: Option<SchedViolation>,
}

/// Replays a witness `schedule` against `target`, returning the step
/// log and the reproduced violation. Once the witness is exhausted any
/// remaining decisions fall to the lowest enabled thread.
///
/// # Panics
///
/// If the schedule diverges from the scenario (a chosen thread is not
/// enabled) — witnesses only replay against the target that made them.
pub fn replay_schedule(target: &SchedTarget, schedule: &[usize]) -> ReplayReport {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    install_kill_filter();
    let ctl = Arc::new(Ctl::new());
    sched::install(ctl.clone());
    let _uninstall = InstallGuard;

    let mut stats = SchedStats::default();
    let mut steps = Vec::new();
    let end = run_once(
        target,
        &ctl,
        Driver::Replay(schedule, &mut steps),
        &mut stats,
    )
    .unwrap_or_else(|e| panic!("sched replay error on {}: {e}", target.name));
    ReplayReport {
        steps,
        violation: end.violation,
    }
}

/// How `run_once` picks threads: exploring (maintaining the DFS stack)
/// or replaying a fixed witness.
enum Driver<'a> {
    Explore(&'a mut Vec<Node>, Pruning),
    Replay(&'a [usize], &'a mut Vec<String>),
}

#[allow(clippy::too_many_lines)]
fn run_once(
    target: &SchedTarget,
    ctl: &Arc<Ctl>,
    mut driver: Driver<'_>,
    stats: &mut SchedStats,
) -> Result<RunEnd, String> {
    let scenario = (target.make)();
    let n = scenario.threads.len();
    let check = scenario.check;
    ctl.reset(n);
    let mut handles = Vec::with_capacity(n);
    for (tid, body) in scenario.threads.into_iter().enumerate() {
        let ctl = Arc::clone(ctl);
        let handle = std::thread::Builder::new()
            .name(format!("sched-t{tid}"))
            .spawn(move || {
                sched::register_thread(tid);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
                sched::deregister_thread();
                match result {
                    Ok(()) => ctl.thread_done(tid, None),
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        // A controller kill is a routine abort, not a
                        // scenario failure.
                        let genuine = msg != KILL_MSG;
                        ctl.thread_done(tid, genuine.then_some(msg));
                    }
                }
            })
            .map_err(|e| format!("failed to spawn scenario thread: {e}"))?;
        handles.push(handle);
    }

    let mut model = RunModel::new(n);
    let mut schedule: Schedule = Vec::new();
    let mut race: Option<String> = None;
    let mut depth = 0usize;
    let mut free_finish = false;
    let kind = loop {
        let statuses = match ctl.await_stable() {
            Ok(s) => s,
            Err(e) => {
                abort_and_join(ctl, handles);
                return Err(e);
            }
        };
        if let Some(detail) = statuses.iter().enumerate().find_map(|(tid, s)| match s {
            TStatus::Panicked(m) => Some(format!("T{tid} panicked: {m}")),
            _ => None,
        }) {
            break RunKind::Panic(detail);
        }
        let pending = model.pending(&statuses);
        let enabled = model.enabled(&pending);
        if enabled.is_empty() {
            if statuses.iter().all(|s| matches!(s, TStatus::Done)) {
                break RunKind::Complete;
            }
            break RunKind::Deadlock;
        }
        if depth >= MAX_RUN_STEPS {
            abort_and_join(ctl, handles);
            return Err(format!("run exceeded {MAX_RUN_STEPS} steps"));
        }

        let (choice, dpor) = match &mut driver {
            Driver::Explore(stack, pruning) => {
                if depth < stack.len() {
                    // Replaying the prescribed prefix.
                    if stack[depth].enabled != enabled {
                        abort_and_join(ctl, handles);
                        return Err(format!(
                            "nondeterministic scenario: enabled set at depth {depth} changed \
                             from {:?} to {enabled:?}",
                            stack[depth].enabled
                        ));
                    }
                    (stack[depth].chosen, matches!(pruning, Pruning::Dpor))
                } else if free_finish {
                    (enabled[0], false)
                } else {
                    // New decision point.
                    let sleep: BTreeSet<usize> = match pruning {
                        Pruning::Naive => BTreeSet::new(),
                        Pruning::Dpor => stack
                            .last()
                            .map(|parent| {
                                let parent_op = parent.chosen_op();
                                parent
                                    .sleep
                                    .iter()
                                    .chain(parent.done.iter())
                                    .copied()
                                    .filter(|&q| {
                                        q != parent.chosen
                                            && parent.pending[q]
                                                .is_some_and(|oq| !dependent(oq, parent_op))
                                    })
                                    .collect()
                            })
                            .unwrap_or_default(),
                    };
                    let candidate = enabled.iter().copied().find(|t| !sleep.contains(t));
                    match candidate {
                        None => {
                            // Everything enabled is asleep: this whole
                            // continuation is redundant. Finish the run
                            // without growing the tree.
                            free_finish = true;
                            (enabled[0], false)
                        }
                        Some(chosen) => {
                            let backtrack: BTreeSet<usize> = match pruning {
                                Pruning::Dpor => BTreeSet::from([chosen]),
                                Pruning::Naive => enabled.iter().copied().collect(),
                            };
                            stack.push(Node {
                                enabled: enabled.clone(),
                                pending: pending.clone(),
                                chosen,
                                backtrack,
                                done: BTreeSet::new(),
                                sleep,
                            });
                            (chosen, matches!(pruning, Pruning::Dpor))
                        }
                    }
                }
            }
            Driver::Replay(sched_choices, log) => {
                let choice = sched_choices.get(depth).copied().unwrap_or(enabled[0]);
                if !enabled.contains(&choice) {
                    abort_and_join(ctl, handles);
                    return Err(format!(
                        "witness chooses T{choice} at depth {depth}, but enabled set is \
                         {enabled:?}"
                    ));
                }
                let op = pending[choice].expect("enabled thread has a pending op");
                log.push(format!("{depth:>4}: T{choice} {}", describe(op)));
                (choice, false)
            }
        };

        let op = pending[choice].expect("enabled thread has a pending op");
        if dpor {
            if let Driver::Explore(stack, _) = &mut driver {
                model.dpor_step(choice, op, stack);
            }
        }
        let (action, step_race) = model.apply(choice, op);
        if let (None, Some(r)) = (&race, step_race) {
            race = Some(r);
        }
        schedule.push(choice);
        depth += 1;
        stats.steps += 1;
        match action {
            GrantAction::Grant(g) => ctl.grant(choice, g),
            GrantAction::Resume => ctl.resume(choice, false),
        }
    };

    let violation = match kind {
        RunKind::Complete => {
            for h in handles {
                let _ = h.join();
            }
            if let Some(detail) = race {
                Some(SchedViolation::Race {
                    detail,
                    witness: schedule,
                })
            } else if let Some(check) = check {
                check().err().map(|detail| SchedViolation::Invariant {
                    detail,
                    witness: schedule,
                })
            } else {
                None
            }
        }
        RunKind::Deadlock => {
            abort_and_join(ctl, handles);
            // A race observed on the way to a deadlock still outranks
            // it: the race is the root cause witness.
            Some(match race {
                Some(detail) => SchedViolation::Race {
                    detail,
                    witness: schedule,
                },
                None => SchedViolation::Deadlock { witness: schedule },
            })
        }
        RunKind::Panic(detail) => {
            abort_and_join(ctl, handles);
            Some(SchedViolation::Panic {
                detail,
                witness: schedule,
            })
        }
    };
    Ok(RunEnd {
        violation,
        redundant: free_finish,
        depth,
    })
}

fn abort_and_join(ctl: &Ctl, handles: Vec<std::thread::JoinHandle<()>>) {
    ctl.abort();
    for h in handles {
        let _ = h.join();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Expect, ExploreOpts, Pruning, Scenario, SchedTarget, SchedViolation};
    use super::*;

    /// Emits one raw instrumented op from a scenario thread. Object
    /// ids are arbitrary usize values (real primitives use addresses;
    /// the model only needs identity).
    fn raw(op: SyncOp, obj: usize) {
        sched::sync_op(OpEvent { op, obj });
    }

    fn target(
        name: &'static str,
        make: impl Fn() -> Scenario + Send + Sync + 'static,
    ) -> SchedTarget {
        SchedTarget {
            name,
            about: "test",
            expect: Expect::Clean,
            make: Box::new(make),
        }
    }

    fn opts(pruning: Pruning) -> ExploreOpts {
        ExploreOpts {
            max_schedules: 10_000,
            pruning,
        }
    }

    #[test]
    fn independent_ops_collapse_to_one_schedule_under_dpor() {
        let t = target("toy::independent", || Scenario {
            threads: vec![
                Box::new(|| raw(SyncOp::AtomicStore, 0x10)),
                Box::new(|| raw(SyncOp::AtomicStore, 0x20)),
            ],
            check: None,
        });
        let dpor = explore_sched(&t, &opts(Pruning::Dpor));
        assert!(dpor.violation.is_none(), "{:?}", dpor.violation);
        assert_eq!(dpor.stats.schedules, 1, "independent ops need one order");
        let naive = explore_sched(&t, &opts(Pruning::Naive));
        assert!(naive.violation.is_none());
        assert_eq!(naive.stats.schedules, 2, "naive tries both orders");
    }

    #[test]
    fn conflicting_ops_explore_both_orders() {
        let t = target("toy::conflict", || Scenario {
            threads: vec![
                Box::new(|| raw(SyncOp::AtomicStore, 0x10)),
                Box::new(|| raw(SyncOp::AtomicStore, 0x10)),
            ],
            check: None,
        });
        let out = explore_sched(&t, &opts(Pruning::Dpor));
        assert!(out.violation.is_none());
        assert_eq!(out.stats.schedules + out.stats.redundant, 2);
        assert!(out.stats.schedules >= 2, "both orders are meaningful");
    }

    #[test]
    fn unsynchronized_writes_race_and_replay() {
        let t = target("toy::race", || Scenario {
            threads: vec![
                Box::new(|| raw(SyncOp::RaceWrite, 0x77)),
                Box::new(|| raw(SyncOp::RaceWrite, 0x77)),
            ],
            check: None,
        });
        let out = explore_sched(&t, &opts(Pruning::Dpor));
        let Some(SchedViolation::Race { detail, witness }) = out.violation else {
            panic!("expected a race, got {:?}", out.violation);
        };
        assert!(detail.contains("0x77"), "{detail}");
        let replay = replay_schedule(&t, &witness);
        assert!(
            matches!(replay.violation, Some(SchedViolation::Race { .. })),
            "witness must reproduce: {:?}",
            replay.violation
        );
        assert_eq!(replay.steps.len(), witness.len());
    }

    #[test]
    fn mutex_protected_writes_do_not_race() {
        let m = 0xa0;
        let cell = 0xb0;
        let body = move || {
            raw(SyncOp::MutexLock, m);
            raw(SyncOp::RaceWrite, cell);
            raw(SyncOp::MutexUnlock, m);
        };
        let t = target("toy::locked", move || Scenario {
            threads: vec![Box::new(body), Box::new(body)],
            check: None,
        });
        let out = explore_sched(&t, &opts(Pruning::Dpor));
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.stats.schedules >= 2, "lock orders are dependent");
    }

    #[test]
    fn lost_wakeup_is_found_as_deadlock_with_witness() {
        let m = 0xa0;
        let cv = 0xc0;
        let t = target("toy::lost-wakeup", move || Scenario {
            threads: vec![
                Box::new(move || {
                    raw(SyncOp::MutexLock, m);
                    raw(SyncOp::CondvarWait { mutex: m }, cv);
                    raw(SyncOp::MutexUnlock, m);
                }),
                Box::new(move || {
                    raw(SyncOp::MutexLock, m);
                    raw(SyncOp::CondvarNotifyOne, cv);
                    raw(SyncOp::MutexUnlock, m);
                }),
            ],
            check: None,
        });
        let out = explore_sched(&t, &opts(Pruning::Dpor));
        let Some(SchedViolation::Deadlock { witness }) = out.violation else {
            panic!("notify-before-wait must deadlock, got {:?}", out.violation);
        };
        // The witness schedules the notifier's ops before the wait.
        let replay = replay_schedule(&t, &witness);
        assert!(matches!(
            replay.violation,
            Some(SchedViolation::Deadlock { .. })
        ));
    }

    #[test]
    fn park_unpark_token_semantics_never_deadlock() {
        let t = target("toy::park", || Scenario {
            threads: vec![
                Box::new(|| raw(SyncOp::Park, 0)),
                Box::new(|| raw(SyncOp::Unpark { thread: 0 }, 0)),
            ],
            check: None,
        });
        let out = explore_sched(&t, &opts(Pruning::Dpor));
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(
            out.stats.schedules >= 2,
            "park-first and unpark-first both explored"
        );
    }

    #[test]
    fn failing_final_check_reports_invariant_violation() {
        let t = target("toy::invariant", || Scenario {
            threads: vec![Box::new(|| raw(SyncOp::AtomicStore, 0x10))],
            check: Some(Box::new(|| Err("final state wrong".to_string()))),
        });
        let out = explore_sched(&t, &opts(Pruning::Dpor));
        assert!(
            matches!(out.violation, Some(SchedViolation::Invariant { ref detail, .. }) if detail.contains("final state")),
            "{:?}",
            out.violation
        );
    }

    #[test]
    fn scenario_panic_is_reported_with_witness() {
        let t = target("toy::panic", || Scenario {
            threads: vec![
                Box::new(|| {
                    raw(SyncOp::AtomicStore, 0x10);
                    panic!("scenario blew up");
                }),
                Box::new(|| raw(SyncOp::AtomicLoad, 0x10)),
            ],
            check: None,
        });
        let out = explore_sched(&t, &opts(Pruning::Dpor));
        assert!(
            matches!(out.violation, Some(SchedViolation::Panic { ref detail, .. }) if detail.contains("blew up")),
            "{:?}",
            out.violation
        );
    }

    #[test]
    fn budget_exhaustion_is_reported_honestly() {
        let t = target("toy::budget", || Scenario {
            threads: vec![
                Box::new(|| {
                    for _ in 0..4 {
                        raw(SyncOp::AtomicStore, 0x10);
                    }
                }),
                Box::new(|| {
                    for _ in 0..4 {
                        raw(SyncOp::AtomicStore, 0x10);
                    }
                }),
            ],
            check: None,
        });
        let out = explore_sched(
            &t,
            &ExploreOpts {
                max_schedules: 3,
                pruning: Pruning::Naive,
            },
        );
        assert!(matches!(
            out.violation,
            Some(SchedViolation::Budget { limit: 3 })
        ));
    }
}
