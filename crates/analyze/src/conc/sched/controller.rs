//! The rendezvous controller: the concrete [`Controller`] behind which
//! real scenario threads are sequenced by the exploration scheduler.
//!
//! Protocol (thread side ⇄ scheduler side):
//!
//! 1. A scenario thread reaches a sched point and calls
//!    [`Ctl::sched_point`]: it publishes its pending [`OpEvent`], wakes
//!    the scheduler, and sleeps until a grant appears in its slot.
//! 2. The scheduler calls [`Ctl::await_stable`], which returns once
//!    every thread is *stable* — at a sched point, parked at a block
//!    point, or done — so exactly zero threads are executing real code
//!    when a scheduling decision is made.
//! 3. The scheduler picks one thread and delivers [`Grant::Proceed`]
//!    (run the op, continue to the next sched point), [`Grant::Block`]
//!    (the op cannot complete: the thread parks via
//!    [`Ctl::block_point`] until [`Ctl::resume`]), or [`Grant::Die`]
//!    (abort: unwind the thread).
//!
//! Because only one granted thread runs between `await_stable` calls,
//! the *real* primitives under the instrumented wrappers are always
//! uncontended; all blocking lives here.

use crossbeam::hooks::sched::{Controller, Grant, OpEvent};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long `await_stable` waits without progress before declaring the
/// harness itself wedged (a bug in the instrumentation, not the
/// scenario — scenarios block only inside the controller).
const STABILITY_TIMEOUT: Duration = Duration::from_secs(30);

/// One scenario thread's lifecycle state, as the scheduler sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum TStatus {
    /// Spawned, has not yet reached its first sched point.
    Launching,
    /// Stable at a sched point, waiting for a grant on `OpEvent`.
    AtOp(OpEvent),
    /// Granted and running real code towards its next sched point.
    Executing,
    /// Parked at a block point (condvar wait set / park without
    /// token), waiting for [`Ctl::resume`].
    Blocked,
    /// Scenario closure returned.
    Done,
    /// Scenario closure panicked with this message (controller kills
    /// are filtered out by the harness and recorded as `Done`).
    Panicked(String),
}

impl TStatus {
    fn stable(&self) -> bool {
        !matches!(self, TStatus::Launching | TStatus::Executing)
    }
}

struct CtlState {
    status: Vec<TStatus>,
    /// Per-thread grant slot (scheduler writes, thread consumes).
    granted: Vec<Option<Grant>>,
    /// Per-thread resume token for threads parked in `block_point`.
    resume: Vec<bool>,
    /// When set alongside `resume`, the resumed thread unwinds
    /// immediately instead of continuing (abort of a blocked thread).
    die_on_resume: Vec<bool>,
    /// Once set, every sched point answers [`Grant::Die`].
    aborting: bool,
}

/// The shared rendezvous object (installed process-globally for the
/// duration of one exploration; see [`super::explore`]).
pub(crate) struct Ctl {
    inner: Mutex<CtlState>,
    cv: Condvar,
}

impl Ctl {
    pub(crate) fn new() -> Self {
        Ctl {
            inner: Mutex::new(CtlState {
                status: Vec::new(),
                granted: Vec::new(),
                resume: Vec::new(),
                die_on_resume: Vec::new(),
                aborting: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Re-arms the controller for a fresh run of `n` threads. Must only
    /// be called with no scenario threads alive.
    pub(crate) fn reset(&self, n: usize) {
        let mut st = self.lock();
        st.status = vec![TStatus::Launching; n];
        st.granted = vec![None; n];
        st.resume = vec![false; n];
        st.die_on_resume = vec![false; n];
        st.aborting = false;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CtlState> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocks until every thread is stable (no `Launching`/`Executing`)
    /// and all grants are consumed, then returns a snapshot of thread
    /// statuses.
    ///
    /// # Errors
    ///
    /// A description of the wedged state if no progress happens for
    /// [`STABILITY_TIMEOUT`] — indicates an instrumentation bug (an
    /// unregistered blocking op, a sched point never reached).
    pub(crate) fn await_stable(&self) -> Result<Vec<TStatus>, String> {
        let deadline = Instant::now() + STABILITY_TIMEOUT;
        let mut st = self.lock();
        loop {
            // An undelivered grant or an unconsumed resume means a
            // thread is logically executing even if its recorded
            // status hasn't caught up yet.
            let stable = st.status.iter().all(TStatus::stable)
                && st.granted.iter().all(Option::is_none)
                && st.resume.iter().all(|r| !r);
            if stable {
                return Ok(st.status.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(format!(
                    "scheduler wedged waiting for stability: {:?}",
                    st.status
                ));
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
        }
    }

    /// Delivers `g` to thread `tid` (which must be `AtOp`).
    pub(crate) fn grant(&self, tid: usize, g: Grant) {
        let mut st = self.lock();
        debug_assert!(
            matches!(st.status[tid], TStatus::AtOp(_)),
            "grant to non-AtOp thread"
        );
        st.granted[tid] = Some(g);
        self.cv.notify_all();
    }

    /// Resumes thread `tid` from its block point (relock granted /
    /// unpark delivered); `die` makes it unwind instead.
    pub(crate) fn resume(&self, tid: usize, die: bool) {
        let mut st = self.lock();
        st.resume[tid] = true;
        st.die_on_resume[tid] = die;
        self.cv.notify_all();
    }

    /// Switches the controller into abort mode: every thread at (or
    /// arriving at) a sched point is answered [`Grant::Die`], every
    /// blocked thread is resumed with the die flag. After this, all
    /// scenario threads unwind and can be joined.
    pub(crate) fn abort(&self) {
        let mut st = self.lock();
        st.aborting = true;
        for tid in 0..st.resume.len() {
            st.resume[tid] = true;
            st.die_on_resume[tid] = true;
            // Threads sitting in sched_point's grant-wait pick the
            // abort flag up themselves; pre-filled grants stay valid.
        }
        self.cv.notify_all();
    }

    /// Records thread `tid` as finished; `panic_msg` carries a genuine
    /// scenario panic (kills are recorded as clean `Done`).
    pub(crate) fn thread_done(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.status[tid] = match panic_msg {
            Some(m) => TStatus::Panicked(m),
            None => TStatus::Done,
        };
        self.cv.notify_all();
    }
}

impl Controller for Ctl {
    fn sched_point(&self, tid: usize, ev: OpEvent) -> Grant {
        let mut st = self.lock();
        if st.aborting {
            return Grant::Die;
        }
        st.status[tid] = TStatus::AtOp(ev);
        self.cv.notify_all();
        loop {
            if st.aborting {
                st.status[tid] = TStatus::Executing;
                return Grant::Die;
            }
            if let Some(g) = st.granted[tid].take() {
                st.status[tid] = TStatus::Executing;
                return g;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn block_point(&self, tid: usize) {
        let mut st = self.lock();
        st.status[tid] = TStatus::Blocked;
        self.cv.notify_all();
        loop {
            if st.resume[tid] {
                st.resume[tid] = false;
                let die = st.die_on_resume[tid];
                st.die_on_resume[tid] = false;
                st.status[tid] = TStatus::Executing;
                drop(st);
                if die {
                    crossbeam::hooks::sched::killed();
                }
                return;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}
