//! Mini-loom: exhaustive deterministic-interleaving checking for the
//! runtime's concurrency protocols.
//!
//! The runtime's executor (PR 4) relies on hand-rolled primitives
//! whose correctness was previously argued only in comments and stress
//! tests: the counted-sleeper wake/sleep protocol (lost-wakeup
//! freedom), the mutex-backed work-stealing deque from
//! `shims/crossbeam` (no item ever lost or duplicated), and — since
//! the async task bodies of PR 9 — the task-cell park/wake handshake
//! (readiness racing the park must never strand a task). This module
//! model-checks all three.
//!
//! A [`Model`](explore::Model) describes a protocol as an explicit
//! state machine: each *state* is a snapshot of every thread's program
//! counter plus the shared memory it races on, and each *successor* is
//! one atomic step of one thread. [`explore`](explore::explore)
//! enumerates the full reachable state space (DFS with memoization),
//! checking a safety invariant on every state and reporting any
//! quiescent state that is not a legitimate terminal — i.e. a deadlock,
//! which for the sleeper protocol is exactly a lost wakeup.
//!
//! The models mirror the runtime code at the granularity of its atomic
//! operations (one mutex acquisition, one atomic store, one condition
//! wait). Deliberately-broken variants of each protocol are kept next
//! to the correct ones so tests can demonstrate the harness actually
//! detects the historical failure modes (sleeping without rechecking
//! pending work; forgetting to remove stolen items; dropping a wake
//! that lands while the task is still being polled).
//!
//! Bounds: the state spaces are exhaustive but bounded by the model
//! parameters (worker/item/thief counts). CI runs the smoke bounds via
//! the `model_check` binary; see `DESIGN.md` §10 for the full table.
//!
//! The [`sched`] submodule takes the complementary approach: instead of
//! checking a hand-written abstraction, it runs the **real** protocol
//! code under a deterministic DPOR scheduler (`conc-instrument`
//! feature) with a happens-before data-race detector — see `DESIGN.md`
//! §15.

pub mod deque;
pub mod explore;
pub mod parkwake;
pub mod sched;
pub mod sleeper;

pub use deque::{DequeModel, DequeVariant};
pub use explore::{explore, Exploration, Model, Violation};
pub use parkwake::{ParkWakeModel, ParkWakeState, ParkWakeVariant};
pub use sleeper::{SleeperModel, SleeperVariant};
