//! Explicit-state model of the async task park/wake handshake — the
//! `TaskCell` protocol in `continuum_runtime` (PR 9).
//!
//! The protocol under test: a task body polled to `Poll::Pending` must
//! suspend without a thread, and the waker its resource holds must be
//! the only way back. The race is classic: the resource can become
//! ready (and fire the waker) *between* the poll returning `Pending`
//! and the worker parking the task. The runtime closes the window with
//! a CAS handshake over five states:
//!
//! ```text
//! Scheduled --claim(swap)--> Running --CAS--> Parked --wake CAS--> Scheduled
//!                               |                 ^
//!                               | wake CAS        | (enqueue)
//!                               v                 |
//!                            Notified --store Running, re-poll--+
//! ```
//!
//! * The **poller** (a worker thread) claims the task from a queue
//!   (`Scheduled → Running` by atomic swap), polls it, and on
//!   `Pending` tries `CAS Running → Parked`. If the CAS fails it must
//!   observe `Notified` — a wake raced the park — and it consumes the
//!   notification (`store Running`) and re-polls inline.
//! * The **waker** (reactor / stream peer / storage reply thread)
//!   loops: load the state; `Parked → Scheduled` by CAS wins the
//!   handoff and re-enqueues the task; `Running → Notified` by CAS
//!   records the readiness for the in-progress poll; `Scheduled`,
//!   `Notified` and `Complete` coalesce. A failed CAS retries the
//!   load, because the poller may park between the load and the CAS.
//!
//! Arming is part of the model: each `Pending` poll registers exactly
//! one readiness event (`armed`) that the waker thread later delivers,
//! so a "lost" wake is observable as a quiescent state where the task
//! is parked, nothing is armed, and nothing is queued — a deadlock for
//! the explorer.
//!
//! The deliberately broken variant
//! ([`ParkWakeVariant::DropRunningWake`]) makes the waker treat
//! `Running` as "the poller is awake, it will notice readiness itself"
//! and discard the wake instead of recording `Notified`. The poller
//! then parks on a consumed event and nothing ever re-queues it — the
//! exact lost-wakeup bug the `Notified` state exists to prevent, and
//! the explorer must keep reporting it as a deadlock.

use super::explore::Model;

/// Which rendition of the park/wake protocol to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkWakeVariant {
    /// The protocol as implemented in `continuum_runtime::task_cell`.
    Correct,
    /// Deliberately broken: a wake that observes `Running` is dropped
    /// instead of CAS-ing `Notified`. Exists to prove the harness
    /// detects the lost-wakeup race the handshake closes.
    DropRunningWake,
}

/// The five-state task cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Cell {
    /// In a dispatch queue (or about to be: between the waker's CAS
    /// and its enqueue).
    Scheduled,
    /// A worker is inside `Future::poll`.
    Running,
    /// Suspended; only a wake can move it.
    Parked,
    /// A wake landed mid-poll; the poller must re-poll, not park.
    Notified,
    /// The future returned `Ready`.
    Complete,
}

/// Worker (poller) program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Wpc {
    /// Scanning the dispatch queue.
    Idle,
    /// Popped the task; about to swap `Scheduled → Running`.
    Claim,
    /// Inside `poll`: either returns `Pending` (arming a wake) or
    /// `Ready`.
    Poll,
    /// `CAS Running → Parked`.
    TryPark,
    /// The CAS observed `Notified`: `store Running`, then re-poll.
    ConsumeNotify,
    /// `Ready`: `store Complete`, mark the run finished.
    Finish,
}

/// Waker program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kpc {
    /// Waiting for an armed readiness event.
    Idle,
    /// `load` of the cell state (the wake loop's top).
    Load,
    /// Loaded `Parked`; about to `CAS Parked → Scheduled`.
    SawParked,
    /// Loaded `Running`; about to `CAS Running → Notified`.
    SawRunning,
    /// Won the park handoff; push the task onto the dispatch queue.
    Enqueue,
}

/// One snapshot: every thread's pc plus the shared cell, queue and
/// readiness-event memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParkWakeState {
    workers: Vec<Wpc>,
    waker: Kpc,
    cell: Cell,
    /// Task present in the dispatch queue.
    queued: bool,
    /// Readiness events fired by the resource but not yet delivered
    /// through the wake protocol.
    armed: u8,
    /// `Pending` polls performed so far.
    polls_done: u8,
    /// The final poll returned `Ready` and the cell was completed.
    done: bool,
}

/// Bounded park/wake model: `workers` pollers contending for one async
/// task whose future returns `Pending` exactly `polls` times (arming
/// one readiness event each) before returning `Ready`.
#[derive(Debug, Clone, Copy)]
pub struct ParkWakeModel {
    /// Number of poller threads (the task is claimed by at most one at
    /// a time; more workers add claim contention interleavings).
    pub workers: usize,
    /// Number of `Pending` polls before the future is ready.
    pub polls: u8,
    /// Protocol rendition.
    pub variant: ParkWakeVariant,
}

impl Model for ParkWakeModel {
    type State = ParkWakeState;

    fn initial(&self) -> ParkWakeState {
        ParkWakeState {
            workers: vec![Wpc::Idle; self.workers],
            waker: Kpc::Idle,
            cell: Cell::Scheduled,
            queued: true,
            armed: 0,
            polls_done: 0,
            done: false,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn successors(&self, s: &ParkWakeState, out: &mut Vec<ParkWakeState>) {
        // Poller steps.
        for (i, pc) in s.workers.iter().copied().enumerate() {
            let mut n = s.clone();
            match pc {
                Wpc::Idle => {
                    if !s.queued {
                        continue; // nothing to claim
                    }
                    // Queue pop is atomic: exactly one worker gets it.
                    n.queued = false;
                    n.workers[i] = Wpc::Claim;
                }
                Wpc::Claim => {
                    // swap(RUNNING); queues hold only Scheduled tasks
                    // (checked as an invariant below).
                    n.cell = Cell::Running;
                    n.workers[i] = Wpc::Poll;
                }
                Wpc::Poll => {
                    if s.polls_done < self.polls {
                        // Pending: the poll registered a waker with the
                        // resource, which may fire at any later step —
                        // including before we reach `try_park`.
                        n.polls_done += 1;
                        n.armed += 1;
                        n.workers[i] = Wpc::TryPark;
                    } else {
                        n.workers[i] = Wpc::Finish;
                    }
                }
                Wpc::TryPark => {
                    if s.cell == Cell::Running {
                        // CAS Running → Parked: ownership handed to the
                        // waker; back to scanning the queue.
                        n.cell = Cell::Parked;
                        n.workers[i] = Wpc::Idle;
                    } else {
                        // CAS failed: a wake recorded Notified mid-poll.
                        n.workers[i] = Wpc::ConsumeNotify;
                    }
                }
                Wpc::ConsumeNotify => {
                    // store(RUNNING): consume the notification, keep
                    // ownership, re-poll inline.
                    n.cell = Cell::Running;
                    n.workers[i] = Wpc::Poll;
                }
                Wpc::Finish => {
                    n.cell = Cell::Complete;
                    n.done = true;
                    n.workers[i] = Wpc::Idle;
                }
            }
            out.push(n);
        }
        // Waker steps.
        {
            let mut n = s.clone();
            match s.waker {
                Kpc::Idle => {
                    if s.armed > 0 {
                        // Pick up a fired readiness event and deliver
                        // it through wake().
                        n.armed -= 1;
                        n.waker = Kpc::Load;
                        out.push(n);
                    }
                }
                Kpc::Load => {
                    n.waker = match s.cell {
                        Cell::Parked => Kpc::SawParked,
                        Cell::Running => Kpc::SawRunning,
                        // Already queued, already notified, or done:
                        // the wake coalesces.
                        Cell::Scheduled | Cell::Notified | Cell::Complete => Kpc::Idle,
                    };
                    out.push(n);
                }
                Kpc::SawParked => {
                    if s.cell == Cell::Parked {
                        // CAS Parked → Scheduled: this wake owns the
                        // re-enqueue.
                        n.cell = Cell::Scheduled;
                        n.waker = Kpc::Enqueue;
                    } else {
                        // The poller cannot un-park the task (only a
                        // wake can), but model the retry loop anyway.
                        n.waker = Kpc::Load;
                    }
                    out.push(n);
                }
                Kpc::SawRunning => {
                    match self.variant {
                        ParkWakeVariant::Correct => {
                            if s.cell == Cell::Running {
                                // CAS Running → Notified: the poller
                                // will observe it at try_park.
                                n.cell = Cell::Notified;
                                n.waker = Kpc::Idle;
                            } else {
                                // Poller parked between our load and
                                // CAS: retry, we'll see Parked now.
                                n.waker = Kpc::Load;
                            }
                        }
                        // Broken: "it's running, the poller will
                        // notice readiness itself" — drop the wake.
                        ParkWakeVariant::DropRunningWake => {
                            n.waker = Kpc::Idle;
                        }
                    }
                    out.push(n);
                }
                Kpc::Enqueue => {
                    n.queued = true;
                    n.waker = Kpc::Idle;
                    out.push(n);
                }
            }
        }
    }

    fn is_terminal(&self, s: &ParkWakeState) -> bool {
        s.done
            && s.cell == Cell::Complete
            && !s.queued
            && s.armed == 0
            && s.waker == Kpc::Idle
            && s.workers.iter().all(|pc| *pc == Wpc::Idle)
    }

    fn check(&self, s: &ParkWakeState) -> Result<(), String> {
        if s.polls_done > self.polls {
            return Err(format!(
                "future polled Pending {} times, bound is {}",
                s.polls_done, self.polls
            ));
        }
        if s.armed > 1 {
            return Err(format!(
                "{} readiness events in flight; each park arms exactly one",
                s.armed
            ));
        }
        if s.queued && s.cell != Cell::Scheduled {
            return Err(format!(
                "queue holds a task in state {:?}; queues hold Scheduled tasks only",
                s.cell
            ));
        }
        if s.done && s.cell != Cell::Complete {
            return Err(format!("run marked done but the cell is {:?}", s.cell));
        }
        let polling = s
            .workers
            .iter()
            .filter(|pc| {
                matches!(
                    pc,
                    Wpc::Claim | Wpc::Poll | Wpc::TryPark | Wpc::ConsumeNotify | Wpc::Finish
                )
            })
            .count();
        if polling > 1 {
            return Err(format!("{polling} workers own the task simultaneously"));
        }
        for pc in &s.workers {
            // Mirror the debug_asserts in TaskCell.
            let ok = match pc {
                Wpc::Claim => s.cell == Cell::Scheduled,
                Wpc::Poll | Wpc::TryPark | Wpc::Finish => {
                    matches!(s.cell, Cell::Running | Cell::Notified)
                }
                Wpc::ConsumeNotify => s.cell == Cell::Notified,
                Wpc::Idle => true,
            };
            if !ok {
                return Err(format!(
                    "worker at {pc:?} with the cell in state {:?}",
                    s.cell
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conc::explore::{explore, Violation};

    #[test]
    fn correct_protocol_has_no_lost_wakeups() {
        for workers in [1usize, 2] {
            for polls in [1u8, 2, 3] {
                let model = ParkWakeModel {
                    workers,
                    polls,
                    variant: ParkWakeVariant::Correct,
                };
                let r = explore(&model, 1_000_000).unwrap_or_else(|v| {
                    panic!("workers={workers} polls={polls}: {v}");
                });
                assert!(r.states > 0);
                assert!(r.terminals >= 1, "no terminal reached");
            }
        }
    }

    #[test]
    fn notified_path_is_reachable() {
        // With polls ≥ 1 the interleaving "waker fires before try_park"
        // must appear, i.e. some state has the cell Notified. Use a
        // wrapper invariant that *fails* when Notified shows up to
        // prove the explorer visits it.
        struct SeesNotified(ParkWakeModel);
        impl Model for SeesNotified {
            type State = ParkWakeState;
            fn initial(&self) -> ParkWakeState {
                self.0.initial()
            }
            fn successors(&self, s: &ParkWakeState, out: &mut Vec<ParkWakeState>) {
                self.0.successors(s, out);
            }
            fn is_terminal(&self, s: &ParkWakeState) -> bool {
                self.0.is_terminal(s)
            }
            fn check(&self, s: &ParkWakeState) -> Result<(), String> {
                self.0.check(s)?;
                if s.cell == Cell::Notified {
                    return Err("reached Notified".into());
                }
                Ok(())
            }
        }
        let probe = SeesNotified(ParkWakeModel {
            workers: 1,
            polls: 1,
            variant: ParkWakeVariant::Correct,
        });
        match explore(&probe, 1_000_000) {
            Err(Violation::Invariant { detail, .. }) => {
                assert_eq!(detail, "reached Notified");
            }
            other => panic!("Notified state never reached: {other:?}"),
        }
    }

    #[test]
    fn planted_dropped_wake_is_a_lost_wakeup() {
        for workers in [1usize, 2] {
            let model = ParkWakeModel {
                workers,
                polls: 1,
                variant: ParkWakeVariant::DropRunningWake,
            };
            match explore(&model, 1_000_000) {
                Err(Violation::Deadlock { state, .. }) => {
                    assert!(
                        state.contains("Parked"),
                        "the stuck state should be a parked task: {state}"
                    );
                }
                other => panic!("planted lost wakeup not detected: {other:?}"),
            }
        }
    }
}
