//! Model of the `shims/crossbeam` work-stealing deque protocol.
//!
//! The shim backs each worker deque with a mutex: the owner pushes and
//! pops at the back under the lock, thieves `try_lock` and either
//! batch-steal from the front (up to half the items, capped) or report
//! `Steal::Retry` when the lock is held. The safety property is item
//! conservation: across every interleaving of owner pushes/pops and
//! concurrent thief steals, every pushed item is consumed exactly once
//! — nothing lost, nothing duplicated.
//!
//! [`DequeVariant::ForgetRemove`] models the classic batch-steal bug
//! (copying the stolen range without removing it from the deque), which
//! the conservation invariant catches immediately.

use super::explore::Model;

/// Which steal implementation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeVariant {
    /// The shipped protocol: stolen items are removed from the deque.
    Correct,
    /// Deliberately broken: the stolen batch is copied but not removed,
    /// duplicating items. Exists to prove the harness detects
    /// conservation bugs.
    ForgetRemove,
}

/// Program counter of the owner thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Opc {
    /// Wants the lock to push item `n`.
    PushLock(u8),
    /// Holds the lock; about to append item `n` at the back.
    PushCommit(u8),
    /// Wants the lock to pop from the back.
    PopLock,
    /// Holds the lock; about to pop (or observe empty and finish).
    PopCommit,
    /// Observed an empty deque after pushing everything.
    Done,
}

/// Program counter of one thief thread. The payload is the number of
/// steal attempts left.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Tpc {
    /// Wants the lock for a batch steal (`try_lock`: a held lock is a
    /// disabled transition, modeling `Steal::Retry`).
    Steal(u8),
    /// Holds the lock; about to move up to half the items (capped at 2)
    /// from the front into the local buffer.
    Locked(u8),
    /// Draining the local buffer, one consume per step.
    Drain(u8),
    /// Out of attempts and drained.
    Done,
}

/// Who holds the deque mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Lock {
    Free,
    Owner,
    Thief(u8),
}

/// One snapshot of the deque protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DequeState {
    /// Deque contents, front..back.
    deque: Vec<u8>,
    lock: Lock,
    owner: Opc,
    thieves: Vec<Tpc>,
    /// Per-thief stolen-but-not-yet-consumed buffers.
    locals: Vec<Vec<u8>>,
    /// Items consumed so far (kept sorted: consumption order is not
    /// part of the property, canonicalizing shrinks the state space).
    consumed: Vec<u8>,
}

/// The deque model: one owner pushing `items` items then popping until
/// empty, with `thieves` concurrent thieves each making `attempts`
/// batch-steal attempts.
#[derive(Debug, Clone, Copy)]
pub struct DequeModel {
    /// Items the owner pushes (ids `1..=items`).
    pub items: u8,
    /// Concurrent thief threads.
    pub thieves: u8,
    /// Batch-steal attempts per thief.
    pub attempts: u8,
    /// Steal-implementation variant.
    pub variant: DequeVariant,
}

impl DequeModel {
    /// Batch size the shim would steal: half the deque, capped (the
    /// shim's cap is 32; the model uses 2 to keep bounds small while
    /// still exercising multi-item batches).
    fn batch(&self, len: usize) -> usize {
        len.div_ceil(2).min(2)
    }
}

fn insert_sorted(v: &mut Vec<u8>, x: u8) {
    let pos = v.partition_point(|e| *e <= x);
    v.insert(pos, x);
}

impl Model for DequeModel {
    type State = DequeState;

    fn initial(&self) -> DequeState {
        DequeState {
            deque: Vec::new(),
            lock: Lock::Free,
            owner: if self.items > 0 {
                Opc::PushLock(1)
            } else {
                Opc::Done
            },
            thieves: vec![Tpc::Steal(self.attempts); self.thieves as usize],
            locals: vec![Vec::new(); self.thieves as usize],
            consumed: Vec::new(),
        }
    }

    fn successors(&self, s: &DequeState, out: &mut Vec<DequeState>) {
        // Owner steps.
        match s.owner {
            Opc::PushLock(n) => {
                if s.lock == Lock::Free {
                    let mut x = s.clone();
                    x.lock = Lock::Owner;
                    x.owner = Opc::PushCommit(n);
                    out.push(x);
                }
            }
            Opc::PushCommit(n) => {
                let mut x = s.clone();
                x.deque.push(n);
                x.lock = Lock::Free;
                x.owner = if n < self.items {
                    Opc::PushLock(n + 1)
                } else {
                    Opc::PopLock
                };
                out.push(x);
            }
            Opc::PopLock => {
                if s.lock == Lock::Free {
                    let mut x = s.clone();
                    x.lock = Lock::Owner;
                    x.owner = Opc::PopCommit;
                    out.push(x);
                }
            }
            Opc::PopCommit => {
                let mut x = s.clone();
                x.lock = Lock::Free;
                if let Some(item) = x.deque.pop() {
                    insert_sorted(&mut x.consumed, item);
                    x.owner = Opc::PopLock;
                } else {
                    x.owner = Opc::Done;
                }
                out.push(x);
            }
            Opc::Done => {}
        }
        // Thief steps.
        for (i, pc) in s.thieves.iter().copied().enumerate() {
            match pc {
                Tpc::Steal(a) => {
                    if a == 0 {
                        continue;
                    }
                    if s.lock == Lock::Free {
                        let mut x = s.clone();
                        x.lock = Lock::Thief(i as u8);
                        x.thieves[i] = Tpc::Locked(a);
                        out.push(x);
                    }
                    // A held lock is Steal::Retry: disabled, no step.
                }
                Tpc::Locked(a) => {
                    let mut x = s.clone();
                    let take = self.batch(x.deque.len());
                    let stolen: Vec<u8> = match self.variant {
                        DequeVariant::Correct => x.deque.drain(..take).collect(),
                        DequeVariant::ForgetRemove => x.deque[..take].to_vec(),
                    };
                    x.locals[i].extend(stolen);
                    x.lock = Lock::Free;
                    x.thieves[i] = Tpc::Drain(a - 1);
                    out.push(x);
                }
                Tpc::Drain(a) => {
                    let mut x = s.clone();
                    if let Some(item) = x.locals[i].pop() {
                        insert_sorted(&mut x.consumed, item);
                        x.thieves[i] = Tpc::Drain(a);
                    } else {
                        x.thieves[i] = if a > 0 { Tpc::Steal(a) } else { Tpc::Done };
                    }
                    out.push(x);
                }
                Tpc::Done => {}
            }
        }
    }

    fn is_terminal(&self, s: &DequeState) -> bool {
        s.owner == Opc::Done
            && s.deque.is_empty()
            && s.locals.iter().all(Vec::is_empty)
            && s.consumed.len() == self.items as usize
            && s.thieves
                .iter()
                .all(|pc| matches!(pc, Tpc::Done | Tpc::Steal(0)))
    }

    fn check(&self, s: &DequeState) -> Result<(), String> {
        // Conservation: deque ⊎ locals ⊎ consumed is exactly the set of
        // pushed items, each exactly once.
        let pushed: u8 = match s.owner {
            Opc::PushLock(n) | Opc::PushCommit(n) => n - 1,
            _ => self.items,
        };
        let mut all: Vec<u8> = s.deque.clone();
        for l in &s.locals {
            all.extend_from_slice(l);
        }
        all.extend_from_slice(&s.consumed);
        all.sort_unstable();
        let expect: Vec<u8> = (1..=pushed).collect();
        if all != expect {
            return Err(format!(
                "conservation broken: have {all:?}, expected {expect:?}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conc::explore::{explore, Violation};

    #[test]
    fn push_steal_pop_conserves_items_4x2() {
        let m = DequeModel {
            items: 4,
            thieves: 2,
            attempts: 2,
            variant: DequeVariant::Correct,
        };
        let r = explore(&m, 5_000_000).expect("items conserved");
        assert!(r.states > 100, "exploration is non-trivial: {r:?}");
        assert!(r.terminals >= 1, "quiescence is reachable: {r:?}");
    }

    #[test]
    fn forgetting_to_remove_stolen_items_is_caught() {
        let m = DequeModel {
            items: 2,
            thieves: 1,
            attempts: 1,
            variant: DequeVariant::ForgetRemove,
        };
        let e = explore(&m, 5_000_000).unwrap_err();
        match e {
            Violation::Invariant { ref detail, .. } => {
                assert!(detail.contains("conservation"), "{e}");
            }
            other => panic!("expected invariant violation, got {other}"),
        }
    }

    #[test]
    fn no_thieves_degenerates_to_lifo_pop() {
        let m = DequeModel {
            items: 3,
            thieves: 0,
            attempts: 0,
            variant: DequeVariant::Correct,
        };
        let r = explore(&m, 10_000).expect("sequential owner");
        assert_eq!(r.terminals, 1);
    }
}
