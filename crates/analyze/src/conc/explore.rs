//! Exhaustive state-space exploration over small protocol models.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

/// A protocol model: an explicit-state transition system with a safety
/// invariant and a notion of legitimate quiescence.
pub trait Model {
    /// One snapshot of every thread's program counter plus the shared
    /// memory the protocol races on.
    type State: Clone + Eq + Hash + fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Appends every state reachable by one atomic step of one thread.
    /// A thread blocked on a held lock contributes no successor
    /// (disabled transition).
    fn successors(&self, state: &Self::State, out: &mut Vec<Self::State>);

    /// Is this quiescent state a legitimate final state? Only consulted
    /// for states with no successors; a quiescent state that is not
    /// terminal is a deadlock (for wake/sleep protocols: a lost
    /// wakeup).
    fn is_terminal(&self, state: &Self::State) -> bool;

    /// Safety invariant checked on every reached state. Returns a
    /// human-readable description of the violation.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// Statistics of a successful exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct states reached.
    pub states: usize,
    /// Distinct legitimate terminal states.
    pub terminals: usize,
    /// Longest simple path explored (in atomic steps).
    pub max_depth: usize,
}

/// Why an exploration failed.
#[derive(Debug, Clone)]
pub enum Violation {
    /// The safety invariant failed in a reachable state.
    Invariant {
        /// What the model reported.
        detail: String,
        /// Debug rendering of the violating state.
        state: String,
        /// Steps from the initial state.
        depth: usize,
    },
    /// A reachable quiescent state is not a legitimate terminal.
    Deadlock {
        /// Debug rendering of the stuck state.
        state: String,
        /// Steps from the initial state.
        depth: usize,
    },
    /// The state space exceeded the caller's bound, so the run proves
    /// nothing — bounds must be raised, not ignored.
    StateLimit {
        /// The configured bound.
        limit: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Invariant {
                detail,
                state,
                depth,
            } => write!(
                f,
                "invariant violated after {depth} steps: {detail}\n  state: {state}"
            ),
            Violation::Deadlock { state, depth } => write!(
                f,
                "deadlock (non-terminal quiescent state) after {depth} steps\n  state: {state}"
            ),
            Violation::StateLimit { limit } => {
                write!(f, "state space exceeds the {limit}-state bound")
            }
        }
    }
}

/// Exhaustively explores `model`'s reachable state space.
///
/// Every distinct state is visited exactly once (DFS with memoization).
/// Returns statistics on success, or the first violation found:
/// an invariant failure, a deadlock, or a state-space blow-up past
/// `max_states` (treated as a failure so bounds stay honest).
///
/// # Errors
///
/// Returns [`Violation`] as described above.
pub fn explore<M: Model>(model: &M, max_states: usize) -> Result<Exploration, Violation> {
    let init = model.initial();
    let mut visited: HashSet<M::State> = HashSet::new();
    visited.insert(init.clone());
    let mut stack: Vec<(M::State, usize)> = vec![(init, 0)];
    let mut succ: Vec<M::State> = Vec::new();
    let mut terminals = 0usize;
    let mut max_depth = 0usize;
    while let Some((state, depth)) = stack.pop() {
        max_depth = max_depth.max(depth);
        if let Err(detail) = model.check(&state) {
            return Err(Violation::Invariant {
                detail,
                state: format!("{state:?}"),
                depth,
            });
        }
        succ.clear();
        model.successors(&state, &mut succ);
        if succ.is_empty() {
            if model.is_terminal(&state) {
                terminals += 1;
            } else {
                return Err(Violation::Deadlock {
                    state: format!("{state:?}"),
                    depth,
                });
            }
            continue;
        }
        for next in succ.drain(..) {
            if visited.contains(&next) {
                continue;
            }
            visited.insert(next.clone());
            if visited.len() > max_states {
                return Err(Violation::StateLimit { limit: max_states });
            }
            stack.push((next, depth + 1));
        }
    }
    Ok(Exploration {
        states: visited.len(),
        terminals,
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that two "threads" increment once each; terminal at 2.
    struct Counter {
        broken: bool,
    }

    impl Model for Counter {
        type State = (u8, [bool; 2]);

        fn initial(&self) -> Self::State {
            (0, [false, false])
        }

        fn successors(&self, s: &Self::State, out: &mut Vec<Self::State>) {
            for t in 0..2 {
                if !s.1[t] {
                    let mut n = *s;
                    n.0 += 1;
                    n.1[t] = true;
                    // The broken variant deadlocks thread 1 forever.
                    if !(self.broken && t == 1) {
                        out.push(n);
                    }
                }
            }
        }

        fn is_terminal(&self, s: &Self::State) -> bool {
            s.0 == 2
        }

        fn check(&self, s: &Self::State) -> Result<(), String> {
            if s.0 > 2 {
                return Err(format!("counter overshot: {}", s.0));
            }
            Ok(())
        }
    }

    #[test]
    fn explores_all_interleavings() {
        let r = explore(&Counter { broken: false }, 1000).expect("sound model");
        // States: 0/none, 1/t0, 1/t1, 2/both = 4.
        assert_eq!(r.states, 4);
        assert_eq!(r.terminals, 1);
        assert_eq!(r.max_depth, 2);
    }

    #[test]
    fn detects_deadlock() {
        let e = explore(&Counter { broken: true }, 1000).unwrap_err();
        assert!(matches!(e, Violation::Deadlock { .. }), "{e}");
    }

    #[test]
    fn state_limit_is_an_error() {
        let e = explore(&Counter { broken: false }, 2).unwrap_err();
        assert!(matches!(e, Violation::StateLimit { limit: 2 }), "{e}");
    }
}
