//! Ahead-of-run workflow verification and concurrency model checking.
//!
//! `continuum-analyze` closes the gap between the runtime's *dynamic*
//! dependency discovery and the cost of a mis-declared workflow: with
//! `In`/`Out`/`InOut` access annotations, an output nobody reads, a
//! read with no producer or a constraint no node can satisfy only
//! surfaces — or silently wastes a cluster — at execution time. This
//! crate lints the workflow program before it runs, and model-checks
//! the runtime's hand-rolled concurrency protocols before they ship.
//!
//! # The workflow verifier
//!
//! [`LintBundle`] packages a task graph with the platform it should run
//! on; [`LintBundle::verify`] runs the lint catalogue ([`Lint`]) and
//! returns structured [`Diagnostic`]s. Three front ends share it:
//!
//! * the `continuum-lint` CLI (JSON and human output over a serialized
//!   bundle),
//! * strict-lints mode in both runtime engines (`LocalRuntime` checks
//!   per submission, `SimRuntime` verifies the whole workload before
//!   the run; [`LintMode::Reject`] turns errors into
//!   `RuntimeError::LintRejected`),
//! * this programmatic API.
//!
//! # The concurrency checker
//!
//! [`conc`] is a mini-loom: protocol models of the executor's
//! counted-sleeper wake/sleep protocol and the `shims/crossbeam` deque
//! are explored exhaustively over every interleaving at small bounds,
//! with deliberately-broken variants proving the harness detects the
//! historical failure modes. The `model_check` binary runs the models
//! in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conc;
mod diag;
mod verify;

pub use diag::{sort_report, Diagnostic, Lint, Severity};
pub use verify::{
    check_task_constraints, has_errors, lint_nodes, read_without_producer, LintBundle, LintNode,
    StreamInfo,
};

/// How strictly a runtime applies the workflow verifier at submit/run
/// time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LintMode {
    /// Do not run the verifier (the default).
    #[default]
    Off,
    /// Run the verifier and print findings to stderr, but execute
    /// anyway.
    Warn,
    /// Run the verifier and refuse to execute workflows with
    /// `Error`-severity findings, returning the structured report.
    Reject,
}
