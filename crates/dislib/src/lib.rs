//! Distributed machine learning for the `continuum` runtime — the
//! dislib-equivalent of the paper (§VI-C: "a distributed computing
//! library for machine learning which is internally parallelized with
//! PyCOMPSs", offering "a simple and easy to use interface").
//!
//! Data lives in [`DistMatrix`] — a row-block-partitioned dense matrix
//! whose blocks are values in a [`continuum_runtime::LocalRuntime`]
//! dataflow — and estimators follow the scikit-learn-style
//! `fit`/`predict`/`transform` convention dislib adopts:
//!
//! * [`KMeans`] — Lloyd's algorithm with per-block partial reductions;
//! * [`KnnClassifier`] — k-nearest neighbours with per-block candidate
//!   search;
//! * [`GaussianNb`] — Gaussian naive Bayes from blocked sufficient
//!   statistics;
//! * [`LinearRegression`] — ordinary least squares via blocked normal
//!   equations;
//! * [`StandardScaler`] — per-column standardisation;
//! * [`Pca`] — principal components through power iteration on the
//!   blocked covariance matrix.
//!
//! Every estimator builds a task graph: block-level partials run in
//! parallel across the runtime's workers, reductions merge them, and
//! results come back through typed handles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod error;
mod kmeans;
mod knn;
mod linreg;
mod matrix;
pub mod metrics;
mod naive_bayes;
mod pca;
mod scaler;

pub use array::DistMatrix;
pub use error::DislibError;
pub use kmeans::{KMeans, KMeansModel};
pub use knn::{KnnClassifier, KnnModel};
pub use linreg::{LinearModel, LinearRegression};
pub use matrix::Matrix;
pub use naive_bayes::{GaussianNb, GaussianNbModel};
pub use pca::{Pca, PcaModel};
pub use scaler::StandardScaler;
