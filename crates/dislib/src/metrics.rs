//! Model-evaluation utilities: train/test splitting and scores.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits row indices into shuffled train/test sets.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1` and `rows > 1`.
pub fn train_test_split(rows: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(rows > 1, "need at least two rows to split");
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut idx: Vec<usize> = (0..rows).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_test = ((rows as f64 * test_fraction).round() as usize).clamp(1, rows - 1);
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

/// Selects rows of a matrix by index.
///
/// # Panics
///
/// Panics on out-of-range indices.
pub fn take_rows(m: &Matrix, indices: &[usize]) -> Matrix {
    let rows: Vec<Vec<f64>> = indices.iter().map(|i| m.row(*i).to_vec()).collect();
    Matrix::from_rows(&rows)
}

/// Fraction of matching labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "label count mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(predicted).filter(|(a, b)| a == b).count();
    hits as f64 / truth.len() as f64
}

/// Mean squared error between two column vectors (single-target).
///
/// # Panics
///
/// Panics if the matrices have different shapes.
pub fn mean_squared_error(truth: &Matrix, predicted: &Matrix) -> f64 {
    assert_eq!(
        (truth.rows(), truth.cols()),
        (predicted.rows(), predicted.cols()),
        "shape mismatch"
    );
    if truth.rows() == 0 {
        return 0.0;
    }
    let n = (truth.rows() * truth.cols()) as f64;
    truth
        .as_slice()
        .iter()
        .zip(predicted.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / n
}

/// Coefficient of determination (R²) for single-target predictions.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn r2_score(truth: &Matrix, predicted: &Matrix) -> f64 {
    assert_eq!(
        (truth.rows(), truth.cols()),
        (predicted.rows(), predicted.cols()),
        "shape mismatch"
    );
    let n = truth.rows() as f64;
    let mean: f64 = truth.as_slice().iter().sum::<f64>() / (n * truth.cols() as f64);
    let ss_res: f64 = truth
        .as_slice()
        .iter()
        .zip(predicted.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let ss_tot: f64 = truth
        .as_slice()
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_all_rows() {
        let (train, test) = train_test_split(100, 0.25, 7);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // Deterministic.
        assert_eq!(train_test_split(100, 0.25, 7), (train, test));
        // Shuffled.
        let (train2, _) = train_test_split(100, 0.25, 8);
        assert_ne!(train2, train_test_split(100, 0.25, 7).0);
    }

    #[test]
    fn split_always_keeps_both_sides_non_empty() {
        let (train, test) = train_test_split(2, 0.01, 0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
        let (train, test) = train_test_split(2, 0.99, 0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn take_rows_selects() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let t = take_rows(&m, &[2, 0]);
        assert_eq!(t.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3, 4], &[1, 2, 0, 4]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn mse_and_r2() {
        let truth = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let perfect = truth.clone();
        assert_eq!(mean_squared_error(&truth, &perfect), 0.0);
        assert_eq!(r2_score(&truth, &perfect), 1.0);
        let off = Matrix::from_rows(&[vec![2.0], vec![3.0], vec![4.0]]);
        assert_eq!(mean_squared_error(&truth, &off), 1.0);
        assert!(r2_score(&truth, &off) < 1.0);
        // Predicting the mean gives R² = 0.
        let mean = Matrix::from_rows(&[vec![2.0], vec![2.0], vec![2.0]]);
        assert!(r2_score(&truth, &mean).abs() < 1e-12);
    }
}
