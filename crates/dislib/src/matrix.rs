//! Dense row-major matrices: the block type of [`crate::DistMatrix`]
//! and the host of the small linear-algebra kernels estimators need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let m = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * m);
        for r in rows {
            assert_eq!(r.len(), m, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: n,
            cols: m,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Solves `self * x = b` for square `self` via Gaussian
    /// elimination with partial pivoting. Returns `None` if the system
    /// is singular.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `b` has a different row
    /// count.
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(self.rows, b.rows, "rhs row mismatch");
        let n = self.rows;
        let m = b.cols;
        // Augmented system.
        let mut a = self.data.clone();
        let mut rhs = b.data.clone();
        for col in 0..n {
            // Partial pivot.
            let pivot = (col..n)
                .max_by(|x, y| {
                    a[x * n + col]
                        .abs()
                        .partial_cmp(&a[y * n + col].abs())
                        .expect("finite")
                })
                .expect("non-empty");
            if a[pivot * n + col].abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                for j in 0..m {
                    rhs.swap(col * m + j, pivot * m + j);
                }
            }
            let diag = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                for j in 0..m {
                    rhs[row * m + j] -= factor * rhs[col * m + j];
                }
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n * m];
        for col in (0..n).rev() {
            for j in 0..m {
                let mut v = rhs[col * m + j];
                for k in (col + 1)..n {
                    v -= a[col * n + k] * x[k * m + j];
                }
                x[col * m + j] = v / a[col * n + col];
            }
        }
        Some(Matrix {
            rows: n,
            cols: m,
            data: x,
        })
    }

    /// Squared Euclidean distance between a row of `self` and a row of
    /// `other`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or differing column counts.
    pub fn row_distance_sq(&self, r: usize, other: &Matrix, o: usize) -> f64 {
        assert_eq!(self.cols, other.cols, "column mismatch");
        self.row(r)
            .iter()
            .zip(other.row(o))
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self.row(r).iter().map(|v| format!("{v:.4}")).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.at(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        let mut z = Matrix::zeros(2, 2);
        z.set(0, 1, 5.0);
        assert_eq!(z.at(0, 1), 5.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn bad_from_vec_rejected() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.at(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_scale_norm() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        let b = a.add(&a);
        assert_eq!(b.as_slice(), &[6.0, 8.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn vstack_stacks() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = a.vstack(&b);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn solve_identity_and_known_system() {
        let i = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![7.0], vec![9.0]]);
        assert_eq!(i.solve(&b).unwrap(), b);
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let rhs = Matrix::from_rows(&[vec![5.0], vec![10.0]]);
        let x = a.solve(&rhs).unwrap();
        assert!((x.at(0, 0) - 1.0).abs() < 1e-12);
        assert!((x.at(1, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![2.0], vec![3.0]]);
        let x = a.solve(&b).unwrap();
        assert!((x.at(0, 0) - 3.0).abs() < 1e-12);
        assert!((x.at(1, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn row_distance() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(a.row_distance_sq(0, &a, 1), 25.0);
    }

    #[test]
    fn display_truncates() {
        let m = Matrix::zeros(20, 2);
        let s = m.to_string();
        assert!(s.contains("[20x2]"));
        assert!(s.contains("..."));
    }
}
