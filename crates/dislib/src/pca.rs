//! Principal component analysis via blocked covariance and power
//! iteration with deflation.

use crate::array::DistMatrix;
use crate::error::DislibError;
use crate::matrix::Matrix;
use crate::scaler::StandardScaler;
use continuum_dag::TaskSpec;
use continuum_platform::Constraints;
use continuum_runtime::LocalRuntime;

/// PCA estimator: centers the data (blocked), accumulates the `d × d`
/// covariance from per-block partials (parallel tasks), then extracts
/// the leading components by power iteration with deflation.
///
/// # Example
///
/// ```
/// use continuum_runtime::{LocalRuntime, LocalConfig};
/// use continuum_dislib::{DistMatrix, Pca, Matrix};
///
/// let rt = LocalRuntime::new(LocalConfig::with_workers(2));
/// // Points on the line y = x: one dominant direction.
/// let m = Matrix::from_rows(&[
///     vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0], vec![4.0, 4.1],
/// ]);
/// let dm = DistMatrix::from_matrix(&rt, &m, 2);
/// let model = Pca::new(1).fit(&rt, &dm)?;
/// let c = model.components();
/// assert!((c.at(0, 0).abs() - c.at(0, 1).abs()).abs() < 0.05);
/// # Ok::<(), continuum_dislib::DislibError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    n_components: usize,
    max_iter: usize,
    tol: f64,
}

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct PcaModel {
    components: Matrix,
    explained_variance: Vec<f64>,
    mean: Vec<f64>,
}

impl Pca {
    /// Creates a PCA estimator extracting `n_components` directions.
    ///
    /// # Panics
    ///
    /// Panics if `n_components` is zero.
    pub fn new(n_components: usize) -> Self {
        assert!(n_components > 0, "need at least one component");
        Pca {
            n_components,
            max_iter: 500,
            tol: 1e-10,
        }
    }

    /// Sets the power-iteration limit.
    pub fn max_iter(mut self, n: usize) -> Self {
        self.max_iter = n.max(1);
        self
    }

    /// Fits the model.
    ///
    /// # Errors
    ///
    /// * [`DislibError::InvalidParam`] if `n_components > d`;
    /// * runtime errors from the task graph.
    pub fn fit(&self, rt: &LocalRuntime, x: &DistMatrix) -> Result<PcaModel, DislibError> {
        let d = x.cols();
        if self.n_components > d {
            return Err(DislibError::InvalidParam(format!(
                "{} components from {d} features",
                self.n_components
            )));
        }
        // Center using the scaler's means (keep original scale).
        let scaler = StandardScaler::fit(rt, x)?;
        let mean = scaler.mean().to_vec();
        let shift = mean.clone();
        let centered = x.map_blocks(rt, "pca_center", move |b| {
            let mut out = Matrix::zeros(b.rows(), b.cols());
            for r in 0..b.rows() {
                for (c, s) in shift.iter().enumerate() {
                    out.set(r, c, b.at(r, c) - s);
                }
            }
            out
        })?;
        // Blocked covariance: sum of per-block XᵀX.
        let mut partials = Vec::with_capacity(centered.num_blocks());
        for (i, block) in centered.blocks().iter().enumerate() {
            let out = rt.data::<Matrix>(format!("pca_part_{i}"));
            rt.submit(
                TaskSpec::new("pca_partial")
                    .input(block.id())
                    .output(out.id()),
                Constraints::new(),
                move |ctx| {
                    let b: &Matrix = ctx.input(0);
                    ctx.set_output(0, b.transpose().matmul(b));
                },
            )?;
            partials.push(out);
        }
        let reduced = rt.data::<Matrix>("pca_reduced");
        let n_parts = partials.len();
        rt.submit(
            TaskSpec::new("pca_reduce")
                .inputs(partials.iter().map(|p| p.id()))
                .output(reduced.id()),
            Constraints::new(),
            move |ctx| {
                let mut acc = ctx.input::<Matrix>(0).clone();
                for i in 1..n_parts {
                    acc = acc.add(ctx.input::<Matrix>(i));
                }
                ctx.set_output(0, acc);
            },
        )?;
        let denom = (x.rows().max(2) - 1) as f64;
        let mut cov = rt.get(&reduced)?.scale(1.0 / denom);

        // Power iteration with deflation, locally on the small d × d.
        let mut components = Matrix::zeros(self.n_components, d);
        let mut explained = Vec::with_capacity(self.n_components);
        for comp in 0..self.n_components {
            let (v, lambda) = self.power_iteration(&cov, comp as u64);
            for (c, value) in v.iter().enumerate() {
                components.set(comp, c, *value);
            }
            explained.push(lambda.max(0.0));
            // Deflate: cov -= λ v vᵀ.
            for r in 0..d {
                for c in 0..d {
                    cov.set(r, c, cov.at(r, c) - lambda * v[r] * v[c]);
                }
            }
        }
        Ok(PcaModel {
            components,
            explained_variance: explained,
            mean,
        })
    }

    /// Returns `(eigenvector, eigenvalue)` of the dominant direction.
    fn power_iteration(&self, cov: &Matrix, seed: u64) -> (Vec<f64>, f64) {
        let d = cov.rows();
        // Deterministic non-degenerate start vector.
        let mut v: Vec<f64> = (0..d)
            .map(|i| 1.0 + ((i as u64 + seed * 31 + 1) % 7) as f64 * 0.1)
            .collect();
        normalize(&mut v);
        let mut lambda = 0.0;
        for _ in 0..self.max_iter {
            let mut next = vec![0.0; d];
            for (r, item) in next.iter_mut().enumerate() {
                *item = (0..d).map(|c| cov.at(r, c) * v[c]).sum();
            }
            let new_lambda = norm(&next);
            if new_lambda < 1e-15 {
                // Null space reached (rank-deficient covariance).
                return (v, 0.0);
            }
            for item in &mut next {
                *item /= new_lambda;
            }
            let diff: f64 = next
                .iter()
                .zip(&v)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            v = next;
            lambda = new_lambda;
            if diff < self.tol {
                break;
            }
        }
        (v, lambda)
    }
}

impl PcaModel {
    /// The components, one per row (`n_components × d`), unit-norm.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Variance captured by each component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Projects a distributed matrix onto the components
    /// (block-parallel); the result has `n_components` columns.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn transform(&self, rt: &LocalRuntime, x: &DistMatrix) -> Result<Matrix, DislibError> {
        let comps_t = self.components.transpose();
        let mean = self.mean.clone();
        let k = self.components.rows();
        let projected = x.map_blocks(rt, "pca_transform", move |b| {
            let mut centered = Matrix::zeros(b.rows(), b.cols());
            for r in 0..b.rows() {
                for (c, m) in mean.iter().enumerate() {
                    centered.set(r, c, b.at(r, c) - m);
                }
            }
            centered.matmul(&comps_t)
        })?;
        projected.with_cols(k).collect(rt)
    }
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        for a in v {
            *a /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_runtime::LocalConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rt() -> LocalRuntime {
        LocalRuntime::new(LocalConfig::with_workers(4))
    }

    /// Anisotropic cloud: variance 100 along (1,1)/√2, 1 along (1,-1)/√2.
    fn cloud() -> Matrix {
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                let main: f64 = rng.gen::<f64>() * 20.0 - 10.0;
                let minor: f64 = rng.gen::<f64>() - 0.5;
                let sx = std::f64::consts::FRAC_1_SQRT_2;
                vec![main * sx + minor * sx, main * sx - minor * sx]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn first_component_finds_dominant_direction() {
        let rt = rt();
        let dm = DistMatrix::from_matrix(&rt, &cloud(), 32);
        let model = Pca::new(2).fit(&rt, &dm).unwrap();
        let c = model.components();
        // Dominant direction ≈ (±1/√2, ±1/√2).
        let ratio = (c.at(0, 0) / c.at(0, 1)).abs();
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
        // Explained variances are sorted and the first dominates.
        let ev = model.explained_variance();
        assert!(ev[0] > 10.0 * ev[1], "{ev:?}");
    }

    #[test]
    fn components_are_orthonormal() {
        let rt = rt();
        let dm = DistMatrix::from_matrix(&rt, &cloud(), 32);
        let model = Pca::new(2).fit(&rt, &dm).unwrap();
        let c = model.components();
        let dot: f64 = (0..2).map(|i| c.at(0, i) * c.at(1, i)).sum();
        assert!(dot.abs() < 1e-6, "components not orthogonal: {dot}");
        for r in 0..2 {
            let n: f64 = (0..2).map(|i| c.at(r, i) * c.at(r, i)).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn transform_decorrelates() {
        let rt = rt();
        let dm = DistMatrix::from_matrix(&rt, &cloud(), 32);
        let model = Pca::new(2).fit(&rt, &dm).unwrap();
        let t = model.transform(&rt, &dm).unwrap();
        assert_eq!(t.cols(), 2);
        assert_eq!(t.rows(), 200);
        // Projected coordinates are uncorrelated.
        let n = t.rows() as f64;
        let mean0: f64 = (0..t.rows()).map(|r| t.at(r, 0)).sum::<f64>() / n;
        let mean1: f64 = (0..t.rows()).map(|r| t.at(r, 1)).sum::<f64>() / n;
        let cov: f64 = (0..t.rows())
            .map(|r| (t.at(r, 0) - mean0) * (t.at(r, 1) - mean1))
            .sum::<f64>()
            / n;
        assert!(cov.abs() < 0.5, "projected covariance {cov}");
    }

    #[test]
    fn too_many_components_rejected() {
        let rt = rt();
        let dm = DistMatrix::from_matrix(
            &rt,
            &Matrix::zeros(4, 2).add(&Matrix::from_rows(&[
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![0.5, 0.5],
            ])),
            2,
        );
        assert!(matches!(
            Pca::new(3).fit(&rt, &dm),
            Err(DislibError::InvalidParam(_))
        ));
    }
}
