//! Per-column standardisation (zero mean, unit variance).

use crate::array::DistMatrix;
use crate::error::DislibError;
use crate::matrix::Matrix;
use continuum_dag::TaskSpec;
use continuum_platform::Constraints;
use continuum_runtime::LocalRuntime;

/// Standard scaler: `fit` computes per-column mean/std with blocked
/// reductions, `transform` standardises block-parallel.
///
/// # Example
///
/// ```
/// use continuum_runtime::{LocalRuntime, LocalConfig};
/// use continuum_dislib::{DistMatrix, StandardScaler, Matrix};
///
/// let rt = LocalRuntime::new(LocalConfig::with_workers(2));
/// let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
/// let dm = DistMatrix::from_matrix(&rt, &m, 2);
/// let scaler = StandardScaler::fit(&rt, &dm)?;
/// let scaled = scaler.transform(&rt, &dm)?.collect(&rt)?;
/// assert!(scaled.as_slice().iter().sum::<f64>().abs() < 1e-9);
/// # Ok::<(), continuum_dislib::DislibError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Computes per-column statistics.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn fit(rt: &LocalRuntime, x: &DistMatrix) -> Result<StandardScaler, DislibError> {
        let d = x.cols();
        // Partial: 3 × d matrix of [sum; sum of squares; count].
        let mut partials = Vec::with_capacity(x.num_blocks());
        for (i, block) in x.blocks().iter().enumerate() {
            let out = rt.data::<Matrix>(format!("scaler_part_{i}"));
            rt.submit(
                TaskSpec::new("scaler_partial")
                    .input(block.id())
                    .output(out.id()),
                Constraints::new(),
                move |ctx| {
                    let b: &Matrix = ctx.input(0);
                    let mut acc = Matrix::zeros(3, d);
                    for r in 0..b.rows() {
                        for c in 0..d {
                            let v = b.at(r, c);
                            acc.set(0, c, acc.at(0, c) + v);
                            acc.set(1, c, acc.at(1, c) + v * v);
                            acc.set(2, c, acc.at(2, c) + 1.0);
                        }
                    }
                    ctx.set_output(0, acc);
                },
            )?;
            partials.push(out);
        }
        let reduced = rt.data::<Matrix>("scaler_reduced");
        let n_parts = partials.len();
        rt.submit(
            TaskSpec::new("scaler_reduce")
                .inputs(partials.iter().map(|p| p.id()))
                .output(reduced.id()),
            Constraints::new(),
            move |ctx| {
                let mut acc = ctx.input::<Matrix>(0).clone();
                for i in 1..n_parts {
                    acc = acc.add(ctx.input::<Matrix>(i));
                }
                ctx.set_output(0, acc);
            },
        )?;
        let acc = rt.get(&reduced)?;
        let mut mean = Vec::with_capacity(d);
        let mut std = Vec::with_capacity(d);
        for c in 0..d {
            let n = acc.at(2, c).max(1.0);
            let m = acc.at(0, c) / n;
            let var = (acc.at(1, c) / n - m * m).max(0.0);
            mean.push(m);
            // Constant columns keep scale 1 to avoid division by zero.
            std.push(if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 });
        }
        Ok(StandardScaler { mean, std })
    }

    /// Per-column means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-column standard deviations (1.0 for constant columns).
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Standardises a distributed matrix block-parallel.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn transform(&self, rt: &LocalRuntime, x: &DistMatrix) -> Result<DistMatrix, DislibError> {
        let mean = self.mean.clone();
        let std = self.std.clone();
        x.map_blocks(rt, "scaler_transform", move |b| {
            let mut out = Matrix::zeros(b.rows(), b.cols());
            for r in 0..b.rows() {
                for c in 0..b.cols() {
                    out.set(r, c, (b.at(r, c) - mean[c]) / std[c]);
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_runtime::LocalConfig;

    fn rt() -> LocalRuntime {
        LocalRuntime::new(LocalConfig::with_workers(4))
    }

    #[test]
    fn statistics_match_reference() {
        let rt = rt();
        let m = Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ]);
        let dm = DistMatrix::from_matrix(&rt, &m, 2);
        let s = StandardScaler::fit(&rt, &dm).unwrap();
        assert!((s.mean()[0] - 2.5).abs() < 1e-12);
        assert!((s.mean()[1] - 25.0).abs() < 1e-12);
        let expected_std = (1.25f64).sqrt();
        assert!((s.std()[0] - expected_std).abs() < 1e-12);
        assert!((s.std()[1] - 10.0 * expected_std).abs() < 1e-12);
    }

    #[test]
    fn transform_standardises() {
        let rt = rt();
        let m = Matrix::from_rows(&[vec![2.0], vec![4.0], vec![6.0], vec![8.0]]);
        let dm = DistMatrix::from_matrix(&rt, &m, 3);
        let s = StandardScaler::fit(&rt, &dm).unwrap();
        let t = s.transform(&rt, &dm).unwrap().collect(&rt).unwrap();
        let mean: f64 = t.as_slice().iter().sum::<f64>() / 4.0;
        let var: f64 = t
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_keeps_unit_scale() {
        let rt = rt();
        let m = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let dm = DistMatrix::from_matrix(&rt, &m, 2);
        let s = StandardScaler::fit(&rt, &dm).unwrap();
        assert_eq!(s.std()[0], 1.0);
        let t = s.transform(&rt, &dm).unwrap().collect(&rt).unwrap();
        assert!(t.as_slice().iter().all(|v| v.abs() < 1e-12));
    }
}
