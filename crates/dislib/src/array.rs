//! Row-block distributed matrices over the local dataflow runtime.

use crate::error::DislibError;
use crate::matrix::Matrix;
use continuum_dag::TaskSpec;
use continuum_platform::Constraints;
use continuum_runtime::{DataHandle, LocalRuntime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A dense matrix partitioned into row blocks, each block a value in
/// the runtime's dataflow (the ds-array of dislib).
///
/// # Example
///
/// ```
/// use continuum_runtime::{LocalRuntime, LocalConfig};
/// use continuum_dislib::{DistMatrix, Matrix};
///
/// let rt = LocalRuntime::new(LocalConfig::with_workers(2));
/// let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
/// let dm = DistMatrix::from_matrix(&rt, &m, 2);
/// assert_eq!(dm.num_blocks(), 2);
/// let doubled = dm.map_blocks(&rt, "double", |b| b.scale(2.0))?;
/// assert_eq!(doubled.collect(&rt)?.at(2, 0), 6.0);
/// # Ok::<(), continuum_dislib::DislibError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistMatrix {
    blocks: Vec<DataHandle<Matrix>>,
    rows_per_block: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl DistMatrix {
    /// Partitions an in-memory matrix into blocks of at most
    /// `block_rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows` is zero or the matrix is empty.
    pub fn from_matrix(rt: &LocalRuntime, m: &Matrix, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block_rows must be positive");
        assert!(m.rows() > 0, "cannot distribute an empty matrix");
        let mut blocks = Vec::new();
        let mut rows_per_block = Vec::new();
        let mut start = 0;
        while start < m.rows() {
            let end = (start + block_rows).min(m.rows());
            let rows: Vec<Vec<f64>> = (start..end).map(|r| m.row(r).to_vec()).collect();
            let block = Matrix::from_rows(&rows);
            let handle = rt.data::<Matrix>(format!("block{}", blocks.len()));
            rt.set_initial(&handle, block);
            blocks.push(handle);
            rows_per_block.push(end - start);
            start = end;
        }
        DistMatrix {
            blocks,
            rows_per_block,
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    /// Generates a random matrix (uniform in `[0, 1)`), one generation
    /// task per block. Deterministic for a given seed.
    ///
    /// # Errors
    ///
    /// Propagates task-submission errors.
    ///
    /// # Panics
    ///
    /// Panics if `rows`, `cols` or `block_rows` is zero.
    pub fn random(
        rt: &LocalRuntime,
        rows: usize,
        cols: usize,
        block_rows: usize,
        seed: u64,
    ) -> Result<Self, DislibError> {
        assert!(rows > 0 && cols > 0 && block_rows > 0, "empty shape");
        let mut blocks = Vec::new();
        let mut rows_per_block = Vec::new();
        let mut start = 0;
        while start < rows {
            let end = (start + block_rows).min(rows);
            let n = end - start;
            let handle = rt.data::<Matrix>(format!("rand{}", blocks.len()));
            let block_seed = seed.wrapping_add(blocks.len() as u64);
            rt.submit(
                TaskSpec::new("random_block").output(handle.id()),
                Constraints::new(),
                move |ctx| {
                    let mut rng = StdRng::seed_from_u64(block_seed);
                    let data: Vec<f64> = (0..n * cols).map(|_| rng.gen::<f64>()).collect();
                    ctx.set_output(0, Matrix::from_vec(n, cols, data));
                },
            )?;
            blocks.push(handle);
            rows_per_block.push(n);
            start = end;
        }
        Ok(DistMatrix {
            blocks,
            rows_per_block,
            rows,
            cols,
        })
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of row blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Rows in each block.
    pub fn rows_per_block(&self) -> &[usize] {
        &self.rows_per_block
    }

    /// The block handles (for estimators building custom task graphs).
    pub fn blocks(&self) -> &[DataHandle<Matrix>] {
        &self.blocks
    }

    /// Applies a pure function to every block as parallel tasks,
    /// producing a new distributed matrix. The function must preserve
    /// the row count of each block.
    ///
    /// # Errors
    ///
    /// Propagates task-submission errors.
    pub fn map_blocks<F>(
        &self,
        rt: &LocalRuntime,
        name: &str,
        f: F,
    ) -> Result<DistMatrix, DislibError>
    where
        F: Fn(&Matrix) -> Matrix + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, src) in self.blocks.iter().enumerate() {
            let out = rt.data::<Matrix>(format!("{name}{i}"));
            let f = Arc::clone(&f);
            rt.submit(
                TaskSpec::new(name).input(src.id()).output(out.id()),
                Constraints::new(),
                move |ctx| {
                    let block: &Matrix = ctx.input(0);
                    ctx.set_output(0, f(block));
                },
            )?;
            blocks.push(out);
        }
        Ok(DistMatrix {
            blocks,
            rows_per_block: self.rows_per_block.clone(),
            rows: self.rows,
            cols: self.cols,
        })
    }

    /// Overrides the recorded column count (for block maps that change
    /// the width, e.g. projection).
    pub fn with_cols(mut self, cols: usize) -> Self {
        self.cols = cols;
        self
    }

    /// Gathers all blocks into one in-memory matrix.
    ///
    /// # Errors
    ///
    /// Propagates failures of producing tasks.
    pub fn collect(&self, rt: &LocalRuntime) -> Result<Matrix, DislibError> {
        let mut out: Option<Matrix> = None;
        for h in &self.blocks {
            let block = rt.get(h)?;
            out = Some(match out {
                None => (*block).clone(),
                Some(acc) => acc.vstack(&block),
            });
        }
        Ok(out.expect("at least one block by construction"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_runtime::LocalConfig;

    fn rt() -> LocalRuntime {
        LocalRuntime::new(LocalConfig::with_workers(4))
    }

    #[test]
    fn partition_and_collect_roundtrip() {
        let rt = rt();
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
            vec![9.0, 10.0],
        ]);
        let dm = DistMatrix::from_matrix(&rt, &m, 2);
        assert_eq!(dm.num_blocks(), 3);
        assert_eq!(dm.rows_per_block(), &[2, 2, 1]);
        assert_eq!(dm.rows(), 5);
        assert_eq!(dm.cols(), 2);
        assert_eq!(dm.collect(&rt).unwrap(), m);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let rt = rt();
        let a = DistMatrix::random(&rt, 10, 3, 4, 42).unwrap();
        let b = DistMatrix::random(&rt, 10, 3, 4, 42).unwrap();
        let ma = a.collect(&rt).unwrap();
        let mb = b.collect(&rt).unwrap();
        assert_eq!(ma, mb);
        assert!(ma.as_slice().iter().all(|v| (0.0..1.0).contains(v)));
        let c = DistMatrix::random(&rt, 10, 3, 4, 43).unwrap();
        assert_ne!(c.collect(&rt).unwrap(), ma);
    }

    #[test]
    fn map_blocks_applies_in_parallel() {
        let rt = rt();
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let dm = DistMatrix::from_matrix(&rt, &m, 1);
        let sq = dm
            .map_blocks(&rt, "square", |b| {
                Matrix::from_vec(
                    b.rows(),
                    b.cols(),
                    b.as_slice().iter().map(|v| v * v).collect(),
                )
            })
            .unwrap();
        let out = sq.collect(&rt).unwrap();
        assert_eq!(out.as_slice(), &[1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn map_blocks_chains_build_dataflow() {
        let rt = rt();
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let dm = DistMatrix::from_matrix(&rt, &m, 1);
        let out = dm
            .map_blocks(&rt, "x2", |b| b.scale(2.0))
            .unwrap()
            .map_blocks(&rt, "x3", |b| b.scale(3.0))
            .unwrap();
        assert_eq!(out.collect(&rt).unwrap().as_slice(), &[6.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "block_rows must be positive")]
    fn zero_block_rows_rejected() {
        let rt = rt();
        let m = Matrix::zeros(2, 2);
        let _ = DistMatrix::from_matrix(&rt, &m, 0);
    }
}
