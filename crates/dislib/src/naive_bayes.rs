//! Gaussian naive Bayes with blocked sufficient statistics.

use crate::array::DistMatrix;
use crate::error::DislibError;
use crate::matrix::Matrix;
use continuum_dag::TaskSpec;
use continuum_platform::Constraints;
use continuum_runtime::LocalRuntime;
use std::sync::Arc;

/// Gaussian naive Bayes classifier.
///
/// `fit` accumulates per-class sufficient statistics (count, per-feature
/// sum and sum of squares) with one task per block plus a reduction;
/// `predict` scores classes by log-likelihood under independent
/// Gaussians.
///
/// # Example
///
/// ```
/// use continuum_runtime::{LocalRuntime, LocalConfig};
/// use continuum_dislib::{DistMatrix, GaussianNb, Matrix};
///
/// let rt = LocalRuntime::new(LocalConfig::with_workers(2));
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.2], vec![0.1], vec![5.0], vec![5.2], vec![5.1],
/// ]);
/// let y = vec![0, 0, 0, 1, 1, 1];
/// let data = DistMatrix::from_matrix(&rt, &x, 2);
/// let model = GaussianNb::new().fit(&rt, &data, &y)?;
/// assert_eq!(model.predict(&rt, &Matrix::from_rows(&[vec![0.05], vec![4.9]]))?, vec![0, 1]);
/// # Ok::<(), continuum_dislib::DislibError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    var_smoothing: f64,
}

/// A fitted Gaussian naive Bayes model.
#[derive(Debug, Clone)]
pub struct GaussianNbModel {
    /// Per class: prior, per-feature mean, per-feature variance.
    classes: Vec<ClassStats>,
    features: usize,
}

#[derive(Debug, Clone)]
struct ClassStats {
    label: usize,
    log_prior: f64,
    mean: Vec<f64>,
    var: Vec<f64>,
}

impl GaussianNb {
    /// Creates the estimator (variance smoothing 1e-9, like sklearn).
    pub fn new() -> Self {
        GaussianNb {
            var_smoothing: 1e-9,
        }
    }

    /// Sets the variance-smoothing floor.
    pub fn var_smoothing(mut self, eps: f64) -> Self {
        self.var_smoothing = eps.max(0.0);
        self
    }

    /// Fits on distributed features and per-row labels.
    ///
    /// # Errors
    ///
    /// [`DislibError::ShapeMismatch`] if `labels.len() != x.rows()`;
    /// runtime errors from the task graph.
    pub fn fit(
        &self,
        rt: &LocalRuntime,
        x: &DistMatrix,
        labels: &[usize],
    ) -> Result<GaussianNbModel, DislibError> {
        if labels.len() != x.rows() {
            return Err(DislibError::ShapeMismatch(format!(
                "{} labels for {} samples",
                labels.len(),
                x.rows()
            )));
        }
        let d = x.cols();
        let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        if n_classes == 0 {
            return Err(DislibError::InvalidParam("no samples".into()));
        }
        // Per block: a (3 * n_classes) × d matrix of stacked
        // [sums; sums of squares; counts-in-col-0] per class.
        let mut offset = 0;
        let mut partials = Vec::with_capacity(x.num_blocks());
        for (i, block) in x.blocks().iter().enumerate() {
            let rows = x.rows_per_block()[i];
            let block_labels: Arc<Vec<usize>> = Arc::new(labels[offset..offset + rows].to_vec());
            offset += rows;
            let out = rt.data::<Matrix>(format!("gnb_part_{i}"));
            let bl = Arc::clone(&block_labels);
            rt.submit(
                TaskSpec::new("gnb_partial")
                    .input(block.id())
                    .output(out.id()),
                Constraints::new(),
                move |ctx| {
                    let b: &Matrix = ctx.input(0);
                    let mut acc = Matrix::zeros(3 * n_classes, d.max(1));
                    for r in 0..b.rows() {
                        let c = bl[r];
                        for f in 0..d {
                            let v = b.at(r, f);
                            acc.set(c, f, acc.at(c, f) + v);
                            acc.set(n_classes + c, f, acc.at(n_classes + c, f) + v * v);
                        }
                        acc.set(2 * n_classes + c, 0, acc.at(2 * n_classes + c, 0) + 1.0);
                    }
                    ctx.set_output(0, acc);
                },
            )?;
            partials.push(out);
        }
        let reduced = rt.data::<Matrix>("gnb_reduced");
        let n_parts = partials.len();
        rt.submit(
            TaskSpec::new("gnb_reduce")
                .inputs(partials.iter().map(|p| p.id()))
                .output(reduced.id()),
            Constraints::new(),
            move |ctx| {
                let mut acc = ctx.input::<Matrix>(0).clone();
                for i in 1..n_parts {
                    acc = acc.add(ctx.input::<Matrix>(i));
                }
                ctx.set_output(0, acc);
            },
        )?;
        let acc = rt.get(&reduced)?;
        let total = labels.len() as f64;
        let mut classes = Vec::new();
        for c in 0..n_classes {
            let count = acc.at(2 * n_classes + c, 0);
            if count == 0.0 {
                continue; // label value never used
            }
            let mut mean = Vec::with_capacity(d);
            let mut var = Vec::with_capacity(d);
            for f in 0..d {
                let m = acc.at(c, f) / count;
                let v = (acc.at(n_classes + c, f) / count - m * m).max(0.0);
                mean.push(m);
                var.push(v + self.var_smoothing.max(1e-12));
            }
            classes.push(ClassStats {
                label: c,
                log_prior: (count / total).ln(),
                mean,
                var,
            });
        }
        Ok(GaussianNbModel {
            classes,
            features: d,
        })
    }
}

impl GaussianNbModel {
    /// Class labels the model knows.
    pub fn labels(&self) -> Vec<usize> {
        self.classes.iter().map(|c| c.label).collect()
    }

    /// Classifies every row of `queries` by maximum posterior.
    ///
    /// # Errors
    ///
    /// [`DislibError::ShapeMismatch`] on feature-width mismatch.
    pub fn predict(&self, _rt: &LocalRuntime, queries: &Matrix) -> Result<Vec<usize>, DislibError> {
        if queries.cols() != self.features {
            return Err(DislibError::ShapeMismatch(format!(
                "queries have {} features, model has {}",
                queries.cols(),
                self.features
            )));
        }
        let mut out = Vec::with_capacity(queries.rows());
        for r in 0..queries.rows() {
            let mut best = (f64::NEG_INFINITY, 0usize);
            for class in &self.classes {
                let mut score = class.log_prior;
                for f in 0..self.features {
                    let x = queries.at(r, f);
                    let var = class.var[f];
                    let diff = x - class.mean[f];
                    score += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
                }
                if score > best.0 {
                    best = (score, class.label);
                }
            }
            out.push(best.1);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_runtime::LocalConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rt() -> LocalRuntime {
        LocalRuntime::new(LocalConfig::with_workers(4))
    }

    #[test]
    fn classifies_gaussian_blobs() {
        let rt = rt();
        let mut rng = StdRng::seed_from_u64(6);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)];
        for _ in 0..120 {
            let c = rng.gen_range(0..3usize);
            rows.push(vec![
                centers[c].0 + rng.gen::<f64>() - 0.5,
                centers[c].1 + rng.gen::<f64>() - 0.5,
            ]);
            labels.push(c);
        }
        let data = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&rows), 25);
        let model = GaussianNb::new().fit(&rt, &data, &labels).unwrap();
        assert_eq!(model.labels(), vec![0, 1, 2]);
        let pred = model
            .predict(
                &rt,
                &Matrix::from_rows(&[vec![0.1, 0.1], vec![6.1, 0.2], vec![0.2, 5.8]]),
            )
            .unwrap();
        assert_eq!(pred, vec![0, 1, 2]);
        // Training accuracy should be essentially perfect here.
        let train_pred = model.predict(&rt, &Matrix::from_rows(&rows)).unwrap();
        let acc = crate::metrics::accuracy(&labels, &train_pred);
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn priors_matter_for_imbalanced_classes() {
        let rt = rt();
        // 90% class 0, identical overlapping distributions: the prior
        // should dominate on ambiguous points.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            rows.push(vec![(i % 10) as f64 * 0.01]);
            labels.push(if i < 90 { 0 } else { 1 });
        }
        let data = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&rows), 20);
        let model = GaussianNb::new().fit(&rt, &data, &labels).unwrap();
        let pred = model
            .predict(&rt, &Matrix::from_rows(&[vec![0.05]]))
            .unwrap();
        assert_eq!(pred, vec![0]);
    }

    #[test]
    fn blocked_matches_single_block() {
        let rt = rt();
        let mut rng = StdRng::seed_from_u64(12);
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
        let queries = Matrix::from_rows(
            &(0..15)
                .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
                .collect::<Vec<_>>(),
        );
        let x = Matrix::from_rows(&rows);
        let blocked = GaussianNb::new()
            .fit(&rt, &DistMatrix::from_matrix(&rt, &x, 7), &labels)
            .unwrap()
            .predict(&rt, &queries)
            .unwrap();
        let single = GaussianNb::new()
            .fit(&rt, &DistMatrix::from_matrix(&rt, &x, 60), &labels)
            .unwrap()
            .predict(&rt, &queries)
            .unwrap();
        assert_eq!(blocked, single);
    }

    #[test]
    fn validation_errors() {
        let rt = rt();
        let data = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&[vec![1.0], vec![2.0]]), 1);
        assert!(matches!(
            GaussianNb::new().fit(&rt, &data, &[0]),
            Err(DislibError::ShapeMismatch(_))
        ));
        let model = GaussianNb::new().fit(&rt, &data, &[0, 1]).unwrap();
        assert!(matches!(
            model.predict(&rt, &Matrix::from_rows(&[vec![1.0, 2.0]])),
            Err(DislibError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn constant_feature_is_smoothed_not_divided_by_zero() {
        let rt = rt();
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![7.0], vec![7.0]]);
        let data = DistMatrix::from_matrix(&rt, &x, 2);
        let model = GaussianNb::new().fit(&rt, &data, &[0, 0, 1, 1]).unwrap();
        let pred = model
            .predict(&rt, &Matrix::from_rows(&[vec![5.1], vec![6.9]]))
            .unwrap();
        assert_eq!(pred, vec![0, 1]);
    }
}
