//! Ordinary least squares via blocked normal equations.

use crate::array::DistMatrix;
use crate::error::DislibError;
use crate::matrix::Matrix;
use continuum_dag::TaskSpec;
use continuum_platform::Constraints;
use continuum_runtime::LocalRuntime;

/// Linear regression (with intercept) fitted by solving the normal
/// equations `Xᵃᵀ Xᵃ w = Xᵃᵀ y`, where `Xᵃ` is `X` with an appended
/// ones column. Per-block Gram partials run as parallel tasks.
///
/// # Example
///
/// ```
/// use continuum_runtime::{LocalRuntime, LocalConfig};
/// use continuum_dislib::{DistMatrix, LinearRegression, Matrix};
///
/// let rt = LocalRuntime::new(LocalConfig::with_workers(2));
/// // y = 3x + 1
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
/// let y = Matrix::from_rows(&[vec![1.0], vec![4.0], vec![7.0], vec![10.0]]);
/// let dx = DistMatrix::from_matrix(&rt, &x, 2);
/// let dy = DistMatrix::from_matrix(&rt, &y, 2);
/// let model = LinearRegression::new().fit(&rt, &dx, &dy)?;
/// assert!((model.coefficients().at(0, 0) - 3.0).abs() < 1e-9);
/// assert!((model.intercept()[0] - 1.0).abs() < 1e-9);
/// # Ok::<(), continuum_dislib::DislibError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearRegression;

/// A fitted linear model.
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// `(d+1) × t` weights; last row is the intercept.
    weights: Matrix,
}

impl LinearRegression {
    /// Creates the estimator.
    pub fn new() -> Self {
        LinearRegression
    }

    /// Fits on distributed features `x` and targets `y` (row-aligned:
    /// both must be partitioned with the same block sizes).
    ///
    /// # Errors
    ///
    /// * [`DislibError::ShapeMismatch`] if `x`/`y` row partitions
    ///   differ;
    /// * [`DislibError::Numerical`] if the normal equations are
    ///   singular (collinear features).
    pub fn fit(
        &self,
        rt: &LocalRuntime,
        x: &DistMatrix,
        y: &DistMatrix,
    ) -> Result<LinearModel, DislibError> {
        if x.rows() != y.rows() || x.rows_per_block() != y.rows_per_block() {
            return Err(DislibError::ShapeMismatch(format!(
                "x has {} rows {:?}, y has {} rows {:?}",
                x.rows(),
                x.rows_per_block(),
                y.rows(),
                y.rows_per_block()
            )));
        }
        let d = x.cols();
        let t = y.cols();
        // Per block: [G | B] where G = Xaᵀ Xa ((d+1)²) and B = Xaᵀ y.
        let mut partials = Vec::with_capacity(x.num_blocks());
        for (i, (bx, by)) in x.blocks().iter().zip(y.blocks()).enumerate() {
            let out = rt.data::<Matrix>(format!("lr_part_{i}"));
            rt.submit(
                TaskSpec::new("linreg_partial")
                    .input(bx.id())
                    .input(by.id())
                    .output(out.id()),
                Constraints::new(),
                move |ctx| {
                    let bx: &Matrix = ctx.input(0);
                    let by: &Matrix = ctx.input(1);
                    let xa = augment_ones(bx);
                    let xat = xa.transpose();
                    let g = xat.matmul(&xa);
                    let b = xat.matmul(by);
                    // Pack [G | B] side by side.
                    let mut packed = Matrix::zeros(d + 1, d + 1 + t);
                    for r in 0..d + 1 {
                        for c in 0..d + 1 {
                            packed.set(r, c, g.at(r, c));
                        }
                        for c in 0..t {
                            packed.set(r, d + 1 + c, b.at(r, c));
                        }
                    }
                    ctx.set_output(0, packed);
                },
            )?;
            partials.push(out);
        }
        let reduced = rt.data::<Matrix>("lr_reduced");
        let n_parts = partials.len();
        rt.submit(
            TaskSpec::new("linreg_reduce")
                .inputs(partials.iter().map(|p| p.id()))
                .output(reduced.id()),
            Constraints::new(),
            move |ctx| {
                let mut acc = ctx.input::<Matrix>(0).clone();
                for i in 1..n_parts {
                    acc = acc.add(ctx.input::<Matrix>(i));
                }
                ctx.set_output(0, acc);
            },
        )?;
        let packed = rt.get(&reduced)?;
        // Unpack and solve.
        let mut g = Matrix::zeros(d + 1, d + 1);
        let mut b = Matrix::zeros(d + 1, t);
        for r in 0..d + 1 {
            for c in 0..d + 1 {
                g.set(r, c, packed.at(r, c));
            }
            for c in 0..t {
                b.set(r, c, packed.at(r, d + 1 + c));
            }
        }
        let weights = g.solve(&b).ok_or_else(|| {
            DislibError::Numerical("normal equations are singular (collinear features)".into())
        })?;
        Ok(LinearModel { weights })
    }
}

impl LinearModel {
    /// Feature weights (`d × t`, intercept excluded).
    pub fn coefficients(&self) -> Matrix {
        let d = self.weights.rows() - 1;
        let t = self.weights.cols();
        let mut out = Matrix::zeros(d, t);
        for r in 0..d {
            for c in 0..t {
                out.set(r, c, self.weights.at(r, c));
            }
        }
        out
    }

    /// Intercept per target.
    pub fn intercept(&self) -> Vec<f64> {
        let last = self.weights.rows() - 1;
        (0..self.weights.cols())
            .map(|c| self.weights.at(last, c))
            .collect()
    }

    /// Predicts targets for distributed features, block-parallel.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn predict(&self, rt: &LocalRuntime, x: &DistMatrix) -> Result<Matrix, DislibError> {
        let w = self.weights.clone();
        let t = w.cols();
        let projected = x.map_blocks(rt, "linreg_predict", move |b| augment_ones(b).matmul(&w))?;
        projected.with_cols(t).collect(rt)
    }
}

/// Appends a ones column (intercept feature).
fn augment_ones(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols() + 1);
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            out.set(r, c, m.at(r, c));
        }
        out.set(r, m.cols(), 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_runtime::LocalConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rt() -> LocalRuntime {
        LocalRuntime::new(LocalConfig::with_workers(4))
    }

    #[test]
    fn exact_fit_on_noiseless_plane() {
        let rt = rt();
        // y = 2a - 3b + 5.
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0])
            .collect();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![2.0 * r[0] - 3.0 * r[1] + 5.0])
            .collect();
        let dx = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&rows), 8);
        let dy = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&ys), 8);
        let model = LinearRegression::new().fit(&rt, &dx, &dy).unwrap();
        let coef = model.coefficients();
        assert!((coef.at(0, 0) - 2.0).abs() < 1e-8);
        assert!((coef.at(1, 0) + 3.0).abs() < 1e-8);
        assert!((model.intercept()[0] - 5.0).abs() < 1e-7);
        // Predictions reproduce the targets.
        let pred = model.predict(&rt, &dx).unwrap();
        for (i, y) in ys.iter().enumerate() {
            assert!((pred.at(i, 0) - y[0]).abs() < 1e-7);
        }
    }

    #[test]
    fn multi_target_regression() {
        let rt = rt();
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        // Targets: [2x, -x + 1].
        let y = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![2.0, 0.0],
            vec![4.0, -1.0],
            vec![6.0, -2.0],
        ]);
        let dx = DistMatrix::from_matrix(&rt, &x, 2);
        let dy = DistMatrix::from_matrix(&rt, &y, 2);
        let model = LinearRegression::new().fit(&rt, &dx, &dy).unwrap();
        let coef = model.coefficients();
        assert!((coef.at(0, 0) - 2.0).abs() < 1e-9);
        assert!((coef.at(0, 1) + 1.0).abs() < 1e-9);
        let icpt = model.intercept();
        assert!(icpt[0].abs() < 1e-9);
        assert!((icpt[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_partitions_rejected() {
        let rt = rt();
        let x = Matrix::zeros(4, 1).add(&Matrix::from_rows(&[
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![4.0],
        ]));
        let y = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let dx = DistMatrix::from_matrix(&rt, &x, 2);
        let dy = DistMatrix::from_matrix(&rt, &y, 3);
        let err = LinearRegression::new().fit(&rt, &dx, &dy).unwrap_err();
        assert!(matches!(err, DislibError::ShapeMismatch(_)));
    }

    #[test]
    fn collinear_features_are_singular() {
        let rt = rt();
        // Second feature is exactly 2× the first.
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let y = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let dx = DistMatrix::from_matrix(&rt, &x, 2);
        let dy = DistMatrix::from_matrix(&rt, &y, 2);
        let err = LinearRegression::new().fit(&rt, &dx, &dy).unwrap_err();
        assert!(matches!(err, DislibError::Numerical(_)));
    }

    #[test]
    fn matches_single_block_reference() {
        // Blocked and unblocked fits must agree exactly.
        let rt = rt();
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![1.5 * r[0] - 0.5 * r[1] + 2.0 * r[2] + 0.25])
            .collect();
        let x = Matrix::from_rows(&rows);
        let y = Matrix::from_rows(&ys);
        let blocked = LinearRegression::new()
            .fit(
                &rt,
                &DistMatrix::from_matrix(&rt, &x, 4),
                &DistMatrix::from_matrix(&rt, &y, 4),
            )
            .unwrap();
        let single = LinearRegression::new()
            .fit(
                &rt,
                &DistMatrix::from_matrix(&rt, &x, 30),
                &DistMatrix::from_matrix(&rt, &y, 30),
            )
            .unwrap();
        let diff = blocked
            .coefficients()
            .add(&single.coefficients().scale(-1.0))
            .frobenius_norm();
        assert!(diff < 1e-9, "blocked vs single-block diff {diff}");
    }
}
