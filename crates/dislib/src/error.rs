//! dislib error type.

use continuum_runtime::RuntimeError;
use std::error::Error;
use std::fmt;

/// Errors produced by the distributed ML estimators.
#[derive(Debug)]
pub enum DislibError {
    /// Error from the underlying runtime.
    Runtime(RuntimeError),
    /// Input shapes are inconsistent (e.g. X rows != y rows).
    ShapeMismatch(String),
    /// A numerical step failed (e.g. singular normal equations).
    Numerical(String),
    /// Invalid hyper-parameter.
    InvalidParam(String),
}

impl fmt::Display for DislibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DislibError::Runtime(e) => write!(f, "runtime error: {e}"),
            DislibError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            DislibError::Numerical(m) => write!(f, "numerical failure: {m}"),
            DislibError::InvalidParam(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl Error for DislibError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DislibError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for DislibError {
    fn from(e: RuntimeError) -> Self {
        DislibError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DislibError::ShapeMismatch("x vs y".into());
        assert!(e.to_string().contains("x vs y"));
        assert!(e.source().is_none());
    }
}
