//! K-means clustering with per-block partial reductions.

use crate::array::DistMatrix;
use crate::error::DislibError;
use crate::matrix::Matrix;
use continuum_dag::TaskSpec;
use continuum_platform::Constraints;
use continuum_runtime::LocalRuntime;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// K-means estimator (Lloyd's algorithm).
///
/// Each iteration submits one *partial* task per block (assign points
/// to the nearest centroid, accumulate per-cluster sums/counts and the
/// block inertia) plus one reduction task; the runtime executes the
/// partials in parallel.
///
/// # Example
///
/// ```
/// use continuum_runtime::{LocalRuntime, LocalConfig};
/// use continuum_dislib::{DistMatrix, KMeans, Matrix};
///
/// let rt = LocalRuntime::new(LocalConfig::with_workers(2));
/// let pts = Matrix::from_rows(&[
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0], vec![10.1, 10.0],
/// ]);
/// let data = DistMatrix::from_matrix(&rt, &pts, 2);
/// let model = KMeans::new(2).seed(1).fit(&rt, &data)?;
/// let labels = model.predict(&rt, &data)?;
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// # Ok::<(), continuum_dislib::DislibError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    tol: f64,
    seed: u64,
}

/// A fitted K-means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Cluster centroids, one per row.
    pub centroids: Matrix,
    /// Iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

impl KMeans {
    /// Creates an estimator with `k` clusters (50 iterations max,
    /// tolerance 1e-6, seed 0).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeans {
            k,
            max_iter: 50,
            tol: 1e-6,
            seed: 0,
        }
    }

    /// Sets the iteration limit.
    pub fn max_iter(mut self, n: usize) -> Self {
        self.max_iter = n.max(1);
        self
    }

    /// Sets the centroid-shift convergence tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the initialisation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fits the model on a distributed dataset.
    ///
    /// # Errors
    ///
    /// * [`DislibError::InvalidParam`] if `k` exceeds the number of
    ///   samples;
    /// * runtime errors from the task graph.
    pub fn fit(&self, rt: &LocalRuntime, x: &DistMatrix) -> Result<KMeansModel, DislibError> {
        if self.k > x.rows() {
            return Err(DislibError::InvalidParam(format!(
                "k = {} exceeds {} samples",
                self.k,
                x.rows()
            )));
        }
        let d = x.cols();
        let mut centroids = self.init_centroids(rt, x)?;
        let mut iterations = 0;
        let mut inertia = f64::INFINITY;
        for it in 0..self.max_iter {
            iterations = it + 1;
            let (new_centroids, new_inertia) = self.step(rt, x, &centroids, it)?;
            let shift = new_centroids.add(&centroids.scale(-1.0)).frobenius_norm();
            centroids = new_centroids;
            inertia = new_inertia;
            if shift < self.tol {
                break;
            }
        }
        let _ = d;
        Ok(KMeansModel {
            centroids,
            iterations,
            inertia,
        })
    }

    /// One Lloyd iteration: parallel partials + one reduction.
    fn step(
        &self,
        rt: &LocalRuntime,
        x: &DistMatrix,
        centroids: &Matrix,
        iter: usize,
    ) -> Result<(Matrix, f64), DislibError> {
        let k = self.k;
        let d = x.cols();
        let shared = Arc::new(centroids.clone());
        // Partial layout: k rows of [sum_0..sum_d-1, count] plus one
        // extra row [inertia, 0, ...].
        let mut partials = Vec::with_capacity(x.num_blocks());
        for (i, block) in x.blocks().iter().enumerate() {
            let out = rt.data::<Matrix>(format!("km_part_{iter}_{i}"));
            let cents = Arc::clone(&shared);
            rt.submit(
                TaskSpec::new("kmeans_partial")
                    .input(block.id())
                    .output(out.id()),
                Constraints::new(),
                move |ctx| {
                    let b: &Matrix = ctx.input(0);
                    let mut acc = Matrix::zeros(k + 1, d + 1);
                    for r in 0..b.rows() {
                        let (best, dist) = nearest(&cents, b, r);
                        for c in 0..d {
                            acc.set(best, c, acc.at(best, c) + b.at(r, c));
                        }
                        acc.set(best, d, acc.at(best, d) + 1.0);
                        acc.set(k, 0, acc.at(k, 0) + dist);
                    }
                    ctx.set_output(0, acc);
                },
            )?;
            partials.push(out);
        }
        let reduced = rt.data::<Matrix>(format!("km_red_{iter}"));
        let spec = TaskSpec::new("kmeans_reduce")
            .inputs(partials.iter().map(|p| p.id()))
            .output(reduced.id());
        let n_parts = partials.len();
        rt.submit(spec, Constraints::new(), move |ctx| {
            let mut acc: Matrix = ctx.input::<Matrix>(0).clone();
            for i in 1..n_parts {
                acc = acc.add(ctx.input::<Matrix>(i));
            }
            ctx.set_output(0, acc);
        })?;
        let acc = rt.get(&reduced)?;
        // Fold the accumulator into new centroids; empty clusters keep
        // their previous position.
        let mut new_centroids = centroids.clone();
        for c in 0..k {
            let count = acc.at(c, d);
            if count > 0.0 {
                for j in 0..d {
                    new_centroids.set(c, j, acc.at(c, j) / count);
                }
            }
        }
        Ok((new_centroids, acc.at(k, 0)))
    }

    fn init_centroids(&self, rt: &LocalRuntime, x: &DistMatrix) -> Result<Matrix, DislibError> {
        // Sample k distinct rows from the first block(s).
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for block in x.blocks() {
            let b = rt.get(block)?;
            for r in 0..b.rows() {
                rows.push(b.row(r).to_vec());
            }
            if rows.len() >= self.k.max(32) {
                break;
            }
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        rows.shuffle(&mut rng);
        rows.truncate(self.k);
        Ok(Matrix::from_rows(&rows))
    }
}

impl KMeansModel {
    /// Assigns every sample to its nearest centroid; labels are in row
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn predict(&self, rt: &LocalRuntime, x: &DistMatrix) -> Result<Vec<usize>, DislibError> {
        let cents = Arc::new(self.centroids.clone());
        let mut outs = Vec::with_capacity(x.num_blocks());
        for (i, block) in x.blocks().iter().enumerate() {
            let out = rt.data::<Vec<usize>>(format!("km_pred_{i}"));
            let cents = Arc::clone(&cents);
            rt.submit(
                TaskSpec::new("kmeans_predict")
                    .input(block.id())
                    .output(out.id()),
                Constraints::new(),
                move |ctx| {
                    let b: &Matrix = ctx.input(0);
                    let labels: Vec<usize> =
                        (0..b.rows()).map(|r| nearest(&cents, b, r).0).collect();
                    ctx.set_output(0, labels);
                },
            )?;
            outs.push(out);
        }
        let mut labels = Vec::with_capacity(x.rows());
        for out in &outs {
            labels.extend(rt.get(out)?.iter().copied());
        }
        Ok(labels)
    }
}

/// Nearest centroid of row `r` of `b`: `(index, squared distance)`.
fn nearest(centroids: &Matrix, b: &Matrix, r: usize) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d = b.row_distance_sq(r, centroids, c);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_runtime::LocalConfig;

    fn rt() -> LocalRuntime {
        LocalRuntime::new(LocalConfig::with_workers(4))
    }

    /// Three well-separated gaussian-ish blobs.
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)];
        let mut rng = StdRng::seed_from_u64(7);
        use rand::Rng;
        for _ in 0..60 {
            let (cx, cy) = centers[rng.gen_range(0..3)];
            rows.push(vec![cx + rng.gen::<f64>(), cy + rng.gen::<f64>()]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_separated_blobs() {
        let rt = rt();
        let data = DistMatrix::from_matrix(&rt, &blobs(), 10);
        let model = KMeans::new(3).seed(3).fit(&rt, &data).unwrap();
        assert_eq!(model.centroids.rows(), 3);
        // Every centroid is near one of the true centers.
        let truth = Matrix::from_rows(&[vec![0.5, 0.5], vec![20.5, 0.5], vec![0.5, 20.5]]);
        for c in 0..3 {
            let min_d = (0..3)
                .map(|t| model.centroids.row_distance_sq(c, &truth, t))
                .fold(f64::INFINITY, f64::min);
            assert!(min_d < 2.0, "centroid {c} off by {min_d}");
        }
        assert!(
            model.inertia < 60.0,
            "tight clusters, inertia {}",
            model.inertia
        );
    }

    #[test]
    fn labels_are_consistent_with_distances() {
        let rt = rt();
        let data = DistMatrix::from_matrix(&rt, &blobs(), 7);
        let model = KMeans::new(3).seed(1).fit(&rt, &data).unwrap();
        let labels = model.predict(&rt, &data).unwrap();
        assert_eq!(labels.len(), 60);
        let m = data.collect(&rt).unwrap();
        for (r, label) in labels.iter().enumerate() {
            let (best, _) = nearest(&model.centroids, &m, r);
            assert_eq!(*label, best);
        }
    }

    #[test]
    fn converges_quickly_on_trivial_data() {
        let rt = rt();
        let m = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![100.0], vec![100.0]]);
        let data = DistMatrix::from_matrix(&rt, &m, 2);
        let model = KMeans::new(2).seed(0).fit(&rt, &data).unwrap();
        assert!(model.iterations <= 3);
        assert!(model.inertia < 1e-9);
    }

    #[test]
    fn k_larger_than_samples_rejected() {
        let rt = rt();
        let m = Matrix::from_rows(&[vec![1.0]]);
        let data = DistMatrix::from_matrix(&rt, &m, 1);
        let err = KMeans::new(5).fit(&rt, &data).unwrap_err();
        assert!(matches!(err, DislibError::InvalidParam(_)));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let rt1 = rt();
        let data1 = DistMatrix::from_matrix(&rt1, &blobs(), 10);
        let a = KMeans::new(3).seed(9).fit(&rt1, &data1).unwrap();
        let rt2 = rt();
        let data2 = DistMatrix::from_matrix(&rt2, &blobs(), 10);
        let b = KMeans::new(3).seed(9).fit(&rt2, &data2).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = KMeans::new(0);
    }
}
