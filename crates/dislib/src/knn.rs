//! k-nearest-neighbour classification with per-block candidate search.

use crate::array::DistMatrix;
use crate::error::DislibError;
use crate::matrix::Matrix;
use continuum_dag::TaskSpec;
use continuum_platform::Constraints;
use continuum_runtime::LocalRuntime;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-query candidate list: `(squared distance, label)` pairs.
type Candidates = Vec<Vec<(f64, usize)>>;

/// k-NN classifier: each training block searches its own rows for the
/// `k` nearest candidates of every query (parallel tasks); a reduction
/// merges the per-block candidates and majority-votes.
///
/// # Example
///
/// ```
/// use continuum_runtime::{LocalRuntime, LocalConfig};
/// use continuum_dislib::{DistMatrix, KnnClassifier, Matrix};
///
/// let rt = LocalRuntime::new(LocalConfig::with_workers(2));
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1]]);
/// let y = vec![0, 0, 1, 1];
/// let data = DistMatrix::from_matrix(&rt, &x, 2);
/// let model = KnnClassifier::new(3).fit(&rt, &data, &y)?;
/// let labels = model.predict(&rt, &Matrix::from_rows(&[vec![0.05], vec![9.9]]))?;
/// assert_eq!(labels, vec![0, 1]);
/// # Ok::<(), continuum_dislib::DislibError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
}

/// A fitted k-NN model: references to the training blocks plus the
/// per-block label slices.
#[derive(Debug, Clone)]
pub struct KnnModel {
    k: usize,
    train: DistMatrix,
    labels_per_block: Vec<Arc<Vec<usize>>>,
}

impl KnnClassifier {
    /// Creates a classifier with `k` neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KnnClassifier { k }
    }

    /// "Fits" the model (k-NN is lazy: this validates shapes and
    /// splits labels per block).
    ///
    /// # Errors
    ///
    /// * [`DislibError::ShapeMismatch`] if `labels.len() != x.rows()`;
    /// * [`DislibError::InvalidParam`] if `k` exceeds the sample count.
    pub fn fit(
        &self,
        _rt: &LocalRuntime,
        x: &DistMatrix,
        labels: &[usize],
    ) -> Result<KnnModel, DislibError> {
        if labels.len() != x.rows() {
            return Err(DislibError::ShapeMismatch(format!(
                "{} labels for {} samples",
                labels.len(),
                x.rows()
            )));
        }
        if self.k > x.rows() {
            return Err(DislibError::InvalidParam(format!(
                "k = {} exceeds {} samples",
                self.k,
                x.rows()
            )));
        }
        let mut labels_per_block = Vec::with_capacity(x.num_blocks());
        let mut offset = 0;
        for rows in x.rows_per_block() {
            labels_per_block.push(Arc::new(labels[offset..offset + rows].to_vec()));
            offset += rows;
        }
        Ok(KnnModel {
            k: self.k,
            train: x.clone(),
            labels_per_block,
        })
    }
}

impl KnnModel {
    /// Classifies every row of `queries`.
    ///
    /// # Errors
    ///
    /// * [`DislibError::ShapeMismatch`] if the query width differs
    ///   from the training width;
    /// * runtime errors from the task graph.
    pub fn predict(&self, rt: &LocalRuntime, queries: &Matrix) -> Result<Vec<usize>, DislibError> {
        if queries.cols() != self.train.cols() {
            return Err(DislibError::ShapeMismatch(format!(
                "queries have {} features, training data {}",
                queries.cols(),
                self.train.cols()
            )));
        }
        let shared_q = Arc::new(queries.clone());
        let k = self.k;
        // Per-block candidate search tasks.
        let mut parts = Vec::with_capacity(self.train.num_blocks());
        for (i, (block, labels)) in self
            .train
            .blocks()
            .iter()
            .zip(&self.labels_per_block)
            .enumerate()
        {
            let out = rt.data::<Candidates>(format!("knn_cand_{i}"));
            let q = Arc::clone(&shared_q);
            let labels = Arc::clone(labels);
            rt.submit(
                TaskSpec::new("knn_partial")
                    .input(block.id())
                    .output(out.id()),
                Constraints::new(),
                move |ctx| {
                    let b: &Matrix = ctx.input(0);
                    let mut all: Candidates = Vec::with_capacity(q.rows());
                    for qi in 0..q.rows() {
                        let mut cands: Vec<(f64, usize)> = (0..b.rows())
                            .map(|r| (q.row_distance_sq(qi, b, r), labels[r]))
                            .collect();
                        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                        cands.truncate(k);
                        all.push(cands);
                    }
                    ctx.set_output(0, all);
                },
            )?;
            parts.push(out);
        }
        // Merge + vote.
        let merged = rt.data::<Vec<usize>>("knn_labels");
        let n_parts = parts.len();
        let n_queries = queries.rows();
        rt.submit(
            TaskSpec::new("knn_merge")
                .inputs(parts.iter().map(|p| p.id()))
                .output(merged.id()),
            Constraints::new(),
            move |ctx| {
                let mut labels = Vec::with_capacity(n_queries);
                for qi in 0..n_queries {
                    let mut cands: Vec<(f64, usize)> = Vec::new();
                    for p in 0..n_parts {
                        cands.extend(ctx.input::<Candidates>(p)[qi].iter().copied());
                    }
                    cands.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                    cands.truncate(k);
                    let mut votes: HashMap<usize, usize> = HashMap::new();
                    for (_, l) in &cands {
                        *votes.entry(*l).or_insert(0) += 1;
                    }
                    let best = votes
                        .into_iter()
                        .max_by_key(|(label, count)| (*count, std::cmp::Reverse(*label)))
                        .map(|(label, _)| label)
                        .unwrap_or(0);
                    labels.push(best);
                }
                ctx.set_output(0, labels);
            },
        )?;
        Ok(rt.get(&merged)?.as_ref().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use continuum_runtime::LocalConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rt() -> LocalRuntime {
        LocalRuntime::new(LocalConfig::with_workers(4))
    }

    #[test]
    fn classifies_separated_classes() {
        let rt = rt();
        let mut rng = StdRng::seed_from_u64(4);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..60 {
            let class = rng.gen_range(0..3usize);
            let base = class as f64 * 10.0;
            rows.push(vec![base + rng.gen::<f64>(), base - rng.gen::<f64>()]);
            labels.push(class);
        }
        let data = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&rows), 13);
        let model = KnnClassifier::new(5).fit(&rt, &data, &labels).unwrap();
        let queries = Matrix::from_rows(&[vec![0.5, 0.5], vec![10.5, 9.5], vec![20.5, 19.5]]);
        assert_eq!(model.predict(&rt, &queries).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn agrees_with_single_block_reference() {
        let rt = rt();
        let mut rng = StdRng::seed_from_u64(8);
        let rows: Vec<Vec<f64>> = (0..40).map(|_| vec![rng.gen(), rng.gen()]).collect();
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let queries = Matrix::from_rows(
            &(0..10)
                .map(|_| vec![rng.gen(), rng.gen()])
                .collect::<Vec<_>>(),
        );
        let blocked = KnnClassifier::new(3)
            .fit(
                &rt,
                &DistMatrix::from_matrix(&rt, &Matrix::from_rows(&rows), 7),
                &labels,
            )
            .unwrap()
            .predict(&rt, &queries)
            .unwrap();
        let single = KnnClassifier::new(3)
            .fit(
                &rt,
                &DistMatrix::from_matrix(&rt, &Matrix::from_rows(&rows), 40),
                &labels,
            )
            .unwrap()
            .predict(&rt, &queries)
            .unwrap();
        assert_eq!(blocked, single);
    }

    #[test]
    fn shape_and_param_validation() {
        let rt = rt();
        let data = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&[vec![1.0], vec![2.0]]), 1);
        assert!(matches!(
            KnnClassifier::new(1).fit(&rt, &data, &[0]),
            Err(DislibError::ShapeMismatch(_))
        ));
        assert!(matches!(
            KnnClassifier::new(5).fit(&rt, &data, &[0, 1]),
            Err(DislibError::InvalidParam(_))
        ));
        let model = KnnClassifier::new(1).fit(&rt, &data, &[0, 1]).unwrap();
        assert!(matches!(
            model.predict(&rt, &Matrix::from_rows(&[vec![1.0, 2.0]])),
            Err(DislibError::ShapeMismatch(_))
        ));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = KnnClassifier::new(0);
    }
}
