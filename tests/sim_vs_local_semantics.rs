//! The two engines must agree on dataflow semantics: for any DAG, the
//! simulated engine and the local engine both execute every task
//! exactly once respecting dependencies, and the simulated makespan
//! respects the theoretical bounds implied by the graph.

use continuum::dag::{GraphAnalysis, TaskSpec};
use continuum::platform::{Constraints, NodeSpec, PlatformBuilder};
use continuum::runtime::{
    FifoScheduler, LocalConfig, LocalRuntime, SimOptions, SimRuntime, SimWorkload, TaskProfile,
};
use continuum::sim::FaultPlan;
use continuum::workflows::patterns;
use parking_lot::Mutex;
use std::sync::Arc;

/// Mirror a SimWorkload onto the local runtime, recording execution
/// order, and check both engines honour the same happens-before.
#[test]
fn engines_agree_on_happens_before() {
    // A layered random DAG with known seeds.
    let workload = patterns::random_layered(23, 5, 6, 0.35, 0.5, 2.0);
    let graph = workload.graph();

    // --- simulated execution ------------------------------------------
    let platform = PlatformBuilder::new()
        .cluster("c", 3, NodeSpec::hpc(4, 8_000))
        .build();
    let report = SimRuntime::new(platform, SimOptions::default())
        .run(&workload, &mut FifoScheduler::new(), &FaultPlan::new())
        .expect("sim completes");
    assert_eq!(report.tasks_completed, graph.len());

    // --- local execution of the same structure -------------------------
    let rt = LocalRuntime::new(LocalConfig::with_workers(4));
    let order = Arc::new(Mutex::new(Vec::<usize>::new()));
    // Recreate the same data ids on the local runtime.
    let handles: Vec<_> = (0..30).map(|i| rt.data::<u64>(format!("d{i}"))).collect();
    for node in graph.nodes() {
        let mut spec = TaskSpec::new(node.spec().name());
        for vd in node.consumed() {
            spec = spec.input(handles[vd.data.index()].id());
        }
        let out_idx: Vec<usize> = node.produced().iter().map(|vd| vd.data.index()).collect();
        for idx in &out_idx {
            spec = spec.output(handles[*idx].id());
        }
        let task_index = node.id().index();
        let order = Arc::clone(&order);
        let n_outs = out_idx.len();
        rt.submit(spec, Constraints::new(), move |ctx| {
            order.lock().push(task_index);
            for o in 0..n_outs {
                ctx.set_output(o, task_index as u64);
            }
        })
        .unwrap();
    }
    rt.wait_all().unwrap();
    let order = order.lock();
    assert_eq!(order.len(), graph.len());
    // Happens-before: every task appears after all its predecessors.
    let position: std::collections::HashMap<usize, usize> =
        order.iter().enumerate().map(|(pos, t)| (*t, pos)).collect();
    for node in graph.nodes() {
        for pred in node.predecessors() {
            assert!(
                position[&pred.index()] < position[&node.id().index()],
                "local run violated {pred} -> {}",
                node.id()
            );
        }
    }
}

/// The simulated makespan is bounded below by the critical path and
/// above by the sequential time, for a range of DAG shapes.
#[test]
fn sim_makespan_respects_theoretical_bounds() {
    for (label, workload) in [
        ("chain", patterns::chain(12, 3.0)),
        ("fan", patterns::embarrassingly_parallel(20, 2.0)),
        ("map-reduce", patterns::map_reduce(9, 4.0, 2.0, 0)),
        ("fork-join", patterns::fork_join(2, 3, 3, 1.5)),
        ("random", patterns::random_layered(3, 4, 5, 0.4, 1.0, 5.0)),
    ] {
        let analysis_graph = workload.graph();
        let analysis = GraphAnalysis::new(analysis_graph);
        let weight = |t: continuum::dag::TaskId| workload.profile(t).duration_s();
        let cp = analysis.critical_path(weight).length;
        let seq = analysis.total_weight(weight);
        let platform = PlatformBuilder::new()
            .cluster("c", 2, NodeSpec::hpc(4, 8_000))
            .build();
        let report = SimRuntime::new(platform, SimOptions::default())
            .run(&workload, &mut FifoScheduler::new(), &FaultPlan::new())
            .expect("completes");
        assert!(
            report.makespan_s >= cp - 1e-6,
            "{label}: makespan {} below critical path {cp}",
            report.makespan_s
        );
        assert!(
            report.makespan_s <= seq + 1e-6,
            "{label}: makespan {} above sequential time {seq}",
            report.makespan_s
        );
    }
}

/// A single-slot platform serialises everything: makespan equals the
/// sequential time exactly.
#[test]
fn single_slot_platform_is_sequential() {
    let workload = patterns::random_layered(11, 4, 4, 0.3, 1.0, 3.0);
    let seq: f64 = (0..workload.stats().tasks)
        .map(|t| {
            workload
                .profile(continuum::dag::TaskId::from_raw(t as u64))
                .duration_s()
        })
        .sum();
    let platform = PlatformBuilder::new()
        .cluster("c", 1, NodeSpec::hpc(1, 8_000))
        .build();
    let report = SimRuntime::new(platform, SimOptions::default())
        .run(&workload, &mut FifoScheduler::new(), &FaultPlan::new())
        .expect("completes");
    assert!((report.makespan_s - seq).abs() < 1e-6);
    assert!((report.mean_utilisation() - 1.0).abs() < 1e-6);
}

/// Rigid multi-node tasks and ordinary tasks interleave correctly on
/// the simulated engine (the NMMB-style mixture).
#[test]
fn mixed_rigid_and_elastic_tasks() {
    let mut w = SimWorkload::new();
    let pre = w.data("pre");
    let sim = w.data("sim");
    let post = w.data("post");
    w.task(TaskSpec::new("prep").output(pre), TaskProfile::new(5.0))
        .unwrap();
    w.task(
        TaskSpec::new("mpi").input(pre).output(sim),
        TaskProfile::new(20.0).constraints(Constraints::new().nodes(3)),
    )
    .unwrap();
    w.task(
        TaskSpec::new("post").input(sim).output(post),
        TaskProfile::new(2.0),
    )
    .unwrap();
    let platform = PlatformBuilder::new()
        .cluster("c", 3, NodeSpec::hpc(4, 8_000))
        .build();
    let report = SimRuntime::new(platform, SimOptions::default())
        .run(&w, &mut FifoScheduler::new(), &FaultPlan::new())
        .expect("completes");
    assert_eq!(report.tasks_completed, 3);
    assert!((report.makespan_s - 27.0).abs() < 1e-9);
}
