//! Storage ↔ runtime ↔ agents integration: the full §VI-A1/§VI-B
//! stack working together — persistent objects, locality placement,
//! WAL-based recovery and the agent layer over one shared store.

use bytes::Bytes;
use continuum::agents::{
    AgentNetwork, AppTask, Application, OpRegistry, Orchestrator, PreferClass, RoundRobinOffload,
};
use continuum::dag::TaskSpec;
use continuum::platform::{DeviceClass, NodeId, NodeSpec, PlatformBuilder};
use continuum::runtime::{LocalityScheduler, SimOptions, SimRuntime, SimWorkload, TaskProfile};
use continuum::sim::FaultPlan;
use continuum::storage::{
    ActiveStore, ClassDef, KvConfig, KvStore, ObjectKey, StorageRuntime, StoredValue, WriteAheadLog,
};
use std::sync::Arc;

/// SRI locations drive placement end-to-end: partitions put into the
/// KV store are read locally by the simulated runtime's map tasks.
#[test]
fn kv_locations_feed_locality_scheduler() {
    let platform = PlatformBuilder::new()
        .cluster("dc", 4, NodeSpec::hpc(4, 16_000))
        .build();
    let store = KvStore::new(
        platform.nodes().iter().map(|n| n.id()).collect(),
        KvConfig { replication: 1 },
    )
    .unwrap();
    let mut w = SimWorkload::new();
    for i in 0..12 {
        let key: ObjectKey = format!("p{i}").into();
        store
            .put(key.clone(), StoredValue::blob(vec![0u8; 8]), None)
            .unwrap();
        let home = store.locations(&key).unwrap()[0];
        let part = w.initial_data(format!("p{i}"), 50_000_000, Some(home));
        let out = w.data(format!("o{i}"));
        w.task(
            TaskSpec::new("scan").input(part).output(out),
            TaskProfile::new(2.0),
        )
        .unwrap();
    }
    let report = SimRuntime::new(platform, SimOptions::default())
        .run(&w, &mut LocalityScheduler::new(), &FaultPlan::new())
        .expect("completes");
    assert_eq!(
        report.transfer_count, 0,
        "all scans ran on their partition's node"
    );
    assert_eq!(report.locality_hits, 12);
}

/// The write-ahead log restores a wiped store, and an active store
/// keeps serving methods after a replica failure.
#[test]
fn wal_restore_and_active_store_failover() {
    let nodes: Vec<NodeId> = (0..3).map(NodeId::from_raw).collect();
    let store = ActiveStore::new(nodes.clone(), 2).unwrap();
    store.register_class(ClassDef::new("Counter").method("len", |payload, _| {
        Bytes::copy_from_slice(&(payload.len() as u64).to_le_bytes())
    }));
    let wal = WriteAheadLog::new();

    // Write through: value goes to the store and the WAL.
    let value = StoredValue::object(vec![1u8; 1000], "Counter");
    wal.append("c1".into(), value.clone());
    let replicas = store.put("c1".into(), value, None).unwrap();

    // One replica dies: method execution still works.
    store.kv().fail_node(replicas[0]);
    let r = store.execute(&"c1".into(), "len", &[]).unwrap();
    assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 1000);

    // Catastrophe: all replicas down. The WAL restores into a fresh
    // store and the class registry keeps working.
    store.kv().fail_node(replicas[1]);
    assert!(store.execute(&"c1".into(), "len", &[]).is_err());
    let fresh = ActiveStore::new(nodes, 2).unwrap();
    fresh.register_class(ClassDef::new("Counter").method("len", |payload, _| {
        Bytes::copy_from_slice(&(payload.len() as u64).to_le_bytes())
    }));
    assert_eq!(wal.restore_into(&fresh), 1);
    let r = fresh.execute(&"c1".into(), "len", &[]).unwrap();
    assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 1000);
}

/// Agents, store and orchestrator survive the loss of the *storage*
/// replica holding an intermediate: replication keeps the application
/// running without re-execution.
#[test]
fn agent_app_survives_storage_replica_failure() {
    let store = Arc::new(
        KvStore::new(
            (0..4).map(NodeId::from_raw).collect(),
            KvConfig { replication: 2 },
        )
        .unwrap(),
    );
    let ops = OpRegistry::new();
    ops.register("produce", |_| Bytes::from(vec![5u8; 4096]));
    ops.register("consume", |ins| {
        Bytes::copy_from_slice(&(ins[0].len() as u64).to_le_bytes())
    });
    let net = AgentNetwork::new(Arc::clone(&store) as Arc<dyn StorageRuntime>, ops);
    net.deploy("fog-0", DeviceClass::Fog);
    net.deploy("fog-1", DeviceClass::Fog);

    // Stage 1 alone, so its output is committed before we break a
    // storage node.
    let stage1 = Application::new("produce").task(AppTask::new("produce", vec![], "mid"));
    Orchestrator::new(&net)
        .run(&stage1, &mut PreferClass::fog_first())
        .unwrap();
    let replicas = store.locations(&"mid".into()).unwrap();
    store.fail_node(replicas[0]);

    let stage2 =
        Application::new("consume").task(AppTask::new("consume", vec!["mid".into()], "result"));
    let report = Orchestrator::new(&net)
        .run(&stage2, &mut RoundRobinOffload::new())
        .unwrap();
    assert_eq!(report.completed, 1);
    let result = store.get(&"result".into()).unwrap();
    assert_eq!(
        u64::from_le_bytes(result.payload[..8].try_into().unwrap()),
        4096
    );
}

/// Persistence in the simulated engine exercises the storage-homed
/// fetch path: data produced before a failure is re-read from the
/// storage node, not recomputed.
#[test]
fn sim_persistence_reads_back_from_storage_home() {
    let platform = PlatformBuilder::new()
        .cluster("c", 2, NodeSpec::hpc(1, 8_000))
        .cloud("store", 1, NodeSpec::cloud_vm(1, 8_000))
        .build();
    let storage_node = NodeId::from_raw(2);
    let mut w = SimWorkload::new();
    let a = w.data("a");
    let blocker = w.data("blk");
    let out = w.data("out");
    w.task(
        TaskSpec::new("p").output(a),
        TaskProfile::new(1.0).outputs_bytes(10_000_000),
    )
    .unwrap();
    w.task(TaskSpec::new("blk").output(blocker), TaskProfile::new(30.0))
        .unwrap();
    w.task(
        TaskSpec::new("c").input(a).input(blocker).output(out),
        TaskProfile::new(1.0),
    )
    .unwrap();
    let faults = FaultPlan::new()
        .fail_at(5.0, NodeId::from_raw(0))
        .recover_at(6.0, NodeId::from_raw(0));
    let opts = SimOptions {
        persistence: Some(storage_node),
        ..SimOptions::default()
    };
    let report = SimRuntime::new(platform, opts)
        .run(&w, &mut LocalityScheduler::new(), &FaultPlan::new())
        .expect("no-fault run completes");
    assert_eq!(report.tasks_reexecuted, 0);
    // Now with the failure: still no re-execution thanks to storage.
    let platform = PlatformBuilder::new()
        .cluster("c", 2, NodeSpec::hpc(1, 8_000))
        .cloud("store", 1, NodeSpec::cloud_vm(1, 8_000))
        .build();
    let opts = SimOptions {
        persistence: Some(storage_node),
        ..SimOptions::default()
    };
    let report = SimRuntime::new(platform, opts)
        .run(&w, &mut LocalityScheduler::new(), &faults)
        .expect("faulted run completes");
    assert_eq!(
        report.tasks_reexecuted, 0,
        "persisted output needs no replay"
    );
    assert_eq!(report.tasks_completed, 3);
}
