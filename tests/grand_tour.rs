//! The grand tour: one test that walks the paper's whole vision
//! end-to-end through the facade crate — a textual workflow parsed,
//! analysed, executed on a simulated continuum platform with faults
//! and persistence, its trace inspected; then the same ecosystem's
//! agent layer and ML library doing real work.

use continuum::agents::{AgentNetwork, AppTask, Application, OpRegistry, RoundRobinOffload};
use continuum::dislib::{DistMatrix, KMeans, Matrix, StandardScaler};
use continuum::platform::{DeviceClass, NodeId, NodeSpec, PlatformBuilder};
use continuum::runtime::{ListScheduler, LocalConfig, LocalRuntime, SimOptions, SimRuntime};
use continuum::sim::FaultPlan;
use continuum::storage::{KvConfig, KvStore};
use continuum::workflows::{parse_wdl, to_wdl};
use std::sync::Arc;

const CAMPAIGN: &str = "
data observations size=500M home=0
task curate in=observations out=clean dur=60 mem=4G out_bytes=250M group=prep
task split in=clean out=shard0,shard1,shard2 dur=10 out_bytes=80M group=prep
task analyze in=shard0 out=r0 dur=120 mem=2G out_bytes=10M group=analyze
task analyze in=shard1 out=r1 dur=130 mem=2G out_bytes=10M group=analyze
task analyze in=shard2 out=r2 dur=110 mem=2G out_bytes=10M group=analyze
task simulate in=r0,r1,r2 out=forecast dur=600 nodes=2 out_bytes=1G group=hpc
task report inout=forecast dur=30 group=publish
";

#[test]
fn textual_workflow_through_simulated_continuum_with_faults() {
    // Parse the textual modality and sanity-check the analysis.
    let workload = parse_wdl(CAMPAIGN).expect("valid campaign");
    let stats = workload.stats();
    assert_eq!(stats.tasks, 7);
    assert!(stats.critical_path_s > 600.0);

    // Round-trip through the serialiser.
    let again = parse_wdl(&to_wdl(&workload)).expect("round trip");
    assert_eq!(again.stats(), stats);

    // Execute on a small cluster + storage cloud, with a mid-run node
    // failure recovered via persistence, under the dynamic list
    // scheduler, collecting the trace.
    let platform = PlatformBuilder::new()
        .cluster("hpc", 3, NodeSpec::hpc(8, 64_000))
        .cloud("store", 1, NodeSpec::cloud_vm(4, 16_000))
        .build();
    let opts = SimOptions {
        persistence: Some(NodeId::from_raw(3)),
        ..SimOptions::default()
    };
    let faults = FaultPlan::new()
        .fail_at(100.0, NodeId::from_raw(1))
        .recover_at(160.0, NodeId::from_raw(1));
    let mut sched = ListScheduler::plan(&workload, |t| workload.profile(t).duration_s());
    let (report, trace) = SimRuntime::new(platform, opts)
        .run_traced(&workload, &mut sched, &faults)
        .expect("campaign completes despite the failure");
    assert_eq!(report.tasks_completed, 7);
    assert!(report.makespan_s >= stats.critical_path_s - 1e-6);
    assert_eq!(trace.records().len(), 7 + report.tasks_reexecuted);
    // The rigid MPI step really spanned two nodes' worth of cores.
    let busy: f64 = report.node_usage.iter().map(|u| u.busy_core_seconds).sum();
    assert!(
        busy >= 2.0 * 8.0 * 600.0 * 0.9,
        "rigid step occupied 2 full nodes"
    );
    // The gantt renders all nodes.
    let gantt = trace.gantt(4, 40);
    assert_eq!(gantt.lines().count(), 5);
}

#[test]
fn agents_and_dislib_share_the_same_ecosystem() {
    // Agents run a feature-extraction app against the shared store...
    let store = Arc::new(
        KvStore::new(
            (0..3).map(NodeId::from_raw).collect(),
            KvConfig { replication: 2 },
        )
        .expect("valid store"),
    );
    let ops = OpRegistry::new();
    ops.register("sample", |_| {
        // 64 interleaved 2-d points from two clusters.
        let mut out = Vec::new();
        for i in 0..64u8 {
            let base = if i % 2 == 0 { 10u8 } else { 200u8 };
            out.push(base + (i % 5));
            out.push(base + (i % 3));
        }
        bytes::Bytes::from(out)
    });
    let net = AgentNetwork::new(store, ops);
    net.deploy("edge-0", DeviceClass::Edge);
    net.deploy("fog-0", DeviceClass::Fog);
    let report = net
        .start_application(
            net.infos()[1].id,
            Application::new("acquire").task(AppTask::new("sample", vec![], "points")),
            Box::new(RoundRobinOffload::new()),
        )
        .expect("acquisition completes");
    assert_eq!(report.completed, 1);

    // ... and dislib clusters the acquired bytes on the local runtime.
    let value = net.store().get(&"points".into()).expect("persisted");
    let rows: Vec<Vec<f64>> = value
        .payload
        .chunks(2)
        .map(|c| vec![c[0] as f64, c[1] as f64])
        .collect();
    let rt = LocalRuntime::new(LocalConfig::with_workers(2));
    let data = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&rows), 16);
    let scaler = StandardScaler::fit(&rt, &data).expect("scaler");
    let scaled = scaler.transform(&rt, &data).expect("transform");
    let model = KMeans::new(2).seed(1).fit(&rt, &scaled).expect("kmeans");
    let labels = model.predict(&rt, &scaled).expect("predict");
    // The two interleaved clusters separate perfectly.
    assert!(labels.windows(2).all(|w| w[0] != w[1]));
    rt.wait_all().expect("all dataflow tasks complete");
}
