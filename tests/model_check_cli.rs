//! CLI contract of the `model_check` binary: the `--json` report shape
//! and the documented exit codes (0 clean, 2 violation, 3 planted bug
//! not detected), plus — when built with `--features conc-instrument` —
//! the `sched::*` real-code exploration targets: exhaustion under the
//! smoke budget, planted races detected with replayable witnesses, and
//! the DPOR-vs-naive pruning ratio.

use serde::json::{parse, Value};
use std::process::{Command, Output};

fn model_check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_model_check"))
        .args(args)
        .output()
        .expect("run model_check")
}

fn field<'a>(obj: &'a Value, key: &str) -> &'a Value {
    match obj {
        Value::Obj(pairs) => pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null),
        other => panic!("expected object, got {other:?}"),
    }
}

fn str_of(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn u64_of(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        other => panic!("expected integer, got {other:?}"),
    }
}

/// Parses `--json` output into the targets array plus the pruning
/// object, asserting the envelope shape.
fn json_report(args: &[&str], expect_exit: i32) -> (Vec<Value>, Value) {
    let out = model_check(args);
    assert_eq!(
        out.status.code(),
        Some(expect_exit),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let report = parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON on stdout");
    assert_eq!(u64_of(field(&report, "exit_code")), expect_exit as u64);
    let Value::Arr(targets) = field(&report, "targets") else {
        panic!("targets must be an array");
    };
    (targets.clone(), field(&report, "pruning").clone())
}

#[test]
fn smoke_run_is_clean_and_reports_every_model() {
    let (targets, _) = json_report(&["--smoke", "--json"], 0);
    for name in ["sleeper[", "deque[", "parkwake["] {
        let t = targets
            .iter()
            .find(|t| {
                str_of(field(t, "name")).starts_with(name) && str_of(field(t, "expect")) == "clean"
            })
            .unwrap_or_else(|| panic!("missing clean model target {name}"));
        assert_eq!(str_of(field(t, "status")), "ok");
        assert!(u64_of(field(t, "states")) > 0);
    }
    for name in [
        "sleeper[no-recheck]",
        "deque[forget-remove]",
        "parkwake[drop-running-wake]",
    ] {
        let t = targets
            .iter()
            .find(|t| str_of(field(t, "name")) == name)
            .unwrap_or_else(|| panic!("missing planted model target {name}"));
        assert_eq!(
            str_of(field(t, "status")),
            "detected",
            "planted bug in {name} must stay detected"
        );
    }
}

#[test]
fn violation_in_a_clean_target_exits_2() {
    let (targets, _) = json_report(&["--smoke", "--json", "--demo-violation"], 2);
    let demo = targets
        .iter()
        .find(|t| str_of(field(t, "name")) == "demo[planted-as-clean]")
        .expect("demo target present");
    assert_eq!(str_of(field(demo, "status")), "violation");
}

#[test]
fn missed_planted_bug_exits_3_and_dominates() {
    // 3 must win over 2: a harness that misses planted bugs invalidates
    // every other verdict.
    let (targets, _) = json_report(
        &[
            "--smoke",
            "--json",
            "--demo-violation",
            "--demo-missed-plant",
        ],
        3,
    );
    assert!(targets
        .iter()
        .any(|t| str_of(field(t, "status")) == "missed"));
}

#[test]
fn unknown_flag_exits_1() {
    let out = model_check(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
}

#[cfg(not(feature = "conc-instrument"))]
#[test]
fn sched_targets_are_skipped_without_instrumentation() {
    let (targets, pruning) = json_report(&["--smoke", "--json"], 0);
    let sched = targets
        .iter()
        .find(|t| str_of(field(t, "kind")) == "sched")
        .expect("a sched placeholder entry");
    assert_eq!(str_of(field(sched, "status")), "skipped");
    assert_eq!(pruning, Value::Null);
}

#[cfg(feature = "conc-instrument")]
mod instrumented {
    use super::*;

    #[test]
    fn sched_targets_exhaust_and_planted_races_carry_witnesses() {
        let (targets, pruning) = json_report(&["--smoke", "--json"], 0);

        let clean: Vec<&Value> = targets
            .iter()
            .filter(|t| {
                str_of(field(t, "kind")) == "sched" && str_of(field(t, "expect")) == "clean"
            })
            .collect();
        assert!(
            clean.len() >= 4,
            "at least 4 clean sched targets must run to exhaustion, got {}",
            clean.len()
        );
        for t in &clean {
            assert_eq!(str_of(field(t, "status")), "ok");
            assert!(u64_of(field(t, "schedules")) > 0);
        }

        let planted: Vec<&Value> = targets
            .iter()
            .filter(|t| {
                str_of(field(t, "kind")) == "sched" && str_of(field(t, "expect")) == "planted"
            })
            .collect();
        assert_eq!(planted.len(), 2, "both planted races present");
        for t in &planted {
            assert_eq!(
                str_of(field(t, "status")),
                "detected",
                "planted race in {} must stay detected",
                str_of(field(t, "name"))
            );
            assert!(
                !str_of(field(t, "witness")).is_empty(),
                "detected race carries a witness schedule"
            );
        }

        // DPOR must prune at least 2x vs naive on the measured target.
        let dpor = u64_of(field(&pruning, "dpor_schedules"));
        let naive = u64_of(field(&pruning, "naive_schedules"));
        assert!(
            naive >= 2 * dpor && dpor > 0,
            "DPOR pruning ratio must be >= 2x (dpor {dpor}, naive {naive})"
        );
    }

    #[test]
    fn race_witness_replays_through_the_cli() {
        let (targets, _) = json_report(&["--smoke", "--json", "--only", "racy-wake"], 0);
        let racy = targets
            .iter()
            .find(|t| str_of(field(t, "name")) == "sched::task-cell-racy-wake")
            .expect("racy target present");
        let witness = str_of(field(racy, "witness")).to_string();

        let out = model_check(&["--replay", "sched::task-cell-racy-wake", &witness]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "replayed witness must reproduce the violation"
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("reproduced: data race"),
            "replay names the reproduced race: {stdout}"
        );
    }

    #[test]
    fn replay_of_unknown_target_exits_1() {
        let out = model_check(&["--replay", "sched::nonexistent", "0,1"]);
        assert_eq!(out.status.code(), Some(1));
    }
}
