//! End-to-end integration tests of the local runtime through the
//! `continuum` facade: realistic multi-stage applications exercising
//! dependency detection, constraints, failure surfacing and typed data
//! handles together.

use continuum::dag::TaskSpec;
use continuum::platform::Constraints;
use continuum::runtime::{LocalConfig, LocalRuntime, RuntimeError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A little ETL pipeline: extract → 4 parallel transforms → load, with
/// a side branch computing statistics from the raw extract.
#[test]
fn etl_pipeline_with_side_branch() {
    let rt = LocalRuntime::new(LocalConfig::with_workers(4));
    let raw = rt.data::<Vec<i64>>("raw");
    let transformed = rt.data_batch::<Vec<i64>>("tr", 4);
    let loaded = rt.data::<i64>("loaded");
    let stats = rt.data::<(i64, i64)>("stats");

    rt.submit(
        TaskSpec::new("extract").output(raw.id()),
        Constraints::new(),
        |ctx| ctx.set_output(0, (1..=100i64).collect::<Vec<i64>>()),
    )
    .unwrap();

    for (i, t) in transformed.iter().enumerate() {
        rt.submit(
            TaskSpec::new(format!("transform{i}"))
                .input(raw.id())
                .output(t.id()),
            Constraints::new(),
            move |ctx| {
                let v: &Vec<i64> = ctx.input(0);
                let n = v.len() / 4;
                ctx.set_output(
                    0,
                    v[i * n..(i + 1) * n]
                        .iter()
                        .map(|x| x * 10)
                        .collect::<Vec<i64>>(),
                );
            },
        )
        .unwrap();
    }

    rt.submit(
        TaskSpec::new("load")
            .inputs(transformed.iter().map(|t| t.id()))
            .output(loaded.id()),
        Constraints::new(),
        |ctx| {
            let mut total = 0i64;
            for i in 0..ctx.input_count() {
                total += ctx.input::<Vec<i64>>(i).iter().sum::<i64>();
            }
            ctx.set_output(0, total);
        },
    )
    .unwrap();

    rt.submit(
        TaskSpec::new("stats").input(raw.id()).output(stats.id()),
        Constraints::new(),
        |ctx| {
            let v: &Vec<i64> = ctx.input(0);
            ctx.set_output(0, (*v.iter().min().unwrap(), *v.iter().max().unwrap()));
        },
    )
    .unwrap();

    assert_eq!(*rt.get(&loaded).unwrap(), (1..=100i64).sum::<i64>() * 10);
    assert_eq!(*rt.get(&stats).unwrap(), (1, 100));
    rt.wait_all().unwrap();
    assert_eq!(rt.completed_count(), 7);
}

/// Iterative refinement: the InOut chain re-runs a model update 20
/// times; the runtime serialises the chain but overlaps independent
/// monitoring tasks.
#[test]
fn iterative_refinement_with_monitoring() {
    let rt = LocalRuntime::new(LocalConfig::with_workers(4));
    let model = rt.data::<f64>("model");
    let monitors = rt.data_batch::<f64>("snapshot", 20);
    rt.set_initial(&model, 1.0);
    for m in &monitors {
        // Update halves the distance to 2.0.
        rt.submit(
            TaskSpec::new("update").inout(model.id()),
            Constraints::new(),
            |ctx| {
                let v: &f64 = ctx.input(0);
                ctx.set_output(0, v + (2.0 - v) / 2.0);
            },
        )
        .unwrap();
        // Monitor reads the freshly produced version.
        rt.submit(
            TaskSpec::new("monitor").input(model.id()).output(m.id()),
            Constraints::new(),
            |ctx| {
                let v: &f64 = ctx.input(0);
                ctx.set_output(0, *v);
            },
        )
        .unwrap();
    }
    let final_model = *rt.get(&model).unwrap();
    assert!((final_model - 2.0).abs() < 1e-5);
    // Snapshots are strictly increasing — each saw its own version.
    let mut prev = 0.0;
    for m in &monitors {
        let v = *rt.get(m).unwrap();
        assert!(v > prev);
        prev = v;
    }
    rt.wait_all().unwrap();
}

/// GPU-style constraint gating: tasks requiring a GPU run only when
/// the configured capacity advertises one.
#[test]
fn constraint_gating_by_gpu() {
    let with_gpu = LocalRuntime::new(LocalConfig {
        workers: 2,
        gpus: 1,
        ..LocalConfig::default()
    });
    let out = with_gpu.data::<u32>("out");
    with_gpu
        .submit(
            TaskSpec::new("cuda_kernel").output(out.id()),
            Constraints::new().gpus(1),
            |ctx| ctx.set_output(0, 99u32),
        )
        .unwrap();
    assert_eq!(*with_gpu.get(&out).unwrap(), 99);

    let without_gpu = LocalRuntime::new(LocalConfig::with_workers(2));
    let out2 = without_gpu.data::<u32>("out");
    let err = without_gpu
        .submit(
            TaskSpec::new("cuda_kernel").output(out2.id()),
            Constraints::new().gpus(1),
            |ctx| ctx.set_output(0, 99u32),
        )
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Unschedulable { .. }));
}

/// Failures propagate: a panicking mid-pipeline task poisons the run,
/// surfaces in wait_all and in every blocked get, and stops new work.
#[test]
fn mid_pipeline_failure_poisons_run() {
    let rt = LocalRuntime::new(LocalConfig::with_workers(2));
    let a = rt.data::<u32>("a");
    let b = rt.data::<u32>("b");
    let c = rt.data::<u32>("c");
    let executed_after = Arc::new(AtomicUsize::new(0));

    rt.submit(
        TaskSpec::new("ok").output(a.id()),
        Constraints::new(),
        |ctx| ctx.set_output(0, 1),
    )
    .unwrap();
    rt.submit(
        TaskSpec::new("boom").input(a.id()).output(b.id()),
        Constraints::new(),
        |_| panic!("sensor exploded"),
    )
    .unwrap();
    let counter = Arc::clone(&executed_after);
    rt.submit(
        TaskSpec::new("downstream").input(b.id()).output(c.id()),
        Constraints::new(),
        move |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.set_output(0, 3);
        },
    )
    .unwrap();

    let err = rt.wait_all().unwrap_err();
    assert!(err.to_string().contains("sensor exploded"));
    assert!(rt.get(&c).is_err());
    assert_eq!(
        executed_after.load(Ordering::SeqCst),
        0,
        "downstream never ran"
    );
}

/// The runtime is shared-state safe: many application threads submit
/// concurrently against one runtime (the multi-tenant agent scenario).
#[test]
fn concurrent_submitters_share_one_runtime() {
    let rt = LocalRuntime::new(LocalConfig::with_workers(4));
    let totals: Vec<_> = (0..4)
        .map(|i| rt.data::<u64>(format!("total{i}")))
        .collect();
    std::thread::scope(|scope| {
        for (t, total) in totals.iter().enumerate() {
            let rt = &rt;
            scope.spawn(move || {
                let parts = rt.data_batch::<u64>(&format!("p{t}_"), 50);
                for (i, p) in parts.iter().enumerate() {
                    rt.submit(
                        TaskSpec::new("gen").output(p.id()),
                        Constraints::new(),
                        move |ctx| ctx.set_output(0, (t * 1000 + i) as u64),
                    )
                    .unwrap();
                }
                rt.submit(
                    TaskSpec::new("sum")
                        .inputs(parts.iter().map(|p| p.id()))
                        .output(total.id()),
                    Constraints::new(),
                    |ctx| {
                        let s: u64 = (0..ctx.input_count()).map(|i| *ctx.input::<u64>(i)).sum();
                        ctx.set_output(0, s);
                    },
                )
                .unwrap();
            });
        }
    });
    rt.wait_all().unwrap();
    for (t, total) in totals.iter().enumerate() {
        let expected: u64 = (0..50).map(|i| (t * 1000 + i) as u64).sum();
        assert_eq!(*rt.get(total).unwrap(), expected, "tenant {t}");
    }
    assert_eq!(rt.completed_count(), 4 * 51);
}

/// Many short tasks: throughput smoke test (also catches deadlocks in
/// the worker wake-up protocol).
#[test]
fn thousand_task_smoke() {
    let rt = LocalRuntime::new(LocalConfig::with_workers(8));
    let outs = rt.data_batch::<usize>("o", 1000);
    for (i, o) in outs.iter().enumerate() {
        rt.submit(
            TaskSpec::new("w").output(o.id()),
            Constraints::new(),
            move |ctx| ctx.set_output(0, i * 2),
        )
        .unwrap();
    }
    rt.wait_all().unwrap();
    assert_eq!(rt.completed_count(), 1000);
    assert_eq!(*rt.get(&outs[500]).unwrap(), 1000);
}
