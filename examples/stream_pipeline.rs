//! Streaming dataflow: a continuous-inference service on both engines.
//!
//! The hybrid-workflows shape — sensor → featurize → model → sink —
//! written once with `Stream` parameter directions. Unlike `In`/`Out`
//! edges, a stream edge releases its consumer at the producer's *first
//! element*, so all four stages run concurrently as one pipeline:
//!
//! * on the **local runtime**, each edge is a bounded MPMC channel with
//!   real backpressure; the model stage applies coefficients learned by
//!   a dislib linear regression to every frame as it arrives;
//! * on the **simulated runtime**, the same shape (from
//!   `workflows::patterns::continuous_inference`) shows the makespan
//!   effect: four 10 s stages overlap to ~11 s instead of 40 s.
//!
//! ```text
//! cargo run --example stream_pipeline
//! ```

use continuum::dag::TaskSpec;
use continuum::dislib::{DistMatrix, LinearRegression, Matrix};
use continuum::platform::{Constraints, NodeSpec, PlatformBuilder};
use continuum::runtime::{
    FifoScheduler, LocalConfig, LocalRuntime, RuntimeError, SimOptions, SimRuntime,
};
use continuum::sim::FaultPlan;
use continuum::workflows::patterns;

const FRAMES: usize = 64;

fn main() -> Result<(), RuntimeError> {
    // ---- phase 0: train the model (dislib on the local runtime) ----
    let rt = LocalRuntime::new(LocalConfig::with_workers(4));
    let x: Vec<Vec<f64>> = (0..512)
        .map(|i| {
            let t = i as f64 * 0.13;
            vec![t.sin() * 5.0, t.cos() * 5.0]
        })
        .collect();
    let y: Vec<Vec<f64>> = x.iter().map(|r| vec![2.0 * r[0] - r[1] + 1.0]).collect();
    let dx = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&x), 128);
    let dy = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&y), 128);
    let model = LinearRegression::new()
        .fit(&rt, &dx, &dy)
        .expect("ols fits");
    let coef = [model.coefficients().at(0, 0), model.coefficients().at(1, 0)];
    let intercept = model.intercept()[0];
    println!(
        "trained model: y = {:.2}·x0 + {:.2}·x1 + {:.2}",
        coef[0], coef[1], intercept
    );

    // ---- phase 1: the streamed service on the local runtime ----
    // One bounded window of FRAMES observations; a deployment would
    // re-submit windows back-to-back.
    let frames = rt.stream::<[f64; 2]>("frames", 8);
    let feats = rt.stream::<[f64; 2]>("feats", 8);
    let preds = rt.stream::<f64>("preds", 8);
    let report = rt.data::<Vec<f64>>("report");

    rt.submit(
        TaskSpec::new("sensor").stream_out(frames.id()),
        Constraints::new(),
        |ctx| {
            let tx = ctx.stream_writer::<[f64; 2]>(0);
            for i in 0..FRAMES {
                let t = i as f64 * 0.31;
                if !tx.send([t.sin() * 5.0, t.cos() * 5.0]) {
                    break;
                }
            }
        },
    )?;
    rt.submit(
        TaskSpec::new("featurize")
            .stream_in(frames.id())
            .stream_out(feats.id()),
        Constraints::new(),
        |ctx| {
            let rx = ctx.stream_reader::<[f64; 2]>(0);
            let tx = ctx.stream_writer::<[f64; 2]>(0);
            while let Some(f) = rx.recv() {
                // Clamp outliers before inference.
                if !tx.send([f[0].clamp(-4.0, 4.0), f[1].clamp(-4.0, 4.0)]) {
                    break;
                }
            }
        },
    )?;
    rt.submit(
        TaskSpec::new("model")
            .stream_in(feats.id())
            .stream_out(preds.id()),
        Constraints::new(),
        move |ctx| {
            let rx = ctx.stream_reader::<[f64; 2]>(0);
            let tx = ctx.stream_writer::<f64>(0);
            while let Some(f) = rx.recv() {
                let y = coef[0] * f[0] + coef[1] * f[1] + intercept;
                if !tx.send(y) {
                    break;
                }
            }
        },
    )?;
    rt.submit(
        TaskSpec::new("sink")
            .stream_in(preds.id())
            .output(report.id()),
        Constraints::new(),
        |ctx| {
            let rx = ctx.stream_reader::<f64>(0);
            let mut acc = Vec::new();
            while let Some(p) = rx.recv() {
                acc.push(*p);
            }
            ctx.set_output(0, acc);
        },
    )?;

    let predictions = rt.get(&report)?;
    rt.wait_all()?;
    println!(
        "local streamed window: {} predictions, first {:.2}, last {:.2}",
        predictions.len(),
        predictions.first().copied().unwrap_or(f64::NAN),
        predictions.last().copied().unwrap_or(f64::NAN),
    );

    // ---- phase 2: the same shape under the simulated engine ----
    let platform = || {
        PlatformBuilder::new()
            .cluster("edge", 2, NodeSpec::hpc(4, 96_000))
            .build()
    };
    let streamed = SimRuntime::new(platform(), SimOptions::default()).run(
        &patterns::continuous_inference(FRAMES as u64, 4_096, 10.0),
        &mut FifoScheduler::new(),
        &FaultPlan::new(),
    )?;
    let batch = SimRuntime::new(platform(), SimOptions::default()).run(
        &patterns::batch_inference(FRAMES as u64, 4_096, 10.0),
        &mut FifoScheduler::new(),
        &FaultPlan::new(),
    )?;
    println!(
        "sim makespan: streamed {:.2}s vs batch {:.2}s ({:.1}× overlap win)",
        streamed.makespan_s,
        batch.makespan_s,
        batch.makespan_s / streamed.makespan_s
    );
    Ok(())
}
