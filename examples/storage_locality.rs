//! The storage interface in action (paper §VI-A1 and Fig. 4): make
//! objects persistent through the SOI, let the runtime query replica
//! locations through the SRI (`getLocations`) for locality-aware
//! scheduling, and contrast dataClay-style in-store method execution
//! against fetching whole objects.
//!
//! ```text
//! cargo run --release --example storage_locality
//! ```

use bytes::Bytes;
use continuum::dag::TaskSpec;
use continuum::platform::{NodeSpec, PlatformBuilder};
use continuum::runtime::{
    FifoScheduler, LocalityScheduler, SimOptions, SimRuntime, SimWorkload, TaskProfile,
};
use continuum::sim::FaultPlan;
use continuum::storage::{ActiveStore, ClassDef, KvConfig, KvStore, StorageRuntime, StoredValue};

fn main() {
    // --- SOI + SRI + locality scheduling --------------------------------
    let platform = PlatformBuilder::new()
        .cluster("dc", 4, NodeSpec::hpc(8, 64_000))
        .build();
    let store = KvStore::new(
        platform.nodes().iter().map(|n| n.id()).collect(),
        KvConfig { replication: 2 },
    )
    .expect("valid store");

    // Persist 16 partitions (the SOI `make_persistent` path) and build
    // a workload whose map tasks read them where they live.
    let mut workload = SimWorkload::new();
    let mut outs = Vec::new();
    for i in 0..16 {
        let key: continuum::storage::ObjectKey = format!("table:part{i}").into();
        store
            .put(key.clone(), StoredValue::blob(vec![1u8; 1024]), None)
            .expect("put");
        let home = store.locations(&key).expect("stored")[0]; // the SRI call
        let part = workload.initial_data(format!("part{i}"), 250_000_000, Some(home));
        let out = workload.data(format!("out{i}"));
        workload
            .task(
                TaskSpec::new("scan").input(part).output(out),
                TaskProfile::new(8.0).outputs_bytes(1_000_000),
            )
            .expect("valid task");
        outs.push(out);
    }
    let result = workload.data("result");
    workload
        .task(
            TaskSpec::new("aggregate").inputs(outs).output(result),
            TaskProfile::new(4.0),
        )
        .expect("valid task");

    for (label, locality) in [
        ("locality-blind (fifo)", false),
        ("getLocations-driven", true),
    ] {
        let rt = SimRuntime::new(platform.clone(), SimOptions::default());
        let report = if locality {
            rt.run(&workload, &mut LocalityScheduler::new(), &FaultPlan::new())
        } else {
            rt.run(&workload, &mut FifoScheduler::new(), &FaultPlan::new())
        }
        .expect("completes");
        println!(
            "{label:<22} makespan {:>6.1} s  transfers {:>2} ({:>5.2} GB)  locality {:>5.1}%",
            report.makespan_s,
            report.transfer_count,
            report.transfer_bytes as f64 / 1e9,
            report.locality_rate * 100.0
        );
    }

    // --- Active store: method shipping ----------------------------------
    println!("\nactive object store (dataClay-style method execution):");
    let active = ActiveStore::new(platform.nodes().iter().map(|n| n.id()).collect(), 2)
        .expect("valid store");
    active.register_class(
        ClassDef::new("Histogram").method("quantile99", |payload, _| {
            let mut sorted: Vec<u8> = payload.to_vec();
            sorted.sort_unstable();
            let q = sorted[sorted.len() * 99 / 100];
            Bytes::copy_from_slice(&[q])
        }),
    );
    active
        .put(
            "hist".into(),
            StoredValue::object(vec![42u8; 50_000_000], "Histogram"),
            None,
        )
        .expect("put");
    let q = active
        .execute(&"hist".into(), "quantile99", &[])
        .expect("execute");
    let _ = active.fetch(&"hist".into()).expect("fetch");
    let stats = active.shipping_stats();
    println!(
        "  p99 = {} — method shipping moved {} bytes; fetching the object moved {} bytes \
         ({}x saving)",
        q[0],
        stats.active_bytes(),
        stats.passive_bytes(),
        stats.passive_bytes() / stats.active_bytes().max(1)
    );
}
