//! A GUIDANCE-like GWAS campaign on a simulated 100-node cluster.
//!
//! Reproduces the §VI-A scenario: thousands of tasks with *variable
//! memory* requirements, scheduled with per-task constraints and full
//! dataflow asynchrony on a MareNostrum-like machine, and compared
//! against the static worst-case-sizing baseline.
//!
//! ```text
//! cargo run --release --example gwas_campaign
//! ```

use continuum::platform::{NodeSpec, PlatformBuilder};
use continuum::runtime::{LocalityScheduler, SimOptions, SimRuntime};
use continuum::sim::FaultPlan;
use continuum::workflows::GwasWorkload;

fn main() {
    let platform = PlatformBuilder::new()
        .cluster("marenostrum", 100, NodeSpec::hpc(48, 96_000))
        .build();
    println!(
        "platform: {} nodes / {} cores",
        platform.num_nodes(),
        platform.total_cores()
    );

    let campaign = GwasWorkload::new()
        .chromosomes(22)
        .chunks_per_chromosome(24)
        .memory_mb(8_000, 48_000)
        .heavy_fraction(0.15)
        .seed(7);
    let workload = campaign.build();
    let stats = workload.stats();
    println!(
        "campaign: {} tasks, {} dependency edges, sequential time {:.1} h, \
         inherent parallelism {:.0}",
        stats.tasks,
        stats.edges,
        stats.total_duration_s / 3600.0,
        stats.average_parallelism
    );

    let runtime = SimRuntime::new(platform.clone(), SimOptions::default());
    let report = runtime
        .run(&workload, &mut LocalityScheduler::new(), &FaultPlan::new())
        .expect("campaign completes");
    println!("\n— per-task memory constraints + asynchronous dataflow —\n{report}");

    // The baseline the paper's 50% claim is measured against: size
    // every task for the worst case and run level by level.
    let baseline_workload = campaign.clone().worst_case_memory(true).build();
    let baseline = SimRuntime::new(
        platform,
        SimOptions {
            barrier_levels: true,
            ..SimOptions::default()
        },
    )
    .run(
        &baseline_workload,
        &mut LocalityScheduler::new(),
        &FaultPlan::new(),
    )
    .expect("baseline completes");
    println!("\n— worst-case sizing + stage barriers (static baseline) —\n{baseline}");

    println!(
        "\nreduction from constraints + asynchrony: {:.0}% (paper reports ~50%)",
        (1.0 - report.makespan_s / baseline.makespan_s) * 100.0
    );
}
