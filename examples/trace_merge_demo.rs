//! Federated tracing across agents: a two-agent offload run where the
//! coordinator and each agent record *separate* trace files on their
//! own clocks, then `continuum-trace merge` joins them into one
//! causally-consistent trace.
//!
//! ```text
//! cargo run --example trace_merge_demo    # writes target/trace_merge_demo.*.trace.json
//! cargo run --release -p continuum-telemetry --bin continuum-trace -- \
//!     merge target/trace_merge_demo.coord.trace.json \
//!           target/trace_merge_demo.agent0.trace.json \
//!           target/trace_merge_demo.agent1.trace.json \
//!           --out target/trace_merge_demo.merged.trace.json --check
//! ```
//!
//! The demo also performs the merge in-process and prints the
//! cross-agent attribution, whose per-hop compute / transfer / queue /
//! network buckets sum exactly to the end-to-end makespan.

use bytes::Bytes;
use continuum::agents::{
    AgentNetwork, AppTask, Application, OpRegistry, Orchestrator, RoundRobinOffload,
};
use continuum::platform::{DeviceClass, NodeId};
use continuum::storage::{KvConfig, KvStore};
use continuum::telemetry::{
    chrome_trace, cross_agent_report, merge_traces, AgentTrace, TraceBuffer,
};
use std::sync::Arc;

fn ops() -> OpRegistry {
    let ops = OpRegistry::new();
    ops.register("sense", |_| {
        std::thread::sleep(std::time::Duration::from_millis(20));
        Bytes::from(vec![3u8; 64 * 1024])
    });
    ops.register("filter", |ins| {
        std::thread::sleep(std::time::Duration::from_millis(10));
        Bytes::from(
            ins[0]
                .iter()
                .filter(|b| **b > 1)
                .copied()
                .collect::<Vec<u8>>(),
        )
    });
    ops.register("aggregate", |ins| {
        std::thread::sleep(std::time::Duration::from_millis(5));
        let sum: u64 = ins.iter().flat_map(|b| b.iter()).map(|b| *b as u64).sum();
        Bytes::copy_from_slice(&sum.to_le_bytes())
    });
    ops
}

fn main() {
    let store = Arc::new(
        KvStore::new(
            (0..4).map(NodeId::from_raw).collect(),
            KvConfig { replication: 2 },
        )
        .expect("valid store"),
    );
    let net = AgentNetwork::new(store, ops());

    // Each agent records into its own buffer, stamped on its own clock
    // origin — exactly the federated setting the merge re-aligns.
    let (fog_buffer, fog_handle) = TraceBuffer::collector();
    let (cloud_buffer, cloud_handle) = TraceBuffer::collector();
    net.deploy_with_telemetry("fog-0", DeviceClass::Fog, fog_handle);
    net.deploy_with_telemetry("cloud-0", DeviceClass::CloudVm, cloud_handle);

    let app = Application::new("sense-filter-aggregate")
        .task(AppTask::new("sense", vec![], "raw"))
        .task(AppTask::new("filter", vec!["raw".into()], "clean").input_bytes_hint(64 * 1024))
        .task(AppTask::new("aggregate", vec!["clean".into()], "result").input_bytes_hint(16));

    // The coordinator's trace: the orchestration root span plus one
    // offload-hop span per dispatch, on the coordinator's clock.
    let (coord_buffer, coord_handle) = TraceBuffer::collector();
    let report = Orchestrator::new(&net)
        .telemetry(coord_handle)
        .run(&app, &mut RoundRobinOffload::new())
        .expect("application completes");
    println!(
        "run complete: {} tasks over {} agents",
        report.completed,
        report.executions_per_agent.len()
    );

    // One trace file per participant — what each side would ship home.
    // Written under target/ so demo artifacts stay out of the source
    // tree.
    std::fs::create_dir_all("target").expect("create target dir");
    let parts = [
        (
            "target/trace_merge_demo.coord.trace.json",
            coord_buffer.events(),
        ),
        (
            "target/trace_merge_demo.agent0.trace.json",
            fog_buffer.events(),
        ),
        (
            "target/trace_merge_demo.agent1.trace.json",
            cloud_buffer.events(),
        ),
    ];
    for (path, events) in &parts {
        std::fs::write(path, chrome_trace(events)).expect("write trace");
        println!("wrote {path} ({} events)", events.len());
    }

    // The same merge `continuum-trace merge` performs, in-process.
    let traces: Vec<AgentTrace> = parts
        .iter()
        .map(|(_, events)| AgentTrace::infer(events.clone()))
        .collect();
    let merged = merge_traces(&traces).expect("traces merge");
    for a in &merged.alignments {
        println!(
            "clock agent{}: offset {:+} µs (feasible [{}, {}] µs)",
            a.agent_id, a.offset_us, a.feasible_lo_us, a.feasible_hi_us
        );
    }
    assert!(
        merged.violations.is_empty(),
        "happens-before violations: {:?}",
        merged.violations
    );

    let xa = cross_agent_report(&merged.events).expect("cross-agent view");
    println!(
        "\ncross-agent `{}`: {:.3} ms makespan, critical path crosses {} offload hop(s)",
        xa.root_name,
        xa.makespan_us as f64 / 1e3,
        xa.critical_offload_hops()
    );
    let label = |a: u32| {
        if a == continuum::telemetry::SpanContext::COORDINATOR {
            "coord".to_string()
        } else {
            format!("agent{a}")
        }
    };
    for h in &xa.hops {
        println!(
            "  {:28} {:>6}→{:<6} compute {:7} µs  transfer {:7} µs  queue {:7} µs  network {:7} µs",
            h.name,
            label(h.from_agent),
            label(h.to_agent),
            h.compute_us,
            h.transfer_us,
            h.queue_us,
            h.network_us
        );
    }
    assert_eq!(
        xa.attributed_total_us(),
        xa.makespan_us,
        "per-hop buckets sum exactly to the makespan"
    );
    assert!(
        xa.critical_offload_hops() >= 1,
        "the critical path crosses an offload hop"
    );
    println!("\nattribution sums to makespan: {} µs", xa.makespan_us);
}
