//! The textual workflow modality (paper §II: workflows "described
//! textually, by specifying the graph in a textual mode, indicating
//! the nodes and its interconnections like in Pegasus"): parse a
//! workflow description, inspect it, execute it on a simulated
//! platform and print the execution Gantt.
//!
//! ```text
//! cargo run --release --example wdl_workflow [path/to/workflow.wdl]
//! ```

use continuum::platform::{NodeSpec, PlatformBuilder};
use continuum::runtime::{ListScheduler, SimOptions, SimRuntime};
use continuum::sim::FaultPlan;
use continuum::workflows::{parse_wdl, to_wdl};

const DEMO: &str = "
# A climate-analysis campaign: per-region preprocessing feeding a
# rigid multi-node simulation, followed by analytics and archiving.
data obs_eu size=800M home=0
data obs_us size=800M home=1
data obs_asia size=800M home=2

task curate in=obs_eu out=eu dur=120 mem=8G out_bytes=400M group=prep
task curate in=obs_us out=us dur=140 mem=8G out_bytes=400M group=prep
task curate in=obs_asia out=asia dur=110 mem=8G out_bytes=400M group=prep
task assemble in=eu,us,asia out=grid dur=60 mem=16G out_bytes=1G group=prep
task simulate in=grid out=forecast dur=1800 nodes=2 out_bytes=2G group=hpc
task detect_anomalies in=forecast out=anomalies dur=240 cores=4 out_bytes=50M group=analytics
task render_maps in=forecast out=maps dur=180 cores=2 out_bytes=200M group=analytics
task archive in=anomalies,maps out=bundle dur=30 group=publish
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEMO.to_string(),
    };
    let workload = match parse_wdl(&text) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("workflow parse error: {e}");
            std::process::exit(2);
        }
    };
    let stats = workload.stats();
    println!(
        "parsed workflow: {} tasks, {} edges, critical path {:.0} s, parallelism {:.1}",
        stats.tasks, stats.edges, stats.critical_path_s, stats.average_parallelism
    );

    let platform = PlatformBuilder::new()
        .cluster("hpc", 4, NodeSpec::hpc(8, 64_000))
        .build();
    let mut scheduler = ListScheduler::plan(&workload, |t| workload.profile(t).duration_s());
    let (report, trace) = SimRuntime::new(platform, SimOptions::default())
        .run_traced(&workload, &mut scheduler, &FaultPlan::new())
        .expect("workflow completes");
    println!("\n{report}\n");
    println!("execution gantt (# = busy):");
    print!("{}", trace.gantt(4, 72));

    println!("\ncanonical serialisation (to_wdl):");
    print!("{}", to_wdl(&workload));
}
