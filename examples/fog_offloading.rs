//! COMPSs agents on a fog-to-cloud platform (paper Figs. 5–6).
//!
//! Deploys one agent per device, runs a sense→filter→aggregate
//! application through the orchestrator under different offloading
//! policies, then demonstrates the §VI-B recovery story: a fog device
//! dies mid-application and, because every produced value is persisted
//! to the shared store, the orchestrator simply re-submits the lost
//! task to another device.
//!
//! ```text
//! cargo run --example fog_offloading
//! ```

use bytes::Bytes;
use continuum::agents::{
    AgentNetwork, AppTask, Application, LatencyAwareOffload, OffloadPolicy, OpRegistry,
    Orchestrator, PreferClass, RoundRobinOffload,
};
use continuum::platform::{DeviceClass, NodeId};
use continuum::storage::{KvConfig, KvStore};
use std::sync::Arc;

fn ops() -> OpRegistry {
    let ops = OpRegistry::new();
    ops.register("sense", |_| {
        // Sensing takes a while — long enough for churn to strike.
        std::thread::sleep(std::time::Duration::from_millis(30));
        Bytes::from(vec![3u8; 512 * 1024])
    });
    ops.register("filter", |ins| {
        Bytes::from(
            ins[0]
                .iter()
                .filter(|b| **b > 1)
                .copied()
                .collect::<Vec<u8>>(),
        )
    });
    ops.register("aggregate", |ins| {
        let sum: u64 = ins.iter().flat_map(|b| b.iter()).map(|b| *b as u64).sum();
        Bytes::copy_from_slice(&sum.to_le_bytes())
    });
    ops
}

fn app(sensors: usize) -> Application {
    let mut app = Application::new("sense-filter-aggregate");
    let mut filtered = Vec::new();
    for s in 0..sensors {
        app = app
            .task(AppTask::new("sense", vec![], format!("raw{s}")).prefer_class(DeviceClass::Fog));
        app = app.task(
            AppTask::new(
                "filter",
                vec![format!("raw{s}").into()],
                format!("clean{s}"),
            )
            .input_bytes_hint(512 * 1024),
        );
        filtered.push(format!("clean{s}").into());
    }
    app.task(AppTask::new("aggregate", filtered, "result").input_bytes_hint(16))
}

fn main() {
    // The shared persistent store (the dataClay role), replicated over
    // four storage nodes.
    let store = Arc::new(
        KvStore::new(
            (0..4).map(NodeId::from_raw).collect(),
            KvConfig { replication: 2 },
        )
        .expect("valid store"),
    );
    let net = AgentNetwork::new(store, ops());
    let fog_ids: Vec<_> = (0..4)
        .map(|i| net.deploy(format!("fog-{i}"), DeviceClass::Fog))
        .collect();
    for i in 0..2 {
        net.deploy(format!("cloud-{i}"), DeviceClass::CloudVm);
    }
    println!("deployed {} agents (4 fog + 2 cloud)\n", net.len());

    let mut policies: Vec<Box<dyn OffloadPolicy>> = vec![
        Box::new(RoundRobinOffload::new()),
        Box::new(PreferClass::fog_first()),
        Box::new(PreferClass::cloud_first()),
        Box::new(LatencyAwareOffload::new(64 * 1024)),
    ];
    for policy in policies.iter_mut() {
        let report = Orchestrator::new(&net)
            .run(&app(6), policy.as_mut())
            .expect("application completes");
        let by_class = |class: DeviceClass| -> usize {
            let infos = net.infos();
            report
                .executions_per_agent
                .iter()
                .filter(|(id, _)| infos[id.index()].class == class)
                .map(|(_, n)| *n)
                .sum()
        };
        println!(
            "policy {:<14} completed {:>2} tasks  fog {:>2} / cloud {:>2}  re-executed {}",
            policy.name(),
            report.completed,
            by_class(DeviceClass::Fog),
            by_class(DeviceClass::CloudVm),
            report.reexecutions
        );
    }

    // Churn recovery: two fog devices die *while the application is
    // running*; their in-flight tasks are lost, but every committed
    // value is already persistent, so the orchestrator re-submits only
    // the lost work to the surviving devices.
    println!("\nfog-0 and fog-1 will die mid-run (battery, paper §VI-B)...");
    let killer = {
        let f0 = fog_ids[0];
        let f1 = fog_ids[1];
        let net = &net;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                net.kill(f0).expect("fog-0 deployed");
                net.kill(f1).expect("fog-1 deployed");
            });
            Orchestrator::new(net)
                .run(&app(6), &mut RoundRobinOffload::new())
                .expect("application recovers")
        })
    };
    println!(
        "recovered: {} tasks completed, {} lost executions re-submitted to live devices",
        killer.completed, killer.reexecutions
    );

    // The REST "Start Application" verb (paper Fig. 6): a fog device
    // orchestrates the application itself, using its peers as workers.
    let report = net
        .start_application(fog_ids[2], app(4), Box::new(PreferClass::fog_first()))
        .expect("fog-orchestrated application completes");
    println!(
        "\nfog-2 orchestrated the app itself (fog-to-fog): {} tasks done across {} agents",
        report.completed,
        report.executions_per_agent.len()
    );
}
