//! A dislib-style machine-learning pipeline on the local runtime:
//! scale → PCA → K-means, plus a regression — the paper's §VI-C
//! "simple and easy to use interface" whose algorithms "run in
//! parallel" as task graphs.
//!
//! This example also illustrates the abstraction levels of paper
//! Figs. 2–3: the estimator API is the high-level abstraction, the
//! task runtime underneath is the general-purpose level, and the
//! access processor below that is the runtime API.
//!
//! ```text
//! cargo run --release --example ml_pipeline
//! ```

use continuum::dislib::{DistMatrix, KMeans, LinearRegression, Matrix, Pca, StandardScaler};
use continuum::runtime::{LocalConfig, LocalRuntime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let rt = LocalRuntime::new(LocalConfig::with_workers(4));

    // Three gaussian-ish blobs in 4 dimensions.
    let mut rng = StdRng::seed_from_u64(13);
    let centers = [
        [0.0, 0.0, 5.0, 1.0],
        [8.0, 8.0, 0.0, 2.0],
        [0.0, 9.0, 9.0, 3.0],
    ];
    let rows: Vec<Vec<f64>> = (0..3000)
        .map(|i| {
            let c = &centers[i % 3];
            c.iter().map(|v| v + rng.gen::<f64>() - 0.5).collect()
        })
        .collect();
    let data = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&rows), 256);
    println!(
        "dataset: {} samples × {} features in {} blocks",
        data.rows(),
        data.cols(),
        data.num_blocks()
    );

    // 1. Standardise.
    let scaler = StandardScaler::fit(&rt, &data).expect("scaler fits");
    let scaled = scaler.transform(&rt, &data).expect("transform");
    println!(
        "scaler means: {:?}",
        scaler
            .mean()
            .iter()
            .map(|m| (m * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // 2. PCA to inspect the dominant structure.
    let pca = Pca::new(2).fit(&rt, &scaled).expect("pca fits");
    println!(
        "pca explained variance: {:?}",
        pca.explained_variance()
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // 3. Cluster.
    let model = KMeans::new(3)
        .seed(5)
        .fit(&rt, &scaled)
        .expect("kmeans fits");
    let labels = model.predict(&rt, &scaled).expect("predict");
    let mut counts = [0usize; 3];
    for l in &labels {
        counts[*l] += 1;
    }
    println!(
        "kmeans: {} iterations, inertia {:.1}, cluster sizes {counts:?}",
        model.iterations, model.inertia
    );

    // 4. A supervised task: recover a linear relationship.
    let x: Vec<Vec<f64>> = (0..2000)
        .map(|_| vec![rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0])
        .collect();
    let y: Vec<Vec<f64>> = x
        .iter()
        .map(|r| vec![3.0 * r[0] - 2.0 * r[1] + 7.0])
        .collect();
    let dx = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&x), 256);
    let dy = DistMatrix::from_matrix(&rt, &Matrix::from_rows(&y), 256);
    let lr = LinearRegression::new()
        .fit(&rt, &dx, &dy)
        .expect("ols fits");
    println!(
        "linear regression: coefficients [{:.3}, {:.3}], intercept {:.3} (truth: 3, -2, 7)",
        lr.coefficients().at(0, 0),
        lr.coefficients().at(1, 0),
        lr.intercept()[0]
    );
    rt.wait_all().expect("all tasks complete");
    println!(
        "total tasks executed by the runtime: {}",
        rt.completed_count()
    );
}
