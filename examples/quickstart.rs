//! Quickstart: the task-based programming model on the local runtime.
//!
//! A tiny "scientific" pipeline — generate samples, process them in
//! parallel, reduce — written once as tasks with data directions; the
//! runtime discovers the dependencies and runs everything it can in
//! parallel.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use continuum::dag::{DotOptions, TaskSpec};
use continuum::platform::Constraints;
use continuum::runtime::{LocalConfig, LocalRuntime, RuntimeError};

fn main() -> Result<(), RuntimeError> {
    let rt = LocalRuntime::new(LocalConfig::with_workers(4));

    // Declare the data flowing through the workflow.
    let raw = rt.data::<Vec<f64>>("raw_samples");
    let chunks: Vec<_> = rt.data_batch::<Vec<f64>>("normalized", 4);
    let means: Vec<_> = rt.data_batch::<f64>("chunk_mean", 4);
    let answer = rt.data::<f64>("global_mean");

    // 1. Acquisition task.
    rt.submit(
        TaskSpec::new("acquire").output(raw.id()),
        Constraints::new(),
        |ctx| {
            let samples: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.31).sin() + 2.0).collect();
            ctx.set_output(0, samples);
        },
    )?;

    // 2. Four parallel normalisation tasks over slices of the data.
    for (i, (chunk, mean)) in chunks.iter().zip(&means).enumerate() {
        rt.submit(
            TaskSpec::new(format!("normalize_{i}"))
                .input(raw.id())
                .output(chunk.id()),
            Constraints::new().memory_mb(64),
            move |ctx| {
                let all: &Vec<f64> = ctx.input(0);
                let n = all.len() / 4;
                let slice: Vec<f64> = all[i * n..(i + 1) * n].iter().map(|v| v / 2.0).collect();
                ctx.set_output(0, slice);
            },
        )?;
        // 3. A mean per chunk, each depending only on its chunk.
        rt.submit(
            TaskSpec::new(format!("mean_{i}"))
                .input(chunk.id())
                .output(mean.id()),
            Constraints::new(),
            |ctx| {
                let v: &Vec<f64> = ctx.input(0);
                ctx.set_output(0, v.iter().sum::<f64>() / v.len() as f64);
            },
        )?;
    }

    // 4. Final reduction.
    rt.submit(
        TaskSpec::new("reduce")
            .inputs(means.iter().map(|m| m.id()))
            .output(answer.id()),
        Constraints::new(),
        |ctx| {
            let total: f64 = (0..ctx.input_count()).map(|i| *ctx.input::<f64>(i)).sum();
            ctx.set_output(0, total / ctx.input_count() as f64);
        },
    )?;

    // `get` blocks until the dataflow produced the value.
    let mean = *rt.get(&answer)?;
    rt.wait_all()?;
    println!("global mean of processed samples: {mean:.6}");
    println!(
        "tasks executed: {} (submitted {})",
        rt.completed_count(),
        rt.submitted_count()
    );

    // Bonus: the same model can be cost-profiled and inspected as a
    // graph; here we just show the DOT export of an equivalent spec.
    let mut ap = continuum::dag::AccessProcessor::new();
    let d = ap.new_data("raw");
    let m = ap.new_data("mean");
    ap.register(TaskSpec::new("acquire").output(d))
        .expect("valid");
    ap.register(TaskSpec::new("reduce").input(d).output(m))
        .expect("valid");
    println!(
        "\nworkflow graph (DOT):\n{}",
        DotOptions::default().render(ap.graph())
    );
    Ok(())
}
