//! Telemetry: trace a local-runtime workflow and export it for
//! `chrome://tracing` / Perfetto.
//!
//! Runs a fan-out/fan-in pipeline on the threaded engine with a
//! [`TraceBuffer`] attached, then writes the captured task-lifecycle
//! events as Chrome `trace_event` JSON and prints a metrics summary.
//!
//! ```text
//! cargo run --example telemetry_demo     # writes target/telemetry_demo.trace.json
//! cargo run --example telemetry_demo -- out.json
//! ```

use continuum::dag::TaskSpec;
use continuum::platform::Constraints;
use continuum::runtime::{LocalConfig, LocalRuntime, TraceBuffer};
use continuum::telemetry::{chrome_trace, MetricsSnapshot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Default under target/ so demo artifacts never land in the source
    // tree (they are build products, and target/ is already ignored).
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        std::fs::create_dir_all("target").ok();
        "target/telemetry_demo.trace.json".to_string()
    });

    // Attach a collecting recorder to the runtime. The buffer half
    // accumulates events; the handle half goes into the engine config.
    let (buffer, telemetry) = TraceBuffer::collector();
    {
        let rt = LocalRuntime::new(LocalConfig {
            workers: 4,
            telemetry,
            ..LocalConfig::default()
        });

        // A fan-out/fan-in Monte Carlo estimate of π: 8 independent
        // sampling tasks, one reduction.
        let counts = rt.data_batch::<u64>("hits", 8);
        let estimate = rt.data::<f64>("pi");
        const SAMPLES: u64 = 200_000;
        for (i, c) in counts.iter().enumerate() {
            rt.submit(
                TaskSpec::new(format!("sample_{i}")).output(c.id()),
                Constraints::new(),
                move |ctx| {
                    // Cheap deterministic quasi-random points.
                    let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1);
                    let mut hits = 0u64;
                    for _ in 0..SAMPLES {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let x = (state >> 11) as f64 / (1u64 << 53) as f64;
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let y = (state >> 11) as f64 / (1u64 << 53) as f64;
                        if x * x + y * y <= 1.0 {
                            hits += 1;
                        }
                    }
                    ctx.set_output(0, hits);
                },
            )?;
        }
        rt.submit(
            TaskSpec::new("reduce")
                .inputs(counts.iter().map(|c| c.id()))
                .output(estimate.id()),
            Constraints::new(),
            |ctx| {
                let hits: u64 = (0..ctx.input_count()).map(|i| *ctx.input::<u64>(i)).sum();
                ctx.set_output(0, 4.0 * hits as f64 / (8 * SAMPLES) as f64);
            },
        )?;
        println!("π ≈ {:.4}", *rt.get(&estimate)?);
        rt.wait_all()?;
    } // dropping the runtime closes the run span

    let events = buffer.events();
    std::fs::write(&out_path, chrome_trace(&events))?;
    println!(
        "wrote {} events to {out_path} (open in chrome://tracing or Perfetto)\n",
        events.len()
    );
    println!("{}", MetricsSnapshot::from_events(&events));
    Ok(())
}
