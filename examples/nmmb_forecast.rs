//! An NMMB-Monarch-like weather forecast: the paper's Fig. 1 inference
//! cycle in one DAG — data preparation (HDA), a rigid multi-node MPI
//! simulation (HPC) and post-processing analytics, repeated per
//! simulated day with restart-file dependencies.
//!
//! ```text
//! cargo run --release --example nmmb_forecast
//! ```

use continuum::platform::{NodeSpec, PlatformBuilder};
use continuum::runtime::{FifoScheduler, SimOptions, SimRuntime};
use continuum::sim::FaultPlan;
use continuum::workflows::NmmbWorkload;

fn main() {
    let platform = PlatformBuilder::new()
        .cluster("mn4", 6, NodeSpec::hpc(48, 96_000))
        .build();
    let mut last_trace = None;

    for (label, parallel) in [
        ("original driver (sequential init scripts)", false),
        ("PyCOMPSs-style port (parallel init scripts)", true),
    ] {
        let workload = NmmbWorkload::new()
            .days(5)
            .init_scripts(12)
            .init_script_s(90.0)
            .mpi_s(1_800.0)
            .mpi_nodes(4)
            .parallel_init(parallel)
            .build();
        let stats = workload.stats();
        let (report, trace) = SimRuntime::new(platform.clone(), SimOptions::default())
            .run_traced(&workload, &mut FifoScheduler::new(), &FaultPlan::new())
            .expect("forecast completes");
        last_trace = Some(trace);
        println!(
            "{label}\n  tasks {}, critical path {:.0} s, makespan {:.0} s \
             ({:.2} h), mean utilisation {:.0}%\n",
            stats.tasks,
            stats.critical_path_s,
            report.makespan_s,
            report.makespan_s / 3600.0,
            report.mean_utilisation() * 100.0
        );
    }
    println!(
        "the PyCOMPSs port overlaps the twelve 90 s init scripts that the original \
         driver runs back-to-back, shortening every simulated day (paper §VI-A)"
    );
    if let Some(trace) = last_trace {
        println!("\nexecution gantt of the parallel-init run (# = busy):");
        print!("{}", trace.gantt(6, 72));
    }
}
