//! `continuum` — a holistic, task-based workflow environment for
//! advanced cyberinfrastructure platforms.
//!
//! This crate is the facade of the workspace: it re-exports every
//! subsystem so applications can depend on a single crate. See the
//! member crates for the full documentation:
//!
//! * [`dag`] — tasks, data versioning, the access processor and graph
//!   analyses;
//! * [`platform`] — resources, constraints, networks, energy and
//!   elasticity models of the computing continuum;
//! * [`storage`] — the SOI/SRI storage interface with key-value
//!   (Hecuba-like) and active (dataClay-like) backends;
//! * [`sim`] — the discrete-event simulation toolkit;
//! * [`runtime`] — the execution engines: the threaded
//!   [`runtime::LocalRuntime`] and the simulated
//!   [`runtime::SimRuntime`], plus pluggable schedulers;
//! * [`agents`] — autonomous per-device agents for fog-to-cloud
//!   deployments with offloading and churn recovery;
//! * [`dislib`] — distributed machine learning (K-means, linear
//!   regression, PCA, scaling) over the runtime;
//! * [`workflows`] — synthetic scientific workload generators (GWAS
//!   campaign, NMMB weather pipeline, generic patterns);
//! * [`telemetry`] — engine-independent tracing and metrics: task
//!   lifecycle events from either engine, Chrome `trace_event` and
//!   Paraver exporters, metric snapshots.
//!
//! # Quickstart
//!
//! ```
//! use continuum::runtime::{LocalRuntime, LocalConfig};
//! use continuum::dag::TaskSpec;
//! use continuum::platform::Constraints;
//!
//! let rt = LocalRuntime::new(LocalConfig::with_workers(2));
//! let x = rt.data::<i64>("x");
//! rt.submit(TaskSpec::new("answer").output(x.id()), Constraints::new(), |ctx| {
//!     ctx.set_output(0, 42i64)
//! })?;
//! assert_eq!(*rt.get(&x)?, 42);
//! # Ok::<(), continuum::runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]

pub use continuum_agents as agents;
pub use continuum_dag as dag;
pub use continuum_dislib as dislib;
pub use continuum_platform as platform;
pub use continuum_runtime as runtime;
pub use continuum_sim as sim;
pub use continuum_storage as storage;
pub use continuum_telemetry as telemetry;
pub use continuum_workflows as workflows;
