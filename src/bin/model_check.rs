//! `model_check` — explore the runtime's concurrency protocols, both as
//! explicit-state models (`continuum_analyze::conc`) and — when built
//! with `--features conc-instrument` — as **real code** run under the
//! DPOR schedule-exploration scheduler (`continuum_analyze::conc::sched`
//! over `continuum_runtime::conc_targets`).
//!
//! ```text
//! model_check [--smoke] [--json] [--only SUBSTR]
//! model_check --replay TARGET SCHEDULE      # e.g. --replay sched::oneshot 1,0,0,1
//! ```
//!
//! Every run covers the correct protocols *and* the planted-bug
//! variants: a green run therefore proves both that the protocols
//! verify and that the harness still detects the historical failure
//! modes. `--json` emits one machine-readable report (used by CI and
//! the CLI tests), including the DPOR-vs-naive pruning ratio.
//!
//! Exit codes (stable, asserted by `tests/model_check_cli.rs`):
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | all targets verified clean and all planted bugs detected |
//! | 1    | usage or harness error (bad flags, unknown replay target) |
//! | 2    | a violation in a target expected clean (or budget exhausted before the schedule space — an unproven target is not a clean one) |
//! | 3    | a planted bug was **not** detected: the checker itself has regressed and no green result can be trusted |
//!
//! When both conditions occur, 3 wins: a harness that misses planted
//! bugs invalidates every other verdict in the run.
//!
//! The hidden flags `--demo-violation` / `--demo-missed-plant` append a
//! deliberately misclassified target so the exit paths themselves stay
//! testable.

use continuum_analyze::conc::{
    explore, DequeModel, DequeVariant, Model, ParkWakeModel, ParkWakeVariant, SleeperModel,
    SleeperVariant, Violation,
};

#[cfg(feature = "conc-instrument")]
use continuum_analyze::conc::sched::{
    explore_sched, format_schedule, parse_schedule, replay_schedule, Expect, ExploreOpts, Pruning,
    SchedViolation,
};
#[cfg(feature = "conc-instrument")]
use continuum_runtime::conc_targets::sched_targets;

const EXIT_CLEAN: i32 = 0;
const EXIT_USAGE: i32 = 1;
const EXIT_VIOLATION: i32 = 2;
const EXIT_PLANT_MISSED: i32 = 3;

const MODEL_MAX_STATES: usize = 10_000_000;

/// Per-target outcome, shared by text and JSON rendering.
struct Report {
    name: String,
    /// `"model"` (explicit-state) or `"sched"` (real-code exploration).
    kind: &'static str,
    /// `"clean"` (must verify) or `"planted"` (must be detected).
    expect: &'static str,
    /// `"ok"`, `"detected"`, `"violation"`, `"missed"`, or `"skipped"`.
    status: &'static str,
    /// Violation description or skip reason.
    detail: Option<String>,
    /// Replayable witness schedule (sched targets only).
    witness: Option<String>,
    counters: Vec<(&'static str, u64)>,
}

impl Report {
    fn exit_contribution(&self) -> i32 {
        match self.status {
            "violation" => EXIT_VIOLATION,
            "missed" => EXIT_PLANT_MISSED,
            _ => EXIT_CLEAN,
        }
    }
}

/// Measured DPOR-vs-naive comparison on one sched target.
struct PruningReport {
    target: String,
    dpor_schedules: u64,
    naive_schedules: u64,
}

fn run_model<M: Model>(name: &str, model: &M) -> Report {
    match explore(model, MODEL_MAX_STATES) {
        Ok(r) => Report {
            name: name.to_string(),
            kind: "model",
            expect: "clean",
            status: "ok",
            detail: None,
            witness: None,
            counters: vec![
                ("states", r.states as u64),
                ("terminals", r.terminals as u64),
                ("max_depth", r.max_depth as u64),
            ],
        },
        Err(v) => Report {
            name: name.to_string(),
            kind: "model",
            expect: "clean",
            status: "violation",
            detail: Some(v.to_string()),
            witness: None,
            counters: Vec::new(),
        },
    }
}

/// Runs a planted-bug model; `detected` decides whether the violation
/// it produced is the planted one.
fn run_planted_model<M: Model>(
    name: &str,
    model: &M,
    detected: impl Fn(&Violation) -> bool,
) -> Report {
    let (status, detail) = match explore(model, MODEL_MAX_STATES) {
        Err(v) if detected(&v) => ("detected", Some(v.to_string())),
        Err(v) => ("missed", Some(format!("wrong violation kind: {v}"))),
        Ok(_) => (
            "missed",
            Some("explored clean; planted bug not found".to_string()),
        ),
    };
    Report {
        name: name.to_string(),
        kind: "model",
        expect: "planted",
        status,
        detail,
        witness: None,
        counters: Vec::new(),
    }
}

fn model_reports(smoke: bool, demo_violation: bool, demo_missed: bool) -> Vec<Report> {
    let (workers, items, deque_items, thieves) = if smoke { (2, 2, 3, 2) } else { (3, 2, 4, 2) };
    let (pw_workers, pw_polls) = if smoke { (2, 2) } else { (2, 4) };
    let mut out = Vec::new();

    out.push(run_model(
        &format!("sleeper[w={workers},items={items}]"),
        &SleeperModel {
            workers,
            items,
            variant: SleeperVariant::Correct,
        },
    ));
    out.push(run_model(
        &format!("deque[items={deque_items},thieves={thieves},attempts=2]"),
        &DequeModel {
            items: deque_items,
            thieves,
            attempts: 2,
            variant: DequeVariant::Correct,
        },
    ));
    out.push(run_model(
        &format!("parkwake[w={pw_workers},polls={pw_polls}]"),
        &ParkWakeModel {
            workers: pw_workers,
            polls: pw_polls,
            variant: ParkWakeVariant::Correct,
        },
    ));

    out.push(run_planted_model(
        "sleeper[no-recheck]",
        &SleeperModel {
            workers: 2,
            items: 2,
            variant: SleeperVariant::NoRecheck,
        },
        |v| matches!(v, Violation::Deadlock { .. }),
    ));
    out.push(run_planted_model(
        "deque[forget-remove]",
        &DequeModel {
            items: 2,
            thieves: 1,
            attempts: 1,
            variant: DequeVariant::ForgetRemove,
        },
        |v| matches!(v, Violation::Invariant { .. }),
    ));
    out.push(run_planted_model(
        "parkwake[drop-running-wake]",
        &ParkWakeModel {
            workers: 1,
            polls: 1,
            variant: ParkWakeVariant::DropRunningWake,
        },
        |v| matches!(v, Violation::Deadlock { .. }),
    ));

    // Test hooks: misclassified targets exercising the exit paths.
    if demo_violation {
        out.push(run_model(
            "demo[planted-as-clean]",
            &SleeperModel {
                workers: 2,
                items: 1,
                variant: SleeperVariant::NoRecheck,
            },
        ));
    }
    if demo_missed {
        out.push(run_planted_model(
            "demo[correct-as-planted]",
            &SleeperModel {
                workers: 2,
                items: 1,
                variant: SleeperVariant::Correct,
            },
            |_| true,
        ));
    }
    out
}

#[cfg(feature = "conc-instrument")]
fn sched_reports(smoke: bool) -> (Vec<Report>, Option<PruningReport>) {
    let opts = ExploreOpts {
        max_schedules: if smoke { 20_000 } else { 200_000 },
        pruning: Pruning::Dpor,
    };
    let mut out = Vec::new();
    let mut pruning = None;

    for target in sched_targets() {
        let result = explore_sched(&target, &opts);
        let counters = vec![
            ("schedules", result.stats.schedules),
            ("redundant", result.stats.redundant),
            ("steps", result.stats.steps),
            ("max_depth", result.stats.max_depth as u64),
        ];
        let (status, detail, witness) = match (target.expect, result.violation) {
            (Expect::Clean, None) => ("ok", None, None),
            (Expect::Clean, Some(v)) => {
                let w = v.witness().map(|w| format_schedule(w));
                ("violation", Some(v.to_string()), w)
            }
            (Expect::Race, Some(v @ SchedViolation::Race { .. })) => {
                let w = v.witness().map(|w| format_schedule(w));
                ("detected", Some(v.to_string()), w)
            }
            (Expect::Race, Some(v)) => ("missed", Some(format!("wrong violation kind: {v}")), None),
            (Expect::Race, None) => (
                "missed",
                Some("explored clean; planted race not found".to_string()),
                None,
            ),
        };
        out.push(Report {
            name: target.name.to_string(),
            kind: "sched",
            expect: match target.expect {
                Expect::Clean => "clean",
                Expect::Race => "planted",
            },
            status,
            detail,
            witness,
            counters,
        });

        // Measure the pruning ratio once, on the first clean target.
        if pruning.is_none() && target.expect == Expect::Clean {
            let naive = explore_sched(
                &target,
                &ExploreOpts {
                    max_schedules: opts.max_schedules,
                    pruning: Pruning::Naive,
                },
            );
            if naive.violation.is_none() {
                pruning = Some(PruningReport {
                    target: target.name.to_string(),
                    dpor_schedules: out
                        .last()
                        .and_then(|r| r.counters.first())
                        .map_or(0, |&(_, n)| n),
                    naive_schedules: naive.stats.schedules,
                });
            }
        }
    }
    (out, pruning)
}

#[cfg(not(feature = "conc-instrument"))]
fn sched_reports(_smoke: bool) -> (Vec<Report>, Option<PruningReport>) {
    (
        vec![Report {
            name: "sched::*".to_string(),
            kind: "sched",
            expect: "clean",
            status: "skipped",
            detail: Some(
                "instrumentation not compiled in; rebuild with --features conc-instrument"
                    .to_string(),
            ),
            witness: None,
            counters: Vec::new(),
        }],
        None,
    )
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_json(reports: &[Report], pruning: Option<&PruningReport>, smoke: bool, exit: i32) {
    let mut targets = Vec::new();
    for r in reports {
        let mut fields = vec![
            format!("\"name\":{}", json_string(&r.name)),
            format!("\"kind\":{}", json_string(r.kind)),
            format!("\"expect\":{}", json_string(r.expect)),
            format!("\"status\":{}", json_string(r.status)),
        ];
        for &(k, v) in &r.counters {
            fields.push(format!("\"{k}\":{v}"));
        }
        if let Some(d) = &r.detail {
            fields.push(format!("\"detail\":{}", json_string(d)));
        }
        if let Some(w) = &r.witness {
            fields.push(format!("\"witness\":{}", json_string(w)));
        }
        targets.push(format!("{{{}}}", fields.join(",")));
    }
    let pruning_json = match pruning {
        Some(p) => {
            let ratio = p.naive_schedules as f64 / p.dpor_schedules.max(1) as f64;
            format!(
                "{{\"target\":{},\"dpor_schedules\":{},\"naive_schedules\":{},\"ratio\":{ratio:.2}}}",
                json_string(&p.target),
                p.dpor_schedules,
                p.naive_schedules
            )
        }
        None => "null".to_string(),
    };
    println!(
        "{{\"smoke\":{smoke},\"targets\":[{}],\"pruning\":{pruning_json},\"exit_code\":{exit}}}",
        targets.join(",")
    );
}

fn render_text(reports: &[Report], pruning: Option<&PruningReport>) {
    for r in reports {
        let counters = r
            .counters
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        let verdict = match r.status {
            "ok" => "OK",
            "detected" => "OK — planted bug detected",
            "violation" => "FAILED",
            "missed" => "FAILED — planted bug NOT detected",
            _ => "SKIPPED",
        };
        let mut line = format!("{}: {verdict}", r.name);
        if !counters.is_empty() {
            line.push_str(&format!(" — {counters}"));
        }
        if let Some(d) = &r.detail {
            line.push_str(&format!(" — {d}"));
        }
        if r.status == "violation" || r.status == "missed" {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    if let Some(p) = pruning {
        println!(
            "pruning[{}]: dpor {} vs naive {} schedules ({:.2}x)",
            p.target,
            p.dpor_schedules,
            p.naive_schedules,
            p.naive_schedules as f64 / p.dpor_schedules.max(1) as f64
        );
    }
}

#[cfg(feature = "conc-instrument")]
fn run_replay(target_name: &str, schedule_str: &str) -> i32 {
    let Some(target) = sched_targets().into_iter().find(|t| t.name == target_name) else {
        eprintln!("unknown sched target {target_name:?}; known targets:");
        for t in sched_targets() {
            eprintln!("  {} — {}", t.name, t.about);
        }
        return EXIT_USAGE;
    };
    let schedule = match parse_schedule(schedule_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad schedule: {e}");
            return EXIT_USAGE;
        }
    };
    let report = replay_schedule(&target, &schedule);
    for step in &report.steps {
        println!("{step}");
    }
    match report.violation {
        Some(v) => {
            println!("reproduced: {v}");
            EXIT_VIOLATION
        }
        None => {
            println!("schedule completed clean");
            EXIT_CLEAN
        }
    }
}

#[cfg(not(feature = "conc-instrument"))]
fn run_replay(_target_name: &str, _schedule_str: &str) -> i32 {
    eprintln!("--replay needs the sched targets; rebuild with --features conc-instrument");
    EXIT_USAGE
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json = false;
    let mut only: Option<String> = None;
    let mut demo_violation = false;
    let mut demo_missed = false;
    let mut replay: Option<(String, String)> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => json = true,
            "--demo-violation" => demo_violation = true,
            "--demo-missed-plant" => demo_missed = true,
            "--only" => {
                i += 1;
                match args.get(i) {
                    Some(s) => only = Some(s.clone()),
                    None => {
                        eprintln!("--only needs a substring argument");
                        std::process::exit(EXIT_USAGE);
                    }
                }
            }
            "--replay" => {
                if i + 2 >= args.len() {
                    eprintln!("--replay needs TARGET and SCHEDULE arguments");
                    std::process::exit(EXIT_USAGE);
                }
                replay = Some((args[i + 1].clone(), args[i + 2].clone()));
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other:?}; see the doc comment for usage");
                std::process::exit(EXIT_USAGE);
            }
        }
        i += 1;
    }

    if let Some((target, schedule)) = replay {
        std::process::exit(run_replay(&target, &schedule));
    }

    let mut reports = model_reports(smoke, demo_violation, demo_missed);
    let (sched, pruning) = sched_reports(smoke);
    reports.extend(sched);
    if let Some(pat) = &only {
        reports.retain(|r| r.name.contains(pat.as_str()));
    }

    // 3 (harness regressed) dominates 2 (violation found) dominates 0.
    let exit = reports
        .iter()
        .map(Report::exit_contribution)
        .max()
        .unwrap_or(EXIT_CLEAN);

    if json {
        render_json(&reports, pruning.as_ref(), smoke, exit);
    } else {
        render_text(&reports, pruning.as_ref());
    }
    std::process::exit(exit);
}
