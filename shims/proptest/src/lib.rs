//! Offline drop-in stand-in for `proptest`.
//!
//! Provides the macro surface this workspace uses (`proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`) and the strategy
//! combinators behind it (`Just`, ranges, tuples, `prop_map`,
//! `collection::vec`, `option::of`). Inputs are drawn from a generator
//! seeded deterministically per test (hash of the test's module path and
//! name), so runs are reproducible. Failing cases are reported with
//! their case number; there is no shrinking.

use rand::prelude::*;
use std::ops::Range;

/// Per-test configuration, mirroring `proptest::test_runner::TestRunner`
/// knobs the workspace touches.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a stable hash of the test's full name.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a, stable across runs and platforms.
        let mut hash = 0xcbf29ce484222325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy trait object.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::UniformSample + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_uniform(self.start, self.end, rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Weighted choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(
            options.iter().any(|(w, _)| *w > 0),
            "prop_oneof! requires a positive total weight"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (weight, strategy) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Option`s of `inner` values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Runs a block of property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// running `body` against `ProptestConfig::cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( @cfg($cfg:expr) ) => {};
    ( @cfg($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (($weight) as u32, $crate::boxed($strategy)) ),+ ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (1u32, $crate::boxed($strategy)) ),+ ])
    };
}

/// `assert!` under a property-test name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Kind {
        A,
        B(u8),
    }

    fn kind_strategy() -> impl Strategy<Value = Kind> {
        prop_oneof![
            2 => Just(Kind::A),
            1 => (0u8..10).prop_map(Kind::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in crate::collection::vec(0u8..255, 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_produces_both_shapes(ks in crate::collection::vec(kind_strategy(), 64..65)) {
            prop_assert!(ks.contains(&Kind::A));
            prop_assert!(ks.iter().any(|k| matches!(k, Kind::B(_))));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
