//! Offline drop-in stand-in for the `rand` crate surface this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but the workspace only
//! relies on seeded determinism and distribution quality, not on exact
//! reference values.

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: Into<Range<T>>,
        Self: Sized,
    {
        let range = range.into();
        T::sample_uniform(range.start, range.end, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one standard-distribution sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable by [`Rng::gen_range`].
pub trait UniformSample: Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformSample for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire-style scaling: multiply-shift maps 64 random
                // bits onto the span with negligible bias for the span
                // sizes used here.
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + offset) as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

impl UniformSample for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f32::sample_standard(rng) * (high - low)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, UniformSample};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_uniform(0, i + 1, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_uniform(0, self.len(), rng)])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
