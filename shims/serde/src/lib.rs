//! Offline drop-in stand-in for the `serde` facade.
//!
//! The real `serde` crate cannot be fetched in this build environment
//! (the registry mirror is unreachable and nothing is vendored), so this
//! workspace-local shim provides the same *spelling* — `serde::{Serialize,
//! Deserialize}`, `#[derive(Serialize, Deserialize)]` — backed by a small
//! JSON value model instead of serde's visitor machinery. Types that
//! derive the traits get real, working JSON round-trips via
//! [`to_string`]/[`from_str`].
//!
//! Scope is intentionally limited to what this workspace uses: plain
//! structs (named, tuple, unit), enums with unit/tuple/struct variants,
//! and the std types implemented below. `#[serde(...)]` attributes and
//! generic deriving types are unsupported.

pub mod json;

pub use json::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can convert itself into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_json_value(&self) -> Value;
}

/// A type that can reconstruct itself from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, returning `None` on shape mismatch.
    fn from_json_value(value: &Value) -> Option<Self>;
}

/// Serializes a value to a compact JSON string (deterministic: object
/// keys keep declaration order).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_json_value().to_string()
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns the parse error, or a synthetic one if the JSON shape does
/// not match `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, json::ParseError> {
    let value = json::parse(input)?;
    T::from_json_value(&value).ok_or_else(|| json::ParseError {
        offset: 0,
        message: format!("value does not match {}", std::any::type_name::<T>()),
    })
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Option<Self> {
        Some(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Option<Self> {
        value.as_bool()
    }
}

macro_rules! impl_serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_json_value(value: &Value) -> Option<Self> {
                <$ty>::try_from(value.as_u64()?).ok()
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $ty {
            fn from_json_value(value: &Value) -> Option<Self> {
                <$ty>::try_from(value.as_i64()?).ok()
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_json_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_json_value(value: &Value) -> Option<Self> {
        match value {
            Value::Str(s) => s.parse().ok(),
            _ => value.as_u64().map(u128::from),
        }
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Option<Self> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Option<Self> {
        value.as_f64().map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(value: &Value) -> Option<Self> {
        let mut chars = value.as_str()?.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Some(c),
            _ => None,
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Option<Self> {
        value.as_str().map(str::to_string)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Option<Self> {
        match value {
            Value::Null => Some(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Option<Self> {
        value.as_arr()?.iter().map(T::from_json_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(value: &Value) -> Option<Self> {
        T::from_json_value(value).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Arr(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(value: &Value) -> Option<Self> {
        match value.as_arr()? {
            [a, b] => Some((A::from_json_value(a)?, B::from_json_value(b)?)),
            _ => None,
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(value: &Value) -> Option<Self> {
        match value.as_arr()? {
            [a, b, c] => Some((
                A::from_json_value(a)?,
                B::from_json_value(b)?,
                C::from_json_value(c)?,
            )),
            _ => None,
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        // Deterministic output: sort entries by serialized key text.
        let mut items: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Arr(vec![k.to_json_value(), v.to_json_value()]))
            .collect();
        items.sort_by_key(Value::to_string);
        Value::Arr(items)
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_json_value(value: &Value) -> Option<Self> {
        value
            .as_arr()?
            .iter()
            .map(<(K, V)>::from_json_value)
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_json_value(value: &Value) -> Option<Self> {
        value
            .as_arr()?
            .iter()
            .map(<(K, V)>::from_json_value)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_json_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_json_value).collect();
        items.sort_by_key(Value::to_string);
        Value::Arr(items)
    }
}

impl<T> Deserialize for std::collections::HashSet<T>
where
    T: Deserialize + std::hash::Hash + Eq,
{
    fn from_json_value(value: &Value) -> Option<Self> {
        value.as_arr()?.iter().map(T::from_json_value).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T> Deserialize for std::collections::BTreeSet<T>
where
    T: Deserialize + Ord,
{
    fn from_json_value(value: &Value) -> Option<Self> {
        value.as_arr()?.iter().map(T::from_json_value).collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_json_value(&self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn from_json_value(value: &Value) -> Option<Self> {
        let secs = value.as_f64()?;
        (secs >= 0.0 && secs.is_finite()).then(|| std::time::Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impls_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v);
        assert_eq!(text, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(to_string(&-5i32), "-5");
        let back: i32 = from_str("-5").unwrap();
        assert_eq!(back, -5);
        let f: f64 = from_str("2.5").unwrap();
        assert!((f - 2.5).abs() < 1e-12);
    }

    #[test]
    fn maps_round_trip_deterministically() {
        let mut m = std::collections::HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(to_string(&m), "[[\"a\",1],[\"b\",2]]");
        let back: std::collections::HashMap<String, u32> = from_str(&to_string(&m)).unwrap();
        assert_eq!(back, m);
    }
}
