//! A small JSON value model with a deterministic writer and a strict
//! recursive-descent parser. Object members preserve insertion order so
//! serialization is byte-stable across runs.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negative parses as [`Value::U64`]).
    I64(i64),
    /// Finite float. Non-finite floats serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a u64 (accepts integral, in-range numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an i64 (accepts integral, in-range numbers).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an f64 (any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Writes the value as compact JSON into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::F64(f) => {
                use fmt::Write;
                if f.is_finite() {
                    // Rust's shortest round-trip float formatting; force a
                    // decimal point so the value re-parses as a float.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> ParseError {
    ParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "unexpected token"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| err(start, "invalid utf-8"))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected value"));
    }
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let v = Value::Obj(vec![
            ("a".into(), Value::F64(1.5)),
            ("b".into(), Value::Arr(vec![Value::U64(1), Value::Null])),
            ("s".into(), Value::Str("x\"\n".into())),
            ("neg".into(), Value::I64(-3)),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Value::F64(2.0).to_string(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Value::F64(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}
