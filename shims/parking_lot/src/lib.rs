//! Offline drop-in stand-in for `parking_lot`: `Mutex`, `RwLock`, and
//! `Condvar` with parking_lot's ergonomics (no `Result` from `lock`,
//! `Condvar::wait(&mut guard)`), backed by `std::sync`. Poisoning is
//! transparently ignored, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it
/// out and back without unsafe code.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn inner(&self) -> &sync::MutexGuard<'a, T> {
        self.guard
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }

    fn inner_mut(&mut self) -> &mut sync::MutexGuard<'a, T> {
        self.guard
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable working with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification, reacquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Waits with a timeout; returns `true` if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.guard.take().expect("guard present before wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        result.timed_out()
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_coordinate_threads() {
        let shared = Arc::new((Mutex::new(0u32), Condvar::new()));
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let (lock, cv) = &*shared;
                *lock.lock() = 10;
                cv.notify_all();
            })
        };
        let (lock, cv) = &*shared;
        let mut guard = lock.lock();
        while *guard != 10 {
            cv.wait(&mut guard);
        }
        drop(guard);
        worker.join().unwrap();
        assert_eq!(*lock.lock(), 10);
    }

    #[test]
    fn wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        assert!(cv.wait_for(&mut guard, Duration::from_millis(10)));
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let lock = RwLock::new(5u32);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }
}
