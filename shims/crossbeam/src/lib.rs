//! Offline drop-in stand-in for the `crossbeam` crate surface this
//! workspace uses: `channel::{unbounded, bounded, Sender, Receiver}`.
//! Backed by `std::sync::mpsc`, whose `Sender` has been `Sync` since
//! Rust 1.72, so the sharing patterns crossbeam enables still work.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are gone.
        ///
        /// # Errors
        ///
        /// [`SendError`] returning the unsent message.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// A blocking iterator over received messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Creates a "bounded" channel. The std backing is unbounded; the
    /// capacity is accepted for API compatibility, which is safe for the
    /// workspace's uses (bounds there only limit memory, not semantics).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(41u32).unwrap();
            tx.send(1).unwrap();
        });
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5u8).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }
}
