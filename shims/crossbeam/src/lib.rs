//! Offline drop-in stand-in for the `crossbeam` crate surface this
//! workspace uses: `channel::{unbounded, bounded, Sender, Receiver}`
//! and `deque::{Worker, Stealer, Injector, Steal}`. Channels are
//! backed by `std::sync::mpsc`, whose `Sender` has been `Sync` since
//! Rust 1.72, so the sharing patterns crossbeam enables still work;
//! deques are backed by mutex-guarded ring buffers, preserving the
//! crossbeam semantics (owner pops one end, thieves steal the other,
//! contended steals report `Retry`) without the lock-free unsafe code.

/// Test hooks for deterministic-interleaving and chaos testing.
///
/// The deque operations call [`hooks::yield_point`] at the entry of
/// every critical section. By default this is a single relaxed atomic
/// load; concurrency tests (`continuum-analyze`'s chaos stress tests)
/// enable chaos mode to insert scheduler yields at exactly the points
/// where a preemption widens the push/steal race windows, driving the
/// thread interleaving through far more schedules per run than the OS
/// would produce naturally.
pub mod hooks {
    use std::sync::atomic::{AtomicBool, Ordering};

    static CHAOS: AtomicBool = AtomicBool::new(false);

    /// Globally enables or disables chaos yields. Affects every deque
    /// in the process; intended for dedicated stress-test binaries or
    /// serial `#[test]`s, not production.
    pub fn set_chaos(enabled: bool) {
        CHAOS.store(enabled, Ordering::SeqCst);
    }

    /// Returns `true` if chaos mode is on.
    pub fn chaos_enabled() -> bool {
        CHAOS.load(Ordering::Relaxed)
    }

    /// The controllable yield point: a no-op unless chaos mode is on.
    #[inline]
    pub fn yield_point() {
        if CHAOS.load(Ordering::Relaxed) {
            std::thread::yield_now();
        }
    }

    /// Scheduler-controlled execution: the channel through which a
    /// deterministic exploration scheduler (see
    /// `continuum_analyze::conc::sched`) observes and serializes every
    /// synchronization operation of a set of *registered* threads.
    ///
    /// The contract:
    ///
    /// * A controller is installed process-globally with [`install`];
    ///   threads taking part in a controlled scenario register with
    ///   [`register_thread`]. Unregistered threads (the rest of the
    ///   test process) pass through every hook untouched, so
    ///   exploration can run inside an ordinary multi-threaded
    ///   `cargo test` process.
    /// * Instrumented primitives report each operation through
    ///   [`sync_op`] (or fetch the controller with
    ///   [`controller_for_current`] when they need the split
    ///   grant/block protocol, e.g. a condvar wait that must release
    ///   its mutex between the two). The controller blocks the calling
    ///   thread until the scheduler grants the operation, which is how
    ///   a single schedule choice sequences real threads.
    /// * The fast path — no controller installed — is one relaxed
    ///   atomic load.
    pub mod sched {
        use std::cell::Cell;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Arc, Mutex};

        /// One synchronization operation, as reported by an
        /// instrumented primitive *before* it executes.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub enum SyncOp {
            /// Mutex acquisition (blocks until the scheduler's
            /// ownership model says the mutex is free).
            MutexLock,
            /// Mutex release.
            MutexUnlock,
            /// Condvar wait; atomically releases the mutex identified
            /// by `mutex` (its object id) and blocks until notified
            /// *and* granted the relock.
            CondvarWait {
                /// Object id of the mutex the wait releases.
                mutex: usize,
            },
            /// Condvar notify-one (FIFO waiter selection under the
            /// controller, for determinism).
            CondvarNotifyOne,
            /// Condvar notify-all.
            CondvarNotifyAll,
            /// Atomic load (acquire edge from prior writers).
            AtomicLoad,
            /// Atomic store (release edge to later readers).
            AtomicStore,
            /// Atomic read-modify-write (acquire + release).
            AtomicRmw,
            /// `thread::park` equivalent; consumes a pending unpark
            /// token or blocks until one arrives.
            Park,
            /// Unpark of the registered thread `thread` (its tid).
            Unpark {
                /// Registered tid of the thread being unparked.
                thread: usize,
            },
            /// Plain (non-atomic, unsynchronized) read of a data cell
            /// — fodder for the happens-before race detector.
            RaceRead,
            /// Plain write of a data cell.
            RaceWrite,
            /// A critical-section entry that is serialized but carries
            /// no ordering semantics of its own (the shim deque's
            /// lock-protected windows).
            Yield,
        }

        /// An operation plus the identity of the object it targets
        /// (address-derived, stable for the lifetime of the scenario).
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub struct OpEvent {
            /// What the thread is about to do.
            pub op: SyncOp,
            /// Which object it does it to.
            pub obj: usize,
        }

        /// The scheduler's answer to a reported operation.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub enum Grant {
            /// Execute the operation and run to the next sched point.
            Proceed,
            /// The operation cannot complete yet (park without a
            /// token, condvar wait): call
            /// [`Controller::block_point`] and wait to be resumed.
            Block,
            /// The exploration is being aborted (a deadlock witness
            /// was found, or the budget ran out mid-run): unwind the
            /// scenario thread via [`killed`] so it can be joined
            /// instead of leaked.
            Die,
        }

        /// Panic payload that identifies a controller-initiated kill
        /// (an aborted run), as opposed to a genuine scenario panic.
        pub const KILL_MSG: &str = "continuum-sched: scenario thread killed by exploration abort";

        /// Unwinds the calling scenario thread with the recognizable
        /// [`KILL_MSG`] payload. The exploration harness catches it and
        /// records the thread as killed, not panicked.
        pub fn killed() -> ! {
            std::panic::panic_any(KILL_MSG)
        }

        /// The exploration scheduler's view of controlled threads.
        pub trait Controller: Send + Sync {
            /// Reports that registered thread `tid` is about to
            /// perform `ev`; blocks until the scheduler grants it.
            fn sched_point(&self, tid: usize, ev: OpEvent) -> Grant;

            /// Parks `tid` at a blocking operation until the
            /// scheduler resumes it (the second half of a
            /// [`Grant::Block`]).
            fn block_point(&self, tid: usize);
        }

        static ACTIVE: AtomicBool = AtomicBool::new(false);
        static CONTROLLER: Mutex<Option<Arc<dyn Controller>>> = Mutex::new(None);

        thread_local! {
            static TID: Cell<Option<usize>> = const { Cell::new(None) };
        }

        /// Installs `controller` process-globally. Only registered
        /// threads are affected; the installer must serialize
        /// explorations itself (one controller at a time).
        pub fn install(controller: Arc<dyn Controller>) {
            *CONTROLLER
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(controller);
            ACTIVE.store(true, Ordering::SeqCst);
        }

        /// Removes the installed controller.
        pub fn uninstall() {
            ACTIVE.store(false, Ordering::SeqCst);
            *CONTROLLER
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        }

        /// Registers the calling thread as controlled scenario thread
        /// `tid`.
        pub fn register_thread(tid: usize) {
            TID.with(|t| t.set(Some(tid)));
        }

        /// Deregisters the calling thread.
        pub fn deregister_thread() {
            TID.with(|t| t.set(None));
        }

        /// The calling thread's registered tid, if any.
        pub fn current_tid() -> Option<usize> {
            TID.with(|t| t.get())
        }

        /// The installed controller and the caller's tid — `None`
        /// unless a controller is active *and* this thread is
        /// registered. Primitives needing the split grant/block
        /// protocol drive the [`Controller`] directly through this.
        #[inline]
        pub fn controller_for_current() -> Option<(Arc<dyn Controller>, usize)> {
            if !ACTIVE.load(Ordering::Relaxed) {
                return None;
            }
            let tid = TID.with(|t| t.get())?;
            let ctl = CONTROLLER
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone()?;
            Some((ctl, tid))
        }

        /// Reports `ev` for the calling thread and waits for the
        /// grant, handling [`Grant::Block`] by parking at the block
        /// point. Returns `true` if the thread is controlled (the
        /// operation was serialized), `false` for the untouched fast
        /// path.
        #[inline]
        pub fn sync_op(ev: OpEvent) -> bool {
            let Some((ctl, tid)) = controller_for_current() else {
                return false;
            };
            match ctl.sched_point(tid, ev) {
                Grant::Proceed => {}
                Grant::Block => ctl.block_point(tid),
                Grant::Die => killed(),
            }
            true
        }

        /// Convenience: reports a serialized critical-section entry
        /// on object `obj` (used by the shim deque so schedule
        /// exploration can drive the Chase-Lev protocol).
        #[inline]
        pub fn yield_op(obj: usize) {
            if ACTIVE.load(Ordering::Relaxed) {
                sync_op(OpEvent {
                    op: SyncOp::Yield,
                    obj,
                });
            }
        }
    }
}

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are gone.
        ///
        /// # Errors
        ///
        /// [`SendError`] returning the unsent message.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// A blocking iterator over received messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Creates a "bounded" channel. The std backing is unbounded; the
    /// capacity is accepted for API compatibility, which is safe for the
    /// workspace's uses (bounds there only limit memory, not semantics).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

/// Work-stealing deques, mirroring `crossbeam::deque`.
///
/// The owner of a [`deque::Worker`] pushes and pops at one end without
/// coordination beyond a short critical section; [`deque::Stealer`]
/// handles held by other threads take batches from the opposite end,
/// and a shared [`deque::Injector`] serves as the global FIFO entry
/// queue. Contended steals return [`deque::Steal::Retry`] rather than
/// blocking, matching the lock-free original's progress guarantees at
/// the API level.
pub mod deque {
    use crate::hooks::sched::yield_op;
    use crate::hooks::yield_point;
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

    /// Most items a single batch steal may transfer, mirroring
    /// crossbeam's `MAX_BATCH`.
    const MAX_BATCH: usize = 32;

    /// The outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source queue was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The attempt lost a race; retrying may succeed.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// Returns `true` if the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Returns the stolen item, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Pop order of a [`Worker`]'s owner end.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    #[derive(Debug)]
    struct Buffer<T> {
        items: VecDeque<T>,
    }

    fn lock_or_retry<T>(queue: &Mutex<Buffer<T>>) -> Result<MutexGuard<'_, Buffer<T>>, ()> {
        match queue.try_lock() {
            Ok(guard) => Ok(guard),
            // Poisoning cannot happen (no user code runs under the
            // lock), but map it defensively to a retry.
            Err(TryLockError::Poisoned(p)) => Ok(p.into_inner()),
            Err(TryLockError::WouldBlock) => Err(()),
        }
    }

    /// A deque owned by one worker thread.
    pub struct Worker<T> {
        queue: Arc<Mutex<Buffer<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        fn with_flavor(flavor: Flavor) -> Self {
            Worker {
                queue: Arc::new(Mutex::new(Buffer {
                    items: VecDeque::new(),
                })),
                flavor,
            }
        }

        /// Creates a worker whose owner pops oldest-first.
        pub fn new_fifo() -> Self {
            Worker::with_flavor(Flavor::Fifo)
        }

        /// Creates a worker whose owner pops newest-first.
        pub fn new_lifo() -> Self {
            Worker::with_flavor(Flavor::Lifo)
        }

        /// Creates a [`Stealer`] handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// This deque's identity for the sched controller: the shared
        /// buffer's address, common to the worker and its stealers.
        fn obj(&self) -> usize {
            Arc::as_ptr(&self.queue) as usize
        }

        /// Pushes an item onto the owner end.
        pub fn push(&self, item: T) {
            yield_point();
            yield_op(self.obj());
            self.lock().items.push_back(item);
        }

        /// Pops an item from the owner end (per the flavor).
        pub fn pop(&self) -> Option<T> {
            yield_point();
            yield_op(self.obj());
            let mut buf = self.lock();
            match self.flavor {
                Flavor::Fifo => buf.items.pop_front(),
                Flavor::Lifo => buf.items.pop_back(),
            }
        }

        /// Returns `true` if the deque is empty.
        pub fn is_empty(&self) -> bool {
            self.lock().items.is_empty()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.lock().items.len()
        }

        /// The owner blocks rather than retrying: its own operations
        /// never deadlock and contention windows are a few instructions.
        fn lock(&self) -> MutexGuard<'_, Buffer<T>> {
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Worker { .. }")
        }
    }

    /// A handle that steals from a [`Worker`]'s opposite end.
    pub struct Stealer<T> {
        queue: Arc<Mutex<Buffer<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// The source deque's identity for the sched controller.
        fn obj(&self) -> usize {
            Arc::as_ptr(&self.queue) as usize
        }

        /// Steals one item from the front (oldest) end.
        pub fn steal(&self) -> Steal<T> {
            yield_point();
            yield_op(self.obj());
            match lock_or_retry(&self.queue) {
                Ok(mut buf) => match buf.items.pop_front() {
                    Some(v) => Steal::Success(v),
                    None => Steal::Empty,
                },
                Err(()) => Steal::Retry,
            }
        }

        /// Steals up to half the items (capped) into `dest`, returning
        /// one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            yield_point();
            yield_op(self.obj());
            let mut batch = match lock_or_retry(&self.queue) {
                Ok(mut buf) => {
                    let n = buf.items.len().div_ceil(2).min(MAX_BATCH);
                    if n == 0 {
                        return Steal::Empty;
                    }
                    buf.items.drain(..n).collect::<Vec<T>>()
                }
                Err(()) => return Steal::Retry,
            };
            // The stolen batch is only visible to this thread here: a
            // preemption between the source drain and the dest publish
            // is the widest race window in the protocol.
            yield_point();
            yield_op(dest.obj());
            let first = batch.remove(0);
            if !batch.is_empty() {
                let mut dst = dest.lock();
                dst.items.extend(batch);
            }
            Steal::Success(first)
        }

        /// Returns `true` if the source deque looks empty.
        pub fn is_empty(&self) -> bool {
            match lock_or_retry(&self.queue) {
                Ok(buf) => buf.items.is_empty(),
                Err(()) => false,
            }
        }
    }

    impl<T> fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Stealer { .. }")
        }
    }

    /// A shared FIFO entry queue all workers can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<Buffer<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(Buffer {
                    items: VecDeque::new(),
                }),
            }
        }

        /// This injector's identity for the sched controller.
        fn obj(&self) -> usize {
            std::ptr::from_ref(&self.queue) as usize
        }

        /// Pushes an item onto the back of the queue.
        pub fn push(&self, item: T) {
            yield_op(self.obj());
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .items
                .push_back(item);
        }

        /// Steals one item from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            yield_op(self.obj());
            match lock_or_retry(&self.queue) {
                Ok(mut buf) => match buf.items.pop_front() {
                    Some(v) => Steal::Success(v),
                    None => Steal::Empty,
                },
                Err(()) => Steal::Retry,
            }
        }

        /// Steals up to half the items (capped) into `dest`, returning
        /// one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            yield_op(self.obj());
            let mut batch = match lock_or_retry(&self.queue) {
                Ok(mut buf) => {
                    let n = buf.items.len().div_ceil(2).min(MAX_BATCH);
                    if n == 0 {
                        return Steal::Empty;
                    }
                    buf.items.drain(..n).collect::<Vec<T>>()
                }
                Err(()) => return Steal::Retry,
            };
            let first = batch.remove(0);
            if !batch.is_empty() {
                let mut dst = dest.lock();
                dst.items.extend(batch);
            }
            Steal::Success(first)
        }

        /// Returns `true` if the queue looks empty.
        pub fn is_empty(&self) -> bool {
            match lock_or_retry(&self.queue) {
                Ok(buf) => buf.items.is_empty(),
                Err(()) => false,
            }
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .items
                .len()
        }
    }

    impl<T> fmt::Debug for Injector<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Injector { .. }")
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::Arc;

    #[test]
    fn lifo_owner_pops_newest_thief_steals_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(3), "owner end is LIFO");
        assert_eq!(s.steal(), Steal::Success(1), "thieves take the oldest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn fifo_owner_pops_oldest() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert!(w.is_empty());
    }

    #[test]
    fn injector_is_fifo_and_batch_steals_move_half() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 10);
        let w = Worker::new_lifo();
        // Half of 10 = 5: one returned, four land in the dest deque.
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 5);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1), "dest preserved FIFO order");
    }

    #[test]
    fn stealer_batch_from_worker() {
        let w = Worker::new_lifo();
        for i in 0..8 {
            w.push(i);
        }
        let dest = Worker::new_lifo();
        let s = w.stealer();
        assert_eq!(s.steal_batch_and_pop(&dest), Steal::Success(0));
        assert_eq!(dest.len(), 3);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn empty_sources_report_empty() {
        let w: Worker<u32> = Worker::new_lifo();
        let inj: Injector<u32> = Injector::new();
        assert!(w.stealer().steal().is_empty());
        assert!(inj.steal().is_empty());
        assert!(inj.steal_batch_and_pop(&w).is_empty());
        assert!(w.stealer().steal_batch_and_pop(&w).is_empty());
        assert!(inj.is_empty() && w.stealer().is_empty());
    }

    #[test]
    fn steal_success_accessors() {
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<u32>::Empty.success(), None);
        assert!(Steal::<u32>::Retry.is_retry());
    }

    #[test]
    fn concurrent_producers_and_thieves_lose_nothing() {
        let inj = Arc::new(Injector::new());
        let total = 4000u64;
        let producer = {
            let inj = Arc::clone(&inj);
            std::thread::spawn(move || {
                for i in 0..total {
                    inj.push(i);
                }
            })
        };
        let mut sums = Vec::new();
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    let local = Worker::new_lifo();
                    let mut sum = 0u64;
                    let mut dry = 0;
                    while dry < 200 {
                        match inj.steal_batch_and_pop(&local) {
                            Steal::Success(v) => {
                                dry = 0;
                                sum += v;
                                while let Some(v) = local.pop() {
                                    sum += v;
                                }
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    sum
                })
            })
            .collect();
        producer.join().unwrap();
        for t in thieves {
            sums.push(t.join().unwrap());
        }
        assert_eq!(sums.iter().sum::<u64>(), total * (total - 1) / 2);
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(41u32).unwrap();
            tx.send(1).unwrap();
        });
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5u8).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }
}
