//! Offline drop-in stand-in for the `bytes` crate: a cheaply-clonable,
//! immutable byte buffer backed by `Arc<[u8]>`. Covers the surface this
//! workspace uses (`new`, `from`, `from_static`, `copy_from_slice`,
//! deref to `[u8]`); zero-copy sub-slicing is not provided.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer copied from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// A buffer borrowing nothing: copies the static slice once.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"ab")[..], b"ab");
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }
}
