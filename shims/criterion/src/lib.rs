//! Offline drop-in stand-in for `criterion`: same macro and builder
//! surface (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkId`, `Bencher::{iter, iter_batched}`, `black_box`), but a
//! deliberately simple measurement loop — warm up, then run batches
//! until a time budget is hit and report mean ns/iter to stdout. No
//! statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every call.
    PerIteration,
}

/// A two-part benchmark label, e.g. `register_chain/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates a parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    label: String,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, reporting mean wall-clock ns per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < 5 || start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.report(start.elapsed(), iters);
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        while iters < 5 || timed < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.report(timed, iters);
    }

    fn report(&self, elapsed: Duration, iters: u64) {
        let ns = elapsed.as_nanos() / u128::from(iters.max(1));
        println!("{:<52} {:>12} ns/iter ({} iters)", self.label, ns, iters);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(60),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            label: name.to_string(),
            budget: self.budget,
        };
        f(&mut bencher);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's time budget is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.bench_function(label, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("count", 4), &4usize, |b, &n| {
            b.iter_batched(|| vec![1u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        tiny_bench(&mut c);
    }
}
