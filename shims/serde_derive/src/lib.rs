//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Parses the item's token stream directly (no `syn`/`quote`, which are
//! unfetchable in this build environment) and emits impls of the shim's
//! JSON-backed traits. Supported shapes — the only ones this workspace
//! uses — are non-generic structs (named, tuple, unit) and enums with
//! unit, tuple, or struct variants. `#[serde(...)]` attributes are not
//! interpreted.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim: generated Serialize impl must parse")
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn is_punct(tok: &TokenTree, c: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tok: &TokenTree, s: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == s)
}

/// Advances past `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        if *i < toks.len() && is_punct(&toks[*i], '#') {
            *i += 2; // '#' plus the bracketed group
            continue;
        }
        if *i < toks.len() && is_ident(&toks[*i], "pub") {
            *i += 1;
            if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                *i += 1;
            }
            continue;
        }
        break;
    }
}

/// Advances to just past the next comma at angle-bracket depth 0.
fn skip_past_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        if is_punct(&toks[*i], '<') {
            depth += 1;
        } else if is_punct(&toks[*i], '>') {
            depth -= 1;
        } else if depth == 0 && is_punct(&toks[*i], ',') {
            *i += 1;
            return;
        }
        *i += 1;
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!(
            "serde shim derive supports only structs and enums, got {:?}",
            toks[i]
        );
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        panic!("serde shim derive does not support generic type `{name}`");
    }
    if is_enum {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Enum {
                    name,
                    variants: parse_variants(&body),
                }
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        }
    } else {
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(count_tuple_fields(&body))
            }
            Some(t) if is_punct(t, ';') => Fields::Unit,
            other => panic!("serde shim derive: expected struct body, got {other:?}"),
        };
        Item::Struct { name, fields }
    }
}

fn parse_named_fields(toks: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        match &toks[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        }
        i += 1; // name
        i += 1; // ':'
        skip_past_comma(toks, &mut i);
    }
    names
}

fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut pending = false;
    for tok in toks {
        if is_punct(tok, '<') {
            depth += 1;
        } else if is_punct(tok, '>') {
            depth -= 1;
        } else if depth == 0 && is_punct(tok, ',') {
            count += 1;
            pending = false;
            continue;
        }
        pending = true;
    }
    count + usize::from(pending)
}

fn parse_variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&body))
            }
            _ => Fields::Unit,
        };
        skip_past_comma(toks, &mut i); // also skips `= discriminant`
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(field_names) => {
                    let pairs: Vec<String> = field_names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_json_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Obj(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_json_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Obj(vec![\
                             (::std::string::String::from(\"{vname}\"), \
                              ::serde::Serialize::to_json_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(field_names) => {
                            let binds = field_names.join(", ");
                            let pairs: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_json_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::Value::Obj(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(field_names) => {
                    let inits: Vec<String> = field_names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_json_value(value.get(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::option::Option::Some({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::option::Option::Some({name}(\
                     ::serde::Deserialize::from_json_value(value)?))"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                    let inits: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Deserialize::from_json_value({b})?"))
                        .collect();
                    format!(
                        "match value.as_arr()? {{\n\
                             [{}] => ::std::option::Option::Some({name}({})),\n\
                             _ => ::std::option::Option::None,\n\
                         }}",
                        binds.join(", "),
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!(
                    "match value {{\n\
                         ::serde::Value::Null => ::std::option::Option::Some({name}),\n\
                         _ => ::std::option::Option::None,\n\
                     }}"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(value: &::serde::Value) -> ::std::option::Option<Self> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::option::Option::Some({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::option::Option::Some({name}::{vname}(\
                             ::serde::Deserialize::from_json_value(payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let inits: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Deserialize::from_json_value({b})?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match payload.as_arr()? {{\n\
                                     [{}] => ::std::option::Option::Some({name}::{vname}({})),\n\
                                     _ => ::std::option::Option::None,\n\
                                 }},",
                                binds.join(", "),
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(field_names) => {
                            let inits: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_json_value(\
                                         payload.get(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::option::Option::Some({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(value: &::serde::Value) -> ::std::option::Option<Self> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 _ => ::std::option::Option::None,\n\
                             }},\n\
                             ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, payload) = &pairs[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     _ => ::std::option::Option::None,\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::option::Option::None,\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    }
}
